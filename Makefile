# Convenience targets for the Sunder reproduction.

PYTHON ?= python
SCALE ?= 0.02

.PHONY: install test bench bench-engine bench-transform bench-runtime bench-device bench-batch bench-prefilter bench-exec bench-scale bench-check repro scorecard scorecard-paper profile-smoke docs clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	REPRO_BENCH_SCALE=$(SCALE) $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-engine:
	$(PYTHON) scripts/bench_engine.py --scale $(SCALE) --out BENCH_engine.json

bench-transform:
	$(PYTHON) scripts/bench_transform.py --scale $(SCALE) --out BENCH_transform.json

bench-runtime:
	$(PYTHON) scripts/bench_runtime.py --scale $(SCALE) --out BENCH_runtime.json

# Device-fidelity comparison (literal oracle vs packed kernel); runs at
# a fixed small scale because the literal path bounds feasible sizes.
bench-device:
	$(PYTHON) scripts/bench_device.py --scale 0.01 --out BENCH_device.json

# Batched/sharded execution throughput; fixed scale for the same reason
# (speedups are scale-sensitive and gate against the committed baseline).
bench-batch:
	$(PYTHON) scripts/bench_batch.py --scale 0.01 --out BENCH_batch.json

# Prefilter match-rate sweep (gated vs ungated kernels); fixed scale for
# the same reason.
bench-prefilter:
	$(PYTHON) scripts/bench_prefilter.py --scale 0.01 --out BENCH_prefilter.json

# Auto-planner vs manual configurations (repro.exec); fixed scale for
# the same reason, extra repeats because both ratio sides are timed.
bench-exec:
	$(PYTHON) scripts/bench_exec.py --scale 0.01 --repeats 5 --out BENCH_exec.json

# Paper-scale transform trajectory (indexed kernel vs legacy oracle up
# to scale 1.0); runs its full default ladder, takes a few minutes.
bench-scale:
	$(PYTHON) scripts/bench_scale.py --out BENCH_scale.json

# Perf-regression gate: quick fresh runs of every suite with a committed
# BENCH_*.json baseline, nonzero exit when speedups regress.
bench-check:
	PYTHONPATH=src $(PYTHON) -m repro bench check --quick

repro:
	$(PYTHON) examples/reproduce_paper.py $(SCALE)

scorecard:
	$(PYTHON) -m repro experiment scorecard --scale 0.01

# Full paper-scale scorecard (the EXPERIMENTS.md wall-clock budget run);
# opt-in because it takes tens of minutes on one core.
scorecard-paper:
	$(PYTHON) -m repro experiment scorecard --scale 1.0

profile-smoke:
	$(PYTHON) scripts/check_metrics_schema.py

docs:
	$(PYTHON) scripts/generate_api_docs.py

clean:
	rm -rf results .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
