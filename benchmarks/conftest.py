"""Benchmark-harness configuration.

Every benchmark regenerates one paper artifact (table or figure), prints
it next to the paper's reference values, and saves the rendered table
under ``results/``.  Wall-clock timing comes from pytest-benchmark; the
artifact itself is the real output.

Scale: workload-driven experiments default to REPRO_BENCH_SCALE (2% of
the paper's 1MB stream / state counts).  Raise it for higher-fidelity
runs: ``REPRO_BENCH_SCALE=0.05 pytest benchmarks/ --benchmark-only``.
"""

import os
import pathlib

import pytest

#: Fraction of the paper's input/automaton sizes used by the benches.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH_SCALE


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered experiment table under results/ and print it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name, text):
        path = RESULTS_DIR / ("%s.txt" % name)
        path.write_text(text + "\n", encoding="utf-8")
        print()
        print(text)
        return path

    return _save
