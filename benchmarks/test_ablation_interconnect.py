"""Ablation: full crossbar vs cheaper interconnects on real workloads.

Quantifies Section 5.2's claim that the memory-mapped full crossbar
"avoids interconnect congestion even for highly connected NFA": cheaper
fabrics (banked crossbars, bounded fan-in, meshes) strand a measurable
fraction of the benchmarks' transitions.
"""

from repro.core import SunderConfig, place
from repro.core.routing import (
    BankedCrossbar,
    BoundedFanIn,
    FullCrossbar,
    NeighborMesh,
)
from repro.experiments.formatting import format_table
from repro.transform import to_rate
from repro.workloads import generate

WORKLOADS = ("Snort", "SPM", "Protomata", "Levenshtein")
COLUMNS = [
    ("benchmark", "Benchmark"),
    ("edges", "Edges"),
    ("full", "Full xbar %"),
    ("banked", "Banked %"),
    ("fanin", "Fan-in<=4 %"),
    ("mesh", "Mesh-8 %"),
]


def _experiment(scale):
    rows = []
    for name in WORKLOADS:
        instance = generate(name, scale=scale, seed=0)
        machine = to_rate(instance.automaton, 4)
        config = SunderConfig(rate_nibbles=4, report_bits=24)
        placement = place(machine, config)
        models = [
            FullCrossbar(),
            BankedCrossbar(bank_size=64, ports_per_bank_pair=16),
            BoundedFanIn(max_fan_in=4),
            NeighborMesh(reach=8),
        ]
        reports = [model.evaluate(machine, placement) for model in models]
        rows.append({
            "benchmark": name,
            "edges": reports[0]["edges"],
            "full": reports[0]["routable_pct"],
            "banked": reports[1]["routable_pct"],
            "fanin": reports[2]["routable_pct"],
            "mesh": reports[3]["routable_pct"],
        })
    return rows


def test_interconnect_ablation(benchmark, bench_scale, save_result):
    rows = benchmark.pedantic(
        lambda: _experiment(min(bench_scale, 0.005)), rounds=1, iterations=1,
    )
    save_result(
        "ablation_interconnect",
        format_table(rows, COLUMNS, title="Ablation: interconnect routability"),
    )
    for row in rows:
        # The paper's claim: the full crossbar routes everything...
        assert row["full"] == 100.0
        # ...while the cheapest fabric strands real connectivity.
        assert row["mesh"] < 100.0, row["benchmark"]
    # Highly-connected automata (Levenshtein's mesh of deletion edges)
    # defeat bounded fan-in.
    by_name = {row["benchmark"]: row for row in rows}
    assert by_name["Levenshtein"]["fanin"] < 100.0
