"""Ablation: processing rate vs throughput/density trade-off.

DESIGN.md calls out the reconfigurable rate as a key design choice: more
nibbles per cycle buys throughput at the price of extra states (fewer
automata per device) and fewer spare rows for reporting.  This bench
quantifies the trade-off on representative workloads.
"""

from repro.core.config import SunderConfig
from repro.experiments.formatting import format_table
from repro.hwmodel.pipeline import SUNDER_PIPELINE
from repro.transform import to_rate
from repro.workloads import generate

WORKLOADS = ("Bro217", "TCP", "SPM")
COLUMNS = [
    ("benchmark", "Benchmark"),
    ("rate", "Nibbles/cycle"),
    ("gbps", "Throughput (Gbps)"),
    ("states", "States"),
    ("state_ratio", "States vs 8-bit"),
    ("report_rows", "Report rows"),
    ("report_capacity", "Report entries"),
]


def _sweep(scale):
    rows = []
    for name in WORKLOADS:
        instance = generate(name, scale=scale, seed=0)
        base_states = len(instance.automaton)
        for rate in (1, 2, 4):
            machine = to_rate(instance.automaton, rate)
            config = SunderConfig(rate_nibbles=rate)
            rows.append({
                "benchmark": name,
                "rate": rate,
                "gbps": SUNDER_PIPELINE.operating_frequency_ghz * 4 * rate,
                "states": len(machine),
                "state_ratio": len(machine) / base_states,
                "report_rows": config.report_rows,
                "report_capacity": config.report_capacity,
            })
    return rows


def test_rate_ablation(benchmark, bench_scale, save_result):
    rows = benchmark.pedantic(
        lambda: _sweep(min(bench_scale, 0.01)), rounds=1, iterations=1,
    )
    save_result(
        "ablation_processing_rate",
        format_table(rows, COLUMNS, title="Ablation: processing rate"),
    )
    by_key = {(row["benchmark"], row["rate"]): row for row in rows}
    for name in WORKLOADS:
        # Throughput scales linearly with rate...
        assert by_key[(name, 4)]["gbps"] == 4 * by_key[(name, 1)]["gbps"]
        # ...while 4-nibble costs more states than 2-nibble.
        assert by_key[(name, 4)]["states"] >= by_key[(name, 2)]["states"] * 0.8
    # Reporting space shrinks as the rate grows (16 rows per extra nibble).
    assert by_key[(WORKLOADS[0], 1)]["report_rows"] == 240
    assert by_key[(WORKLOADS[0], 4)]["report_rows"] == 192
