"""Ablation: reporting-region geometry (m report bits, n metadata bits).

The paper fixes m=12 (3.9% of 256 states) and n=20.  This bench sweeps
both and shows the capacity/flush consequences on the SPM stress case —
the design-space evidence behind the parameter selection.
"""

from repro.core import ReportingPerfModel, SunderConfig, pu_fill_cycles_from_events
from repro.core.mapping import place
from repro.experiments.formatting import format_table
from repro.sim.engine import BitsetEngine
from repro.sim.inputs import stream_for
from repro.sim.reports import ReportRecorder
from repro.transform import to_rate
from repro.workloads import generate

COLUMNS = [
    ("report_bits", "m (report bits)"),
    ("metadata_bits", "n (metadata)"),
    ("entries_per_row", "Entries/row"),
    ("capacity", "Capacity"),
    ("counter_bits", "Local counter"),
    ("flushes", "SPM flushes"),
    ("slowdown", "SPM overhead"),
]


def _sweep(scale):
    instance = generate("SPM", scale=scale, seed=0)
    strided = to_rate(instance.automaton, 4)
    vectors, limit = stream_for(strided, instance.input_bytes)
    recorder = ReportRecorder(keep_events=True, position_limit=limit)
    BitsetEngine(strided).run(vectors, recorder)

    rows = []
    for m, n in [(8, 16), (12, 20), (12, 36), (24, 24), (32, 32), (60, 68)]:
        config = SunderConfig(rate_nibbles=4, report_bits=m, metadata_bits=n,
                              fifo=False)
        placement = place(strided, config)
        fills = pu_fill_cycles_from_events(recorder.events, placement)
        result = ReportingPerfModel(config).evaluate(
            fills, len(vectors), capacity_scale=scale
        )
        rows.append({
            "report_bits": m,
            "metadata_bits": n,
            "entries_per_row": config.entries_per_row,
            "capacity": config.report_capacity,
            "counter_bits": config.local_counter_bits(),
            "flushes": result.flushes,
            "slowdown": result.slowdown,
        })
    return rows


def test_report_geometry_ablation(benchmark, bench_scale, save_result):
    rows = benchmark.pedantic(
        lambda: _sweep(min(bench_scale, 0.01)), rounds=1, iterations=1,
    )
    save_result(
        "ablation_report_geometry",
        format_table(rows, COLUMNS, title="Ablation: report-entry geometry",
                     float_format="%.4f"),
    )
    # Wider entries -> fewer entries per row -> smaller capacity.
    capacities = {(row["report_bits"], row["metadata_bits"]): row["capacity"]
                  for row in rows}
    assert capacities[(8, 16)] > capacities[(12, 20)] > capacities[(60, 68)]
    # And smaller capacity can only increase flush pressure.
    flushes = [row["flushes"] for row in rows]
    assert flushes[-1] >= flushes[0]
