"""Ablation: summarization batch size vs worst-case slowdown.

The paper summarizes in 16-row batches (the multi-row activation limit
is 64 rows).  This bench sweeps the batch size at 100% reporting rate.
"""

from repro.core import SunderConfig, sensitivity_slowdown
from repro.experiments.formatting import format_table

COLUMNS = [
    ("batch_rows", "Batch rows"),
    ("slowdown", "Worst-case slowdown"),
    ("no_summarization", "Without summarization"),
]


def _sweep():
    rows = []
    for batch in (1, 2, 4, 8, 16, 32, 64):
        config = SunderConfig(report_bits=12, summarize_batch_rows=batch)
        rows.append({
            "batch_rows": batch,
            "slowdown": sensitivity_slowdown(1.0, summarize=True,
                                             config=config),
            "no_summarization": sensitivity_slowdown(1.0, summarize=False,
                                                     config=config),
        })
    return rows


def test_summarization_ablation(benchmark, save_result):
    rows = benchmark(_sweep)
    save_result(
        "ablation_summarization",
        format_table(rows, COLUMNS, title="Ablation: summarization batch size"),
    )
    slowdowns = [row["slowdown"] for row in rows]
    # Bigger batches compress more rows per NOR: monotone improvement.
    assert slowdowns == sorted(slowdowns, reverse=True)
    # The paper's 16-row batch already sits near the floor.
    by_batch = {row["batch_rows"]: row for row in rows}
    assert by_batch[16]["slowdown"] < by_batch[1]["slowdown"]
    assert by_batch[16]["slowdown"] < 2.0
    assert by_batch[16]["no_summarization"] > 5.0
