"""Tier-2 smoke: the batch/shard benchmark payload validates its schema.

Mirrors ``make bench-batch`` at a tiny scale so drift in the
``BENCH_batch.json`` trajectory format fails fast, and pins the
headline acceptance figure on the committed baseline: at least one
workload reaches 3x streams/sec at batch 16 vs the serial anchor.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))

import bench_batch  # noqa: E402

BASELINE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_batch.json"


def test_bench_batch_payload_schema(bench_scale, tmp_path):
    out = tmp_path / "BENCH_batch.json"
    code = bench_batch.main([
        "--scale", str(min(bench_scale, 0.003)),
        "--repeats", "1",
        "--lanes", "16",
        "--workloads", "Snort", "Hamming",
        "--out", str(out),
    ])
    assert code == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    bench_batch.validate_payload(payload)
    assert [row["name"] for row in payload["workloads"]] == [
        "Snort", "Hamming"]
    metrics = bench_batch.extract_metrics(payload)
    bands = bench_batch.extract_bands(payload)
    assert set(bands) == set(metrics)
    assert "engine_batch16:Snort" in metrics
    assert "device_batch16:Snort" in metrics


def test_validate_payload_rejects_drift():
    with pytest.raises(ValueError):
        bench_batch.validate_payload({"schema": "something-else"})
    payload = bench_batch.run_suite(scale=0.002, repeats=1, lanes=8,
                                    workloads=("Hamming",))
    bench_batch.validate_payload(payload)
    broken = json.loads(json.dumps(payload))
    del broken["workloads"][0]["engine_batches"]["16"]
    with pytest.raises(ValueError):
        bench_batch.validate_payload(broken)


def test_committed_baseline_meets_acceptance():
    payload = json.loads(BASELINE.read_text(encoding="utf-8"))
    bench_batch.validate_payload(payload)
    # The headline claim: batching pays >= 3x on at least one workload.
    assert payload["best_engine_batch16_speedup"] >= 3.0
    assert payload["best_device_batch16_speedup"] >= 3.0
