"""Tier-2 smoke: the device microbenchmark payload validates its schema.

Mirrors ``make bench-device`` at a tiny scale so drift in the
``BENCH_device.json`` trajectory format — or a packed kernel whose
report stream diverges from the literal oracle — fails fast.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))

import bench_device  # noqa: E402


def test_bench_device_payload_schema(bench_scale, tmp_path):
    out = tmp_path / "BENCH_device.json"
    code = bench_device.main([
        "--scale", str(min(bench_scale, 0.003)),
        "--repeats", "1",
        "--input-bytes", "400",
        "--workloads", "Bro217", "Hamming",
        "--out", str(out),
    ])
    assert code == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    bench_device.validate_payload(payload)
    assert [row["name"] for row in payload["workloads"]] == [
        "Bro217", "Hamming"]
    # Parity with the literal oracle is part of the schema contract.
    assert all(row["reports_identical"] for row in payload["workloads"])


def test_validate_payload_rejects_drift():
    with pytest.raises(ValueError):
        bench_device.validate_payload({"schema": "something-else"})
    payload = bench_device.run_suite(scale=0.002, repeats=1, input_bytes=300,
                                     workloads=("Bro217",))
    bench_device.validate_payload(payload)
    broken = dict(payload, workloads=[])
    with pytest.raises(ValueError):
        bench_device.validate_payload(broken)
    diverged = json.loads(json.dumps(payload))
    diverged["workloads"][0]["reports_identical"] = False
    with pytest.raises(ValueError):
        bench_device.validate_payload(diverged)
