"""Tier-2 smoke: the engine microbenchmark payload validates its schema.

Mirrors ``make bench-engine`` at a tiny scale so drift in the
``BENCH_engine.json`` trajectory format (or a broken kernel/cache
configuration) fails fast, the same way ``test_profile_smoke`` pins the
metrics exposition.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))

import bench_engine  # noqa: E402


def test_bench_engine_payload_schema(bench_scale, tmp_path):
    out = tmp_path / "BENCH_engine.json"
    code = bench_engine.main([
        "--scale", str(min(bench_scale, 0.003)),
        "--repeats", "1",
        "--workers", "2",
        "--workloads", "Bro217", "Levenshtein",
        "--out", str(out),
    ])
    assert code == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    bench_engine.validate_payload(payload)
    assert [row["name"] for row in payload["workloads"]] == [
        "Bro217", "Levenshtein"]


def test_validate_payload_rejects_drift():
    with pytest.raises(ValueError):
        bench_engine.validate_payload({"schema": "something-else"})
    payload = bench_engine.run_suite(scale=0.002, repeats=1, workers=1,
                                     workloads=("Levenshtein",))
    bench_engine.validate_payload(payload)
    broken = dict(payload, workloads=[])
    with pytest.raises(ValueError):
        bench_engine.validate_payload(broken)
