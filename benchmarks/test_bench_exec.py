"""Tier-2 smoke: the exec-planner benchmark payload validates its schema.

Mirrors ``make bench-exec`` at a tiny scale so drift in the
``BENCH_exec.json`` trajectory format fails fast, and pins the issue's
acceptance figures on the committed baseline: the auto plan's geomean
is >= 0.95x the best manual configuration and strictly beats the worst
one on every benchmarked family.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))

import bench_exec  # noqa: E402

BASELINE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_exec.json"


def test_bench_exec_payload_schema(tmp_path):
    out = tmp_path / "BENCH_exec.json"
    code = bench_exec.main([
        "--scale", "0.002",
        "--repeats", "1",
        "--families", "exact", "dotstar",
        "--out", str(out),
    ])
    assert code == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    bench_exec.validate_payload(payload)
    assert [row["name"] for row in payload["families"]] == [
        "exact", "dotstar"]
    by_name = {row["name"]: row for row in payload["families"]}
    # The planner's regime picks: filterable-acyclic gates, cyclic stays
    # serial (and never offers the unsound shards4/gated configs).
    assert by_name["exact"]["strategy"] == "gated"
    assert by_name["dotstar"]["strategy"] == "serial"
    assert "gated" in by_name["exact"]["configs"]
    assert "gated" not in by_name["dotstar"]["configs"]
    assert "shards4" not in by_name["dotstar"]["configs"]
    metrics = bench_exec.extract_metrics(payload)
    bands = bench_exec.extract_bands(payload)
    assert set(bands) == set(metrics)
    assert "auto_vs_best:exact" in metrics
    assert "auto_vs_worst:dotstar" in metrics


def test_validate_payload_rejects_drift():
    with pytest.raises(ValueError):
        bench_exec.validate_payload({"schema": "something-else"})
    payload = bench_exec.run_suite(scale=0.002, repeats=1,
                                   families=("exact",))
    bench_exec.validate_payload(payload)
    broken = json.loads(json.dumps(payload))
    del broken["families"][0]["configs"]["serial"]
    with pytest.raises(ValueError):
        bench_exec.validate_payload(broken)


def test_committed_baseline_meets_acceptance():
    payload = json.loads(BASELINE.read_text(encoding="utf-8"))
    bench_exec.validate_payload(payload)
    # The issue's acceptance criteria: the auto plan is within noise of
    # the best manual configuration (geomean and per family) and
    # strictly beats the worst one everywhere.
    assert payload["auto_vs_best_geomean"] >= 0.95
    assert {row["name"] for row in payload["families"]} == set(
        bench_exec.DEFAULT_FAMILIES)
    for row in payload["families"]:
        assert row["auto_vs_best"]["speedup"] >= 0.95, row["name"]
        assert row["auto_vs_worst"]["speedup"] > 1.0, row["name"]
