"""Tier-2 smoke: the ``repro bench`` envelope and regression gate.

Exercises the v2 envelope wrapper and the compare/threshold logic on
synthetic suite payloads (no timed runs), including the injected-2x-
slowdown case the gate exists to catch: comparing a halved speedup
against its baseline must produce ``passed=False``.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import bench  # noqa: E402
from repro.errors import BenchError  # noqa: E402


def _runtime_payload(warm_speedup=4.0, scale=0.01):
    """A synthetic ``repro-bench-runtime`` payload that validates."""
    served = {"hits": 4, "misses": 0}
    return {
        "version": 1,
        "schema": "repro-bench-runtime",
        "scale": scale,
        "seed": 0,
        "code_version": "synthetic",
        "cold_seconds": float(warm_speedup),
        "warm_seconds": 1.0,
        "warm_speedup": float(warm_speedup),
        "cold_stages": {"generate": {"hits": 0, "misses": 4}},
        "warm_stages": {"generate": dict(served), "simulate8": dict(served),
                        "to_rate": dict(served)},
        "disk_entries": 8,
        "disk_bytes": 4096,
        "identical": True,
    }


def _transform_payload(minimizer_speedups, bands=None, scale=0.01):
    """A synthetic ``repro-bench-transform`` payload that validates.

    ``minimizer_speedups`` maps row name -> speedup; ``bands``
    optionally maps row name -> ``[lo, hi]`` repeat band.
    """
    stage = {"cold_seconds": 1.0, "warm_seconds": 0.001,
             "warm_speedup": 1000.0}
    rows = []
    for name, speedup in minimizer_speedups.items():
        row = {
            "name": name,
            "states": 100,
            "removed_new": 10,
            "removed_legacy": 5,
            "new_seconds": 1.0,
            "legacy_seconds": float(speedup),
            "speedup": float(speedup),
        }
        if bands and name in bands:
            row["speedup_band"] = list(bands[name])
        rows.append(row)
    return {
        "version": 1,
        "schema": "repro-bench-transform",
        "scale": scale,
        "seed": 0,
        "repeats": 3,
        "code_version": "synthetic",
        "workloads": [{"name": "Snort", "states": 100,
                       "cached_identical": True,
                       "stages": {"nibble": dict(stage),
                                  "stride": dict(stage)}}],
        "warm_speedup_geomean": 1000.0,
        "minimizer": {"rows": rows, "speedup_geomean": 1.0},
    }


class TestEnvelope:
    def test_build_and_validate_synthetic_suites(self):
        envelope = bench.build_envelope(
            {"runtime": _runtime_payload()}, quick=True)
        assert bench.validate_envelope(envelope) is envelope
        assert envelope["schema"] == "repro-bench/v2"
        assert envelope["quick"] is True

    def test_validate_rejects_wrapper_drift(self):
        good = bench.build_envelope({"runtime": _runtime_payload()})
        for mutation in ({"schema": "repro-bench/v1"}, {"version": 1},
                         {"suites": {}}):
            with pytest.raises(BenchError):
                bench.validate_envelope(dict(good, **mutation))

    def test_validate_rejects_bad_suite_payload(self):
        broken = _runtime_payload()
        broken["identical"] = False
        with pytest.raises(BenchError):
            bench.validate_envelope(bench.build_envelope({"runtime": broken}))
        with pytest.raises(BenchError):
            bench.validate_envelope(
                bench.build_envelope({"nonesuch": {}}))

    def test_load_envelope_wraps_bare_suite_payload(self, tmp_path):
        path = tmp_path / "BENCH_runtime.json"
        path.write_text(json.dumps(_runtime_payload()), encoding="utf-8")
        envelope = bench.load_envelope(path)
        assert set(envelope["suites"]) == {"runtime"}

    def test_load_baseline_assembles_bench_files(self, tmp_path):
        (tmp_path / "BENCH_runtime.json").write_text(
            json.dumps(_runtime_payload()), encoding="utf-8")
        (tmp_path / "BENCH_transform.json").write_text(
            json.dumps(_transform_payload({"dup": 4.0})), encoding="utf-8")
        envelope = bench.load_baseline(tmp_path)
        assert set(envelope["suites"]) == {"runtime", "transform"}
        with pytest.raises(BenchError):
            bench.load_baseline(tmp_path / "empty")


class TestCompare:
    def _compare(self, current, baseline, **kwargs):
        return bench.compare_envelopes(
            bench.build_envelope(current),
            bench.build_envelope(baseline), **kwargs)

    def test_identical_envelopes_pass_at_ratio_one(self):
        report = self._compare({"runtime": _runtime_payload(4.0)},
                               {"runtime": _runtime_payload(4.0)})
        assert report["passed"] is True
        suite = report["suites"]["runtime"]
        assert suite["status"] == "pass"
        assert suite["geomean_ratio"] == pytest.approx(1.0)
        assert "bench gate: PASS" in bench.render_report(report)

    def test_injected_2x_slowdown_fails_the_gate(self):
        # Warm speedup halves (2x slowdown on the optimized path):
        # geomean ratio 0.5 < tolerance 0.75 must fail.
        report = self._compare({"runtime": _runtime_payload(2.0)},
                               {"runtime": _runtime_payload(4.0)})
        assert report["passed"] is False
        suite = report["suites"]["runtime"]
        assert suite["status"] == "regression"
        assert suite["geomean_ratio"] == pytest.approx(0.5)
        assert "bench gate: REGRESSION" in bench.render_report(report)

    def test_one_noisy_metric_cannot_fail_a_wide_suite(self):
        # One metric at 0.55x, four at parity: the geomean (~0.89)
        # stays above tolerance and 0.55 is above the metric floor.
        baseline = {"a": 4.0, "b": 4.0, "c": 4.0, "d": 4.0}
        current = dict(baseline, a=2.2)
        report = self._compare(
            {"transform": _transform_payload(current)},
            {"transform": _transform_payload(baseline)})
        assert report["passed"] is True
        assert report["suites"]["transform"]["metrics"][
            "minimizer:a"]["status"] == "ok"

    def test_floor_miss_inside_repeat_band_downgrades_to_noisy(self):
        baseline = {"a": 4.0, "b": 4.0, "c": 4.0, "d": 4.0}
        current = dict(baseline, a=1.6)  # ratio 0.4, below the 0.5 floor
        report = self._compare(
            {"transform": _transform_payload(
                current, bands={"a": [1.5, 2.4]})},  # best repeat: 0.6x
            {"transform": _transform_payload(baseline)})
        assert report["passed"] is True
        metric = report["suites"]["transform"]["metrics"]["minimizer:a"]
        assert metric["status"] == "noisy"
        assert "[within noise band]" in bench.render_report(report)

    def test_floor_miss_without_band_is_a_regression(self):
        baseline = {"a": 4.0, "b": 4.0, "c": 4.0, "d": 4.0}
        current = dict(baseline, a=1.6)
        report = self._compare(
            {"transform": _transform_payload(current)},
            {"transform": _transform_payload(baseline)})
        assert report["passed"] is False
        suite = report["suites"]["transform"]
        assert suite["regressions"] == ["minimizer:a"]
        # ... even though the geomean alone would have cleared tolerance.
        assert suite["geomean_ratio"] > bench.DEFAULT_TOLERANCE

    def test_scale_mismatch_is_incomparable_not_failed(self):
        report = self._compare(
            {"runtime": _runtime_payload(2.0, scale=0.002)},
            {"runtime": _runtime_payload(4.0, scale=0.01)})
        assert report["passed"] is True
        assert report["suites"]["runtime"]["status"] == "incomparable"
        assert "SKIP" in bench.render_report(report)

    def test_unshared_suites_are_skipped(self):
        report = self._compare(
            {"runtime": _runtime_payload(),
             "transform": _transform_payload({"a": 4.0})},
            {"runtime": _runtime_payload()})
        assert report["skipped"] == ["transform"]
        assert report["passed"] is True
        with pytest.raises(BenchError):
            self._compare({"runtime": _runtime_payload()},
                          {"transform": _transform_payload({"a": 4.0})})

    def test_tolerance_is_configurable(self):
        report = self._compare({"runtime": _runtime_payload(3.6)},
                               {"runtime": _runtime_payload(4.0)},
                               tolerance=0.95)
        assert report["passed"] is False
        assert report["suites"]["runtime"]["geomean_ratio"] == pytest.approx(
            0.9)


def test_committed_baselines_assemble_into_a_valid_envelope():
    """The real BENCH_*.json files must load (pins `bench check` setup)."""
    envelope = bench.load_baseline()
    assert set(envelope["suites"]) >= {"engine", "transform", "runtime",
                                       "device"}
