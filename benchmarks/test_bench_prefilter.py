"""Tier-2 smoke: the prefilter benchmark payload validates its schema.

Mirrors ``make bench-prefilter`` at a tiny scale so drift in the
``BENCH_prefilter.json`` trajectory format fails fast, and pins the
headline acceptance figure on the committed baseline: the gated engine
path reaches a 5x geomean streams/sec on clean (zero-density) input.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))

import bench_prefilter  # noqa: E402

BASELINE = (pathlib.Path(__file__).resolve().parent.parent
            / "BENCH_prefilter.json")


def test_bench_prefilter_payload_schema(bench_scale, tmp_path):
    out = tmp_path / "BENCH_prefilter.json"
    code = bench_prefilter.main([
        "--scale", str(min(bench_scale, 0.005)),
        "--repeats", "1",
        "--workloads", "ClamAV", "ExactMatch",
        "--out", str(out),
    ])
    assert code == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    bench_prefilter.validate_payload(payload)
    assert [row["name"] for row in payload["workloads"]] == [
        "ClamAV", "ExactMatch"]
    metrics = bench_prefilter.extract_metrics(payload)
    bands = bench_prefilter.extract_bands(payload)
    assert set(bands) == set(metrics)
    assert "engine:ClamAV:0.0" in metrics
    assert "device:ClamAV:0.0" in metrics


def test_validate_payload_rejects_drift():
    with pytest.raises(ValueError):
        bench_prefilter.validate_payload({"schema": "something-else"})
    payload = bench_prefilter.run_suite(scale=0.005, repeats=1,
                                        workloads=("ExactMatch",))
    bench_prefilter.validate_payload(payload)
    broken = json.loads(json.dumps(payload))
    del broken["workloads"][0]["densities"][repr(0.0)]["engine_speedup"]
    with pytest.raises(ValueError):
        bench_prefilter.validate_payload(broken)


def test_unfilterable_workload_is_rejected():
    with pytest.raises(ValueError, match="unfilterable"):
        bench_prefilter.bench_workload("Snort", 0.005, 0, 1)


def test_committed_baseline_meets_acceptance():
    payload = json.loads(BASELINE.read_text(encoding="utf-8"))
    bench_prefilter.validate_payload(payload)
    # The headline claim: gating pays >= 5x geomean on clean streams.
    assert payload["clean_engine_geomean_speedup"] >= 5.0
    # Every row's sweep must exhibit the documented crossover shape:
    # clean-stream win, and a density where gating stops paying.
    for row in payload["workloads"]:
        assert row["clean_engine_speedup"] > 1.0
        assert row["crossover_density"] is not None
