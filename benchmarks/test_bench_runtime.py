"""Tier-2 smoke: the runtime benchmark payload validates its schema.

Mirrors ``make bench-runtime`` at a tiny scale so drift in the
``BENCH_runtime.json`` trajectory format — or a regression that makes a
warm artifact store re-execute the expensive stages or diverge from the
cold run — fails fast, the same way ``test_bench_transform_payload_schema``
pins the transform suite.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))

import bench_runtime  # noqa: E402


def test_bench_runtime_payload_schema(bench_scale, tmp_path):
    out = tmp_path / "BENCH_runtime.json"
    code = bench_runtime.main([
        "--scale", str(min(bench_scale, 0.003)),
        "--out", str(out),
    ])
    assert code == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    bench_runtime.validate_payload(payload)
    assert payload["identical"] is True
    for stage in bench_runtime.WARM_CACHED_STAGES:
        assert payload["warm_stages"][stage]["misses"] == 0


def test_validate_payload_rejects_drift():
    with pytest.raises(ValueError):
        bench_runtime.validate_payload({"schema": "something-else"})
    payload = bench_runtime.run_suite(scale=0.002)
    bench_runtime.validate_payload(payload)
    broken = json.loads(json.dumps(payload))
    broken["identical"] = False
    with pytest.raises(ValueError):
        bench_runtime.validate_payload(broken)
    rerun = json.loads(json.dumps(payload))
    rerun["warm_stages"]["generate"]["misses"] = 5
    with pytest.raises(ValueError):
        bench_runtime.validate_payload(rerun)
