"""Tier-2 smoke: the paper-scale benchmark payload validates its schema.

Mirrors ``make bench-scale`` at the gating scale so drift in the
``BENCH_scale.json`` trajectory format fails fast, and pins the headline
acceptance figures on the committed baseline: the indexed kernel is
bit-exact against the legacy oracle at every compared scale and at least
3x faster (geomean) on machines of >= 5k nibble states.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))

import bench_scale  # noqa: E402

BASELINE = pathlib.Path(__file__).resolve().parent.parent / "BENCH_scale.json"


def test_bench_scale_payload_schema(tmp_path):
    out = tmp_path / "BENCH_scale.json"
    code = bench_scale.main([
        "--scales", "0.02",
        "--repeats", "1",
        "--workloads", "Snort",
        "--out", str(out),
    ])
    assert code == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    bench_scale.validate_payload(payload)
    (row,) = payload["rows"]
    assert row["name"] == "Snort"
    assert row["bit_exact"] is True
    metrics = bench_scale.extract_metrics(payload)
    bands = bench_scale.extract_bands(payload)
    assert set(metrics) == {"square_speedup:Snort"}
    assert set(bands) == set(metrics)


def test_validate_payload_rejects_drift():
    with pytest.raises(ValueError):
        bench_scale.validate_payload({"schema": "something-else"})
    payload = bench_scale.run_suite(scales=(0.02,), repeats=1,
                                    workloads=("SPM",))
    bench_scale.validate_payload(payload)
    broken = json.loads(json.dumps(payload))
    broken["rows"][0]["bit_exact"] = False
    with pytest.raises(ValueError, match="diverged"):
        bench_scale.validate_payload(broken)


def test_committed_baseline_meets_acceptance():
    payload = json.loads(BASELINE.read_text(encoding="utf-8"))
    bench_scale.validate_payload(payload)
    # The ladder must actually reach paper scale with the oracle measured
    # there (not extrapolated), every comparison bit-exact.
    assert 1.0 in payload["scales"]
    paper_rows = [row for row in payload["rows"] if row["scale"] == 1.0]
    assert paper_rows and all(
        row["legacy_seconds"] is not None for row in paper_rows)
    assert all(row["bit_exact"] for row in payload["rows"]
               if row["legacy_seconds"] is not None)
    # The headline claim: >= 3x geomean on machines >= 5k nibble states.
    assert payload["large_states_floor"] == 5000
    assert payload["speedup_geomean_large"] >= 3.0
