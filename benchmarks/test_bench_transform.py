"""Tier-2 smoke: the transform benchmark payload validates its schema.

Mirrors ``make bench-transform`` at a tiny scale so drift in the
``BENCH_transform.json`` trajectory format (or a cache regression that
makes cached transforms diverge from fresh builds) fails fast, the same
way ``test_bench_engine_payload_schema`` pins the engine suite.
"""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))

import bench_transform  # noqa: E402


def test_bench_transform_payload_schema(bench_scale, tmp_path):
    out = tmp_path / "BENCH_transform.json"
    code = bench_transform.main([
        "--scale", str(min(bench_scale, 0.003)),
        "--repeats", "1",
        "--workloads", "Bro217", "Snort",
        "--out", str(out),
    ])
    assert code == 0
    payload = json.loads(out.read_text(encoding="utf-8"))
    bench_transform.validate_payload(payload)
    assert [row["name"] for row in payload["workloads"]] == [
        "Bro217", "Snort"]
    assert all(row["cached_identical"] for row in payload["workloads"])


def test_validate_payload_rejects_drift():
    with pytest.raises(ValueError):
        bench_transform.validate_payload({"schema": "something-else"})
    payload = bench_transform.run_suite(scale=0.002, repeats=1,
                                        workloads=("Bro217",))
    bench_transform.validate_payload(payload)
    broken = dict(payload, workloads=[])
    with pytest.raises(ValueError):
        bench_transform.validate_payload(broken)
    divergent = json.loads(json.dumps(payload))
    divergent["workloads"][0]["cached_identical"] = False
    with pytest.raises(ValueError):
        bench_transform.validate_payload(divergent)
