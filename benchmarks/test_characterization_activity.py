"""Workload characterization: active-state pressure and report dynamics.

ANMLZoo's companion characterization (IISWC'16) profiles enabled/active
state counts per cycle — the quantity that makes NFAs slow in software
(memory accesses scale with it) and irrelevant to the in-memory designs
(every state is evaluated in parallel).  This bench tabulates it for the
synthetic suite alongside the report-stream analytics.
"""

from repro.experiments.formatting import format_table
from repro.sim import dynamic_statistics
from repro.sim.analysis import summarize_analysis
from repro.workloads import BENCHMARK_NAMES, generate

COLUMNS = [
    ("benchmark", "Benchmark"),
    ("states", "States"),
    ("avg_active", "Avg active"),
    ("max_active", "Max active"),
    ("active_pct", "Active %"),
    ("median_gap", "Median gap"),
    ("max_burst", "Max burst"),
]


def _experiment(scale):
    rows = []
    for name in BENCHMARK_NAMES:
        instance = generate(name, scale=scale, seed=0)
        stats = dynamic_statistics(
            instance.automaton, list(instance.input_bytes)
        )
        analysis = summarize_analysis(stats["recorder"], stats["cycles"])
        n_states = len(instance.automaton)
        rows.append({
            "benchmark": name,
            "states": n_states,
            "avg_active": stats["avg_active_states"],
            "max_active": stats["max_active_states"],
            "active_pct": 100.0 * stats["avg_active_states"] / n_states,
            "median_gap": analysis["median_gap"],
            "max_burst": analysis["max_burst"],
        })
    return rows


def test_activity_characterization(benchmark, bench_scale, save_result):
    rows = benchmark.pedantic(
        lambda: _experiment(min(bench_scale, 0.005)), rounds=1, iterations=1,
    )
    save_result(
        "characterization_activity",
        format_table(rows, COLUMNS, title="Workload characterization"),
    )
    by_name = {row["benchmark"]: row for row in rows}
    # The software-cost driver: active fractions are small but non-zero
    # for hot workloads, and essentially zero for cold signature sets.
    assert by_name["ClamAV"]["avg_active"] < 1.0
    assert by_name["Snort"]["avg_active"] >= 1.0   # hot rules always alive
    # SPM's self-looping gap states accumulate: the haystack of active
    # states the paper's Table 1 burstiness comes from.
    assert by_name["SPM"]["max_active"] > by_name["Bro217"]["max_active"]
    # Burst column mirrors Table 1's reports-per-report-cycle shape.
    assert by_name["Brill"]["max_burst"] >= 5
