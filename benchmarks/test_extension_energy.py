"""Extension bench: end-to-end energy estimate per workload.

Not a paper artifact — the paper reports only per-subarray read power
(Table 2) — but the models imply an energy story: reporting energy is a
negligible share of total dynamic energy because it reuses the matching
arrays' Port 1.
"""

from repro.core import SunderConfig, place
from repro.experiments.formatting import format_table
from repro.hwmodel import analytic_energy
from repro.sim import dynamic_statistics, stream_for
from repro.transform import to_rate
from repro.workloads import generate

WORKLOADS = ("Bro217", "TCP", "Snort", "SPM")
COLUMNS = [
    ("benchmark", "Benchmark"),
    ("pus", "PUs"),
    ("matching_nj", "Matching (nJ)"),
    ("interconnect_nj", "Interconnect (nJ)"),
    ("reporting_nj", "Reporting (nJ)"),
    ("per_byte_pj", "pJ/byte"),
]


def _experiment(scale):
    rows = []
    for name in WORKLOADS:
        instance = generate(name, scale=scale, seed=0)
        strided = to_rate(instance.automaton, 4)
        vectors, limit = stream_for(strided, instance.input_bytes)
        stats = dynamic_statistics(strided, vectors, position_limit=limit)
        config = SunderConfig(rate_nibbles=4)
        placement = place(strided, config)
        pus = len(placement.pus_used())
        report = analytic_energy(
            cycles=stats["cycles"],
            pus=pus,
            report_cycles=stats["report_cycles"],
        )
        rows.append({
            "benchmark": name,
            "pus": pus,
            "matching_nj": report.matching_nj,
            "interconnect_nj": report.interconnect_nj,
            "reporting_nj": report.reporting_nj,
            "per_byte_pj": report.per_byte_pj(len(instance.input_bytes)),
        })
    return rows


def test_energy_breakdown(benchmark, bench_scale, save_result):
    rows = benchmark.pedantic(
        lambda: _experiment(min(bench_scale, 0.01)), rounds=1, iterations=1,
    )
    save_result(
        "extension_energy",
        format_table(rows, COLUMNS, title="Extension: dynamic energy",
                     float_format="%.3f"),
    )
    for row in rows:
        total = (row["matching_nj"] + row["interconnect_nj"]
                 + row["reporting_nj"])
        # Reporting reuses the matching arrays: tiny energy share even for
        # the densest reporter.
        assert row["reporting_nj"] < 0.05 * total, row["benchmark"]
