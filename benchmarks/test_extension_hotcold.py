"""Extension bench: hot/cold splitting and reporting complementarity.

Liu et al. (MICRO'18) shrink hardware footprint by configuring only
profiled-hot states, at the cost of extra *intermediate* reports at the
hot/cold boundary.  The Sunder paper's Section 1 claims its reporting
architecture absorbs that extra traffic where AP-style reporting cannot.
This bench quantifies both halves of the claim on a deep ruleset.
"""

from repro.baselines import ApReportingModel
from repro.core import (
    ReportingPerfModel,
    SunderConfig,
    place,
    pu_fill_cycles_from_events,
)
from repro.experiments.formatting import format_table
from repro.extensions import split_hot_cold
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine, ReportRecorder
from repro.transform import to_rate
from repro.workloads.base import WorkloadRandom, build_input

COLUMNS = [
    ("config", "Configuration"),
    ("hw_states", "HW states"),
    ("reports", "Reports"),
    ("intermediate_pct", "Intermediate %"),
    ("sunder_overhead", "Sunder overhead"),
    ("ap_overhead", "AP overhead"),
]


def _experiment():
    rng = WorkloadRandom(11)
    # Deep rules whose tails rarely execute: the hot/cold sweet spot.
    rules = compile_ruleset([
        ("attack%02d[a-f]{10}zz" % index, "rule%02d" % index)
        for index in range(12)
    ])
    # Traffic full of rule *prefixes* (hot) and occasional full matches.
    plants = []
    for position in range(0, 9000, 60):
        if position % 600 == 0:
            plants.append((position, b"attack03abcdefabcdzz"))
        else:
            plants.append((position, b"attack%02d" % (position // 60 % 12)))
    data = build_input(rng, 10_000, plants)

    rows = []
    for label, machine in [
        ("full automaton", rules),
        ("hot/cold split", split_hot_cold(rules, list(data[:2000]),
                                          activity_coverage=0.99).hot_automaton),
    ]:
        recorder = ReportRecorder(keep_events=True)
        BitsetEngine(machine).run(list(data), recorder)
        report_ids = [s.id for s in machine.report_states()]
        ap = ApReportingModel(scale=0.01).evaluate(
            recorder.events, report_ids, len(data))

        strided = to_rate(machine, 4)
        from repro.sim import stream_for
        vectors, limit = stream_for(strided, data)
        strided_recorder = ReportRecorder(keep_events=True,
                                          position_limit=limit)
        BitsetEngine(strided).run(vectors, strided_recorder)
        config = SunderConfig(rate_nibbles=4, report_bits=24)
        placement = place(strided, config)
        fills = pu_fill_cycles_from_events(strided_recorder.events, placement)
        sunder = ReportingPerfModel(config).evaluate(
            fills, len(vectors), capacity_scale=0.01)

        intermediate = sum(
            1 for event in recorder.events
            if str(event.report_code).startswith("hotcold-boundary/")
        )
        rows.append({
            "config": label,
            "hw_states": len(machine),
            "reports": recorder.total_reports,
            "intermediate_pct": (
                100.0 * intermediate / recorder.total_reports
                if recorder.total_reports else 0.0
            ),
            "sunder_overhead": sunder.slowdown,
            "ap_overhead": ap.slowdown,
        })
    return rows


def test_hotcold_complementarity(benchmark, save_result):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result(
        "extension_hotcold",
        format_table(rows, COLUMNS,
                     title="Extension: hot/cold splitting (Liu et al.) "
                           "+ reporting architectures"),
    )
    full, split = rows
    # The split shrinks the hardware footprint...
    assert split["hw_states"] < full["hw_states"]
    # ...but generates more reports (the intermediates)...
    assert split["reports"] > full["reports"]
    assert split["intermediate_pct"] > 10
    # ...which Sunder absorbs while AP-style reporting degrades.
    assert split["sunder_overhead"] < 1.1
    assert split["ap_overhead"] > full["ap_overhead"]
