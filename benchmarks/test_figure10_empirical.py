"""Empirical validation of the Figure 10 closed form.

Figure 10 itself is analytic; this bench *constructs* a single-PU
automaton with 12 reporting states, generates inputs whose report-cycle
fraction sweeps the x-axis, replays the measured report streams through
the event-driven reporting model, and checks that the empirical slowdowns
track the closed-form curve's shape (monotone, negligible at low rates).
"""

import random

from repro.automata import Automaton, StartKind, SymbolSet
from repro.core import (
    ReportingPerfModel,
    SunderConfig,
    place,
    pu_fill_cycles_from_events,
)
from repro.core.perfmodel import HOST_BITS_PER_CYCLE, sensitivity_slowdown
from repro.experiments.formatting import format_table

COLUMNS = [
    ("target_pct", "Target RC%"),
    ("measured_pct", "Measured RC%"),
    ("empirical", "Empirical slowdown"),
    ("closed_form", "Closed form"),
]


def _probe_automaton():
    """12 reporting states, each firing on one dedicated nibble value."""
    automaton = Automaton(name="probe", bits=4, arity=4, start_period=1)
    full = SymbolSet.full(4)
    for index in range(12):
        automaton.new_state(
            "r%d" % index,
            (full, full, full, SymbolSet.of(4, [index])),
            start=StartKind.ALL_INPUT,
            report=True,
            report_code="r%d" % index,
        )
    return automaton


def _experiment(cycles=30_000, seed=5):
    rng = random.Random(seed)
    automaton = _probe_automaton()
    # Host path matched to the closed form: 4.6 bits/cycle for both the
    # concurrent FIFO drain and the stop-and-read flush (256-bit rows).
    host_rows_per_cycle = HOST_BITS_PER_CYCLE / 256.0
    config = SunderConfig(rate_nibbles=4, report_bits=12, fifo=True,
                          fifo_drain_rows_per_cycle=host_rows_per_cycle,
                          flush_rows_per_cycle=host_rows_per_cycle)
    placement = place(automaton, config)

    from repro.sim import BitsetEngine, ReportRecorder
    engine = BitsetEngine(automaton)
    rows = []
    for target_pct in (1, 5, 20, 50, 80, 100):
        probability = target_pct / 100.0
        stream = []
        for _ in range(cycles):
            if rng.random() < probability:
                last = rng.randrange(12)
            else:
                last = 13  # no reporting state matches values > 11
            stream.append((0, 0, 0, last))
        recorder = ReportRecorder(keep_events=True)
        engine.run(stream, recorder)
        fills = pu_fill_cycles_from_events(recorder.events, placement)
        result = ReportingPerfModel(config).evaluate(fills, cycles)
        rows.append({
            "target_pct": target_pct,
            "measured_pct": 100.0 * recorder.report_cycles / cycles,
            "empirical": result.slowdown,
            "closed_form": sensitivity_slowdown(probability, config=config),
        })
    return rows


def test_figure10_empirical(benchmark, save_result):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result(
        "figure10_empirical",
        format_table(rows, COLUMNS,
                     title="Figure 10 validation: event-driven vs closed form"),
    )
    empiricals = [row["empirical"] for row in rows]
    # Shape agreement: monotone, free at low rates, multiple-x at 100%.
    assert empiricals == sorted(empiricals)
    assert rows[0]["empirical"] < 1.05
    assert rows[-1]["empirical"] > 2.0
    # Quantitative agreement with the closed form within 2x everywhere the
    # closed form predicts nontrivial slowdown.
    for row in rows:
        if row["closed_form"] > 1.5:
            ratio = row["empirical"] / row["closed_form"]
            assert 0.4 < ratio < 2.5, row
