"""Bench F10: regenerate Figure 10 (reporting-rate sensitivity sweep)."""

from repro.experiments import figure10


def test_figure10(benchmark, save_result):
    rows = benchmark(figure10.run)
    save_result("figure10_sensitivity", figure10.render(rows))
    by_pct = {row["report_cycle_pct"]: row for row in rows}
    # Paper anchors: negligible below 5%, 7x worst case, 1.4x summarized.
    assert by_pct[5]["slowdown"] < 1.05
    assert 6.0 <= by_pct[100]["slowdown"] <= 8.0
    assert 1.2 <= by_pct[100]["slowdown_summarized"] <= 1.6
    # Summarization helps at every point of the sweep.
    for row in rows:
        assert row["slowdown_summarized"] <= row["slowdown"] + 1e-9
