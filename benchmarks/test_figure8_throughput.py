"""Bench F8: regenerate Figure 8 (accelerator throughput comparison).

Paper's headline speedups for Sunder: 280x over the 50nm AP, 22x over a
14nm-projected AP, 10x over Cache Automaton, 4x over Impala (all with
AP-style reporting charged to the baselines).
"""

from repro.experiments import figure8


def test_figure8(benchmark, bench_scale, save_result):
    rows = benchmark.pedantic(
        lambda: figure8.run(scale=min(bench_scale, 0.01), seed=0),
        rounds=1, iterations=1,
    )
    save_result("figure8_throughput", figure8.render(rows))
    by_name = {row["architecture"]: row for row in rows}

    # Ordering and rough magnitudes (within ~2x of the paper).
    assert by_name["AP (50nm)"]["sunder_speedup_ap"] > 100     # paper 280x
    assert by_name["AP (14nm)"]["sunder_speedup_ap"] > 8       # paper 22x
    assert by_name["CA"]["sunder_speedup_ap"] > 4              # paper 10x
    assert by_name["Impala"]["sunder_speedup_ap"] > 1.5        # paper 4x
    # RAD reporting narrows every gap but never closes it.
    for name in ("AP (50nm)", "AP (14nm)", "CA"):
        row = by_name[name]
        assert 1.0 < row["sunder_speedup_rad"] < row["sunder_speedup_ap"]
