"""Bench F9: regenerate Figure 9 (area for 32K STEs)."""

import pytest

from repro.experiments import figure9


def test_figure9(benchmark, save_result):
    rows = benchmark(figure9.run)
    save_result("figure9_area", figure9.render(rows))
    by_name = {row["architecture"]: row for row in rows}
    # Sunder is the smallest despite fusing reporting into matching
    # (paper ratios: AP 2.1x, Impala 1.6x, CA 1.5x).
    assert by_name["AP"]["ratio_to_sunder"] == pytest.approx(2.1, abs=0.05)
    assert by_name["Impala"]["ratio_to_sunder"] > 1.2
    assert by_name["CA"]["ratio_to_sunder"] > 1.1
    # Sunder's reporting share is tiny (paper: 2% circuitry overhead).
    sunder = by_name["Sunder"]
    assert sunder["reporting_mm2"] < 0.05 * sunder["total_mm2"]
