"""Microbenchmarks of the simulation kernels themselves.

These time the repo's own engines (not the modelled hardware): useful
for tracking simulator performance regressions and for sizing larger
REPRO_BENCH_SCALE runs.
"""

import random

from repro.core import SunderConfig, SunderDevice
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine, NaiveEngine, stream_for
from repro.transform import to_rate

RULES = ["abc", "b.d", "xy+z", "hello", "[0-9]{3}", "(ab)+c", "q(rs|tu)v"]


def _data(length, seed=0):
    rng = random.Random(seed)
    return bytes(rng.choice(b"abcdxyz hello0123qrstuv") for _ in range(length))


def test_bitset_engine_throughput(benchmark):
    machine = compile_ruleset(RULES)
    engine = BitsetEngine(machine)
    data = list(_data(20_000))
    recorder = benchmark(lambda: engine.run(data))
    assert recorder.total_reports > 0


def test_naive_engine_throughput(benchmark):
    machine = compile_ruleset(RULES)
    engine = NaiveEngine(machine)
    data = list(_data(2_000))
    recorder = benchmark(lambda: engine.run(data))
    assert recorder.total_reports > 0


def test_strided_engine_throughput(benchmark):
    machine = to_rate(compile_ruleset(RULES), 4)
    engine = BitsetEngine(machine)
    vectors, limit = stream_for(machine, _data(20_000))
    recorder = benchmark(lambda: engine.run(vectors, position_limit=limit))
    assert recorder.total_reports > 0


def test_device_cycle_throughput(benchmark):
    machine = to_rate(compile_ruleset(RULES), 4)
    config = SunderConfig(rate_nibbles=4, report_bits=16)
    device = SunderDevice(config)
    device.configure(machine)
    vectors, limit = stream_for(machine, _data(2_000))
    result = benchmark(lambda: device.run(vectors, position_limit=limit))
    assert result.cycles == len(vectors)


def test_nibble_transform_speed(benchmark):
    machine = compile_ruleset(RULES * 4)
    strided = benchmark(lambda: to_rate(machine, 4))
    assert strided.arity == 4


def test_instrumentation_overhead_when_unattached():
    """The repro.obs hooks must be near-free with no collector attached.

    Compares the shipping (instrumented) ``BitsetEngine.run`` against an
    uninstrumented replica of its pre-telemetry loop and requires the
    min-of-N slowdown to stay under the documented 5% budget.
    """
    import timeit

    from repro.obs import OBS
    from repro.sim.engine import _normalize_stream
    from repro.sim.reports import ReportRecorder

    assert not OBS.active  # the premise: nothing is collecting
    machine = compile_ruleset(RULES)
    engine = BitsetEngine(machine)
    data = list(_data(20_000))

    def instrumented():
        return engine.run(data)

    def baseline():
        # verbatim pre-instrumentation run() body
        recorder = ReportRecorder()
        engine.reset()
        for vector in _normalize_stream(engine.automaton, data):
            engine.step(vector, recorder)
        return recorder

    assert instrumented().total_reports == baseline().total_reports

    def best_of(func, repeats=7):
        return min(timeit.repeat(func, number=1, repeat=repeats))

    best_of(instrumented, repeats=2)  # warm-up
    slowdown = best_of(instrumented) / best_of(baseline)
    assert slowdown < 1.05, (
        "instrumented BitsetEngine.run is %.3fx the uninstrumented loop "
        "(budget: 1.05x)" % slowdown
    )
