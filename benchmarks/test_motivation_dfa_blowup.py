"""Motivation bench: why software DFAs fail on accelerator workloads.

The paper's Section 1 argument in numbers: NFAs execute slowly in
software (memory accesses scale with active states) while DFAs blow up
on the very pattern families the benchmarks use (Dotstar).  The
in-memory architectures evaluate every state in parallel each cycle —
which is the point.
"""

from repro.baselines.software import determinize, software_cost_model
from repro.errors import CapacityError
from repro.experiments.formatting import format_table
from repro.regex import compile_ruleset
from repro.sim import dynamic_statistics

COLUMNS = [
    ("patterns", "Dotstar patterns"),
    ("nfa_states", "NFA states"),
    ("dfa_states", "DFA states"),
    ("dfa_mb", "DFA table (MB)"),
    ("nfa_accesses", "NFA accesses/byte"),
]


def _dotstar_patterns(count):
    return ["%s.*%s" % (chr(97 + i) * 2, chr(110 + i) * 2)
            for i in range(count)]


def _experiment(max_dfa_states=20_000):
    rows = []
    import random
    rng = random.Random(0)
    data = bytes(rng.choice(b"abcdefnopqrs") for _ in range(2_000))
    for count in (1, 2, 4, 6, 8, 10):
        machine = compile_ruleset(_dotstar_patterns(count))
        stats = dynamic_statistics(machine, list(data))
        try:
            dfa = determinize(machine, max_states=max_dfa_states)
            dfa_states = dfa.num_states
            dfa_mb = dfa.table_bytes() / 1e6
        except CapacityError:
            dfa_states = None
            dfa_mb = None
        costs = software_cost_model(machine, stats["avg_active_states"])
        rows.append({
            "patterns": count,
            "nfa_states": len(machine),
            "dfa_states": dfa_states,
            "dfa_mb": dfa_mb,
            "nfa_accesses": costs["nfa_accesses_per_byte"],
        })
    return rows


def test_dfa_blowup(benchmark, save_result):
    rows = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    save_result(
        "motivation_dfa_blowup",
        format_table(rows, COLUMNS,
                     title="Motivation: DFA subset blowup on Dotstar rules"),
    )
    # NFA size grows linearly with the ruleset...
    nfa_sizes = [row["nfa_states"] for row in rows]
    assert nfa_sizes == sorted(nfa_sizes)
    assert nfa_sizes[-1] < nfa_sizes[0] * 15
    # ...while the DFA grows exponentially until it exceeds the cap.
    measured = [row["dfa_states"] for row in rows if row["dfa_states"]]
    assert len(measured) >= 2
    growth = measured[-1] / measured[0]
    assert growth > 2 ** (len(measured) - 1) / 2
    assert rows[-1]["dfa_states"] is None  # blowup observed
