"""Tier-2 check: the profiled experiment exports validate against schema.

Mirrors ``make profile-smoke`` inside the benchmark suite so any drift
in the metrics-snapshot or Chrome-trace exposition formats fails fast.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "scripts"))

import check_metrics_schema  # noqa: E402


def test_profile_smoke(bench_scale):
    assert check_metrics_schema.check(scale=min(bench_scale, 0.005)) == 0
