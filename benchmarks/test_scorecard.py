"""The capstone bench: every headline claim of the paper, graded."""

from repro.experiments import scorecard


def test_scorecard(benchmark, bench_scale, save_result):
    claims = benchmark.pedantic(
        lambda: scorecard.build_scorecard(scale=min(bench_scale, 0.01)),
        rounds=1, iterations=1,
    )
    text = scorecard.render(claims)
    save_result("scorecard", text)
    failed = [claim.name for claim in claims if not claim.passed]
    assert not failed, "claims outside acceptance bands: %s" % failed
