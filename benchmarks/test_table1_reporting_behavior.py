"""Bench T1: regenerate Table 1 (reporting behaviour of all 19 benchmarks)."""

from repro.experiments import table1


def test_table1(benchmark, bench_scale, save_result):
    rows = benchmark.pedantic(
        lambda: table1.run(scale=bench_scale, seed=0), rounds=1, iterations=1,
    )
    save_result("table1_reporting_behavior", table1.render(rows))
    assert len(rows) == 19
    by_name = {row["benchmark"]: row for row in rows}
    # Headline behaviours the paper's analysis rests on:
    assert by_name["Snort"]["report_cycle_pct"] > 85          # ~every cycle
    assert by_name["SPM"]["reports_per_report_cycle"] > 10    # dense bursts
    assert by_name["ClamAV"]["reports"] == 0                  # silent
    assert by_name["Brill"]["reports_per_report_cycle"] > 5   # bursty
