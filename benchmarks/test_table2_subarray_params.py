"""Bench T2: regenerate Table 2 (subarray circuit parameters)."""

from repro.experiments import table2


def test_table2(benchmark, save_result):
    rows, derived = benchmark(table2.run)
    save_result("table2_subarray_params", table2.render(rows, derived))
    assert len(rows) == 3
    assert 2.0 < derived["area_ratio_8t_over_6t"] < 2.3
