"""Bench T3: regenerate Table 3 (state/transition overhead per rate)."""

from repro.experiments import table3
from repro.workloads import PAPER_TABLE3_AVERAGES


def test_table3(benchmark, bench_scale, save_result):
    rows, averages = benchmark.pedantic(
        lambda: table3.run(scale=min(bench_scale, 0.01), seed=0),
        rounds=1, iterations=1,
    )
    save_result("table3_transform_overhead", table3.render(rows, averages))
    # Shape: 1-nibble costs the most states, 2-nibble is ~free, 4-nibble
    # sits between (paper: 3.1x / 1.0x / 1.2x).
    assert averages["states_1"] > averages["states_4"] > 0.8
    assert 0.8 < averages["states_2"] < 1.5
    assert averages["states_1"] >= 1.5
    # Transitions follow the same ordering (paper: 4.5x / 1.0x / 1.8x).
    assert averages["transitions_1"] > averages["transitions_2"]
    paper = PAPER_TABLE3_AVERAGES["state_ratio"]
    # Stay within a factor of ~2 of the paper's averages at every rate.
    for rate in (1, 2, 4):
        ratio = averages["states_%d" % rate] / paper[rate]
        assert 0.4 < ratio < 2.5, rate
