"""Bench T4: regenerate Table 4 (reporting overheads, all architectures).

This is the paper's central result: Sunder's in-place reporting is
near-free while AP-style reporting costs up to 46x, and RAD only helps
sparse reporters.
"""

from repro.experiments import table4


def test_table4(benchmark, bench_scale, save_result):
    rows, averages = benchmark.pedantic(
        lambda: table4.run(scale=min(bench_scale, 0.01), seed=0),
        rounds=1, iterations=1,
    )
    save_result("table4_reporting_overhead", table4.render(rows, averages))
    by_name = {row["benchmark"]: row for row in rows}

    # Sunder: near-zero overhead everywhere (paper: <= 1.06x).
    for row in rows:
        assert row["sunder_overhead"] < 1.10, row["benchmark"]
        assert row["sunder_fifo_overhead"] <= row["sunder_overhead"] + 1e-9

    # Only heavy reporters flush; silent benchmarks never do.
    for name in ("Dotstar03", "ExactMatch", "ClamAV", "Hamming"):
        assert by_name[name]["sunder_flushes"] == 0, name
    assert by_name["Snort"]["sunder_flushes"] > 0
    assert by_name["SPM"]["sunder_flushes"] > 0

    # AP: Snort is the disaster case (paper: 46x); dense SPM also hurts.
    assert by_name["Snort"]["ap_overhead"] > 20
    assert by_name["SPM"]["ap_overhead"] > 2
    # RAD rescues sparse reporting but cannot beat Sunder.
    assert by_name["Snort"]["rad_overhead"] < by_name["Snort"]["ap_overhead"] / 2
    assert averages["ap_overhead"] > averages["rad_overhead"] > averages["sunder_fifo_overhead"]
