"""Bench T5: regenerate Table 5 (pipeline delays and frequencies)."""

import pytest

from repro.experiments import table5


def test_table5(benchmark, save_result):
    rows = benchmark(table5.run)
    save_result("table5_frequency", table5.render(rows))
    for row in rows:
        if row["paper_operating_ghz"] is not None:
            assert row["operating_frequency_ghz"] == pytest.approx(
                row["paper_operating_ghz"], rel=0.05
            ), row["architecture"]
