"""Interop: exchange automata with the ANML/MNRL ecosystem.

ANML is the Micron AP's XML format (and ANMLZoo's); MNRL is its JSON
successor.  This example compiles a ruleset, exports both formats,
re-imports them, and proves behaviour is preserved — including a strided
machine, which only MNRL can carry (ANML has no vector symbols).

Run:  python examples/anml_interop.py
"""

import tempfile

from repro.automata import anml, mnrl, outline
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine, stream_for
from repro.transform import to_rate


def main():
    ruleset = compile_ruleset([("virus[0-9]{2}", "sig-a"),
                               ("trojan!", "sig-b")])
    print(outline(ruleset, max_states=8))
    data = b"xx virus42 yy trojan! zz"

    # --- ANML round trip (byte automata only) --------------------------
    with tempfile.NamedTemporaryFile("w", suffix=".anml", delete=False) as f:
        anml_path = f.name
    anml.dump(ruleset, anml_path)
    reloaded = anml.load(anml_path)
    want = BitsetEngine(ruleset).run(list(data)).positions()
    got = BitsetEngine(reloaded).run(list(data)).positions()
    print("\nANML round trip: match ends %s == %s -> %s"
          % (want, got, want == got))

    # --- MNRL round trip (any arity, including strided machines) -------
    strided = to_rate(ruleset, 4)
    with tempfile.NamedTemporaryFile("w", suffix=".mnrl", delete=False) as f:
        mnrl_path = f.name
    mnrl.dump(strided, mnrl_path)
    reloaded4 = mnrl.load(mnrl_path)
    vectors, limit = stream_for(strided, data)
    want4 = BitsetEngine(strided).run(vectors, position_limit=limit).positions()
    got4 = BitsetEngine(reloaded4).run(vectors, position_limit=limit).positions()
    print("MNRL round trip (4-nibble machine): nibble positions %s == %s -> %s"
          % (want4, got4, want4 == got4))

    print("\nFiles written:\n  %s\n  %s" % (anml_path, mnrl_path))


if __name__ == "__main__":
    main()
