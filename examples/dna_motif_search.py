"""Approximate DNA motif search with a reconfigurable processing rate.

Genomics workloads have a four-symbol alphabet, so byte-oriented
processing wastes most of the symbol space.  This example builds
Hamming-distance motif automata, compares the three Sunder processing
rates (4/8/16 bits per cycle) on the same motif set, and shows the
throughput-vs-states trade-off that motivates the reconfigurable rate.

Run:  python examples/dna_motif_search.py
"""

import random

from repro.core import SunderConfig, SunderDevice
from repro.hwmodel import SUNDER_PIPELINE
from repro.sim import stream_for
from repro.transform import to_rate
from repro.workloads import hamming_automaton
from repro.automata.ops import union


def synth_genome(length, motif, plant_at, seed=3):
    rng = random.Random(seed)
    genome = bytearray(rng.choice(b"ACGT") for _ in range(length))
    for position in plant_at:
        mutated = bytearray(motif)
        mutated[rng.randrange(len(motif))] = rng.choice(b"ACGT")
        genome[position:position + len(motif)] = mutated
    return bytes(genome)


def main():
    motifs = [b"ACGTACGTAC", b"TTGACAGGAT", b"CCWGGA".replace(b"W", b"A")]
    rules = [
        hamming_automaton(motif, 2, "m%d" % index, motif.decode())
        for index, motif in enumerate(motifs)
    ]
    byte_machine = union(rules, name="motifs")

    genome = synth_genome(4_000, motifs[0], plant_at=[0])
    print("Genome: %d bases; searching %d motifs at Hamming distance 2"
          % (len(genome), len(motifs)))

    print("\n%-6s %-10s %-8s %-12s %s" % (
        "rate", "bits/cycle", "states", "Gbps", "matches"))
    for rate in (1, 2, 4):
        machine = to_rate(byte_machine, rate)
        device = SunderDevice(SunderConfig(rate_nibbles=rate, report_bits=16))
        device.configure(machine)
        vectors, limit = stream_for(machine, genome)
        result = device.run(vectors, position_limit=limit)
        matches = sorted(
            (event.position // 2, event.report_code)
            for event in result.reports().events
        )
        gbps = SUNDER_PIPELINE.operating_frequency_ghz * 4 * rate
        print("%-6d %-10d %-8d %-12.1f %s" % (
            rate, 4 * rate, len(machine), gbps, matches))

    print("\nHigher rates buy throughput with more states per motif —")
    print("the trade Sunder lets you reconfigure per application.")


if __name__ == "__main__":
    main()
