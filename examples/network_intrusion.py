"""Network-intrusion detection: Sunder vs the AP reporting architecture.

Snort-style workloads report on nearly every cycle — the case where the
Micron AP's reporting architecture collapses (up to 46x slowdown, paper
Table 4) while Sunder's in-place reporting stays at ~1.0x.  This example
builds a hot intrusion ruleset, streams synthetic traffic, and compares
both reporting models on the *same* report stream.

Run:  python examples/network_intrusion.py
"""

import random

from repro.baselines import ApReportingModel
from repro.core import (
    ReportingPerfModel,
    SunderConfig,
    pu_fill_cycles_from_events,
)
from repro.core.mapping import place
from repro.regex import compile_ruleset
from repro.sim import BitsetEngine, ReportRecorder, stream_for
from repro.transform import to_rate

RULES = [
    ("[a-z0-9]", "any-payload-byte"),     # hot: telemetry rule
    ("[a-z]", "alpha-payload-byte"),      # hot: second telemetry rule
    ("GET /etc/passwd", "lfi-attempt"),   # cold signatures below
    ("<script>", "xss-attempt"),
    ("union select", "sqli-attempt"),
    ("\\x90{8}", "nop-sled"),
]


def synth_traffic(length, seed=7):
    rng = random.Random(seed)
    alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789 "
    weights = [0.95 / 36] * 36 + [0.05]
    return bytes(rng.choices(alphabet, weights=weights, k=length))


def main():
    ruleset = compile_ruleset(RULES)
    traffic = synth_traffic(20_000)

    # Functional run at 8 bits/cycle: the AP's native rate.
    recorder = ReportRecorder(keep_events=True)
    BitsetEngine(ruleset).run(list(traffic), recorder)
    print("Traffic: %d bytes, %d reports over %d report cycles (%.1f%%)" % (
        len(traffic), recorder.total_reports, recorder.report_cycles,
        100.0 * recorder.report_cycles / len(traffic),
    ))

    # AP and AP+RAD reporting overheads on that report stream.
    report_ids = [s.id for s in ruleset.report_states()]
    ap = ApReportingModel(scale=0.02).evaluate(
        recorder.events, report_ids, len(traffic))
    rad = ApReportingModel(rad=True, scale=0.02).evaluate(
        recorder.events, report_ids, len(traffic))

    # Sunder at 16 bits/cycle with in-place reporting.
    machine = to_rate(ruleset, 4)
    vectors, limit = stream_for(machine, traffic)
    strided_recorder = ReportRecorder(keep_events=True, position_limit=limit)
    BitsetEngine(machine).run(vectors, strided_recorder)
    config = SunderConfig(rate_nibbles=4, report_bits=16)
    placement = place(machine, config)
    fills = pu_fill_cycles_from_events(strided_recorder.events, placement)
    sunder = ReportingPerfModel(config).evaluate(
        fills, len(vectors), capacity_scale=0.02)

    print("\nReporting overhead on this trace:")
    print("  AP (8-bit)      %6.2fx" % ap.slowdown)
    print("  AP+RAD (8-bit)  %6.2fx" % rad.slowdown)
    print("  Sunder (16-bit) %6.2fx  (%d flushes)" % (
        sunder.slowdown, sunder.flushes))

    speedup = (16 * ap.slowdown) / (8 * sunder.slowdown)
    print("\nSunder end-to-end advantage at equal frequency: %.1fx" % speedup)


if __name__ == "__main__":
    main()
