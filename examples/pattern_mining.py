"""Sequential pattern mining with dense reporting and summarization.

SPM is the paper's stress case: ~1400 reports per reporting cycle.  The
application usually only needs to know *whether* a pattern occurred in
an input window, not the exact cycle — which is what Sunder's in-place
report summarization (column-wise NOR over the reporting rows) answers
without shipping the raw entries to the host.

Run:  python examples/pattern_mining.py
"""

from repro.core import SunderConfig, SunderDevice
from repro.sim import stream_for
from repro.transform import to_rate
from repro.workloads import spm_automaton
from repro.automata.ops import union


def main():
    # Mine three sequential patterns over a transaction stream: each
    # matches its items in order with arbitrary gaps.
    patterns = [b"adf", b"bdf", b"xyz"]
    rules = [
        spm_automaton(items, "spm%d" % index, items.decode())
        for index, items in enumerate(patterns)
    ]
    machine = to_rate(union(rules, name="spm"), 4)

    # FIFO off so the reports stay resident for summarization.
    device = SunderDevice(SunderConfig(rate_nibbles=4, report_bits=16,
                                       fifo=False))
    device.configure(machine)

    transactions = b"a c d e f g | b q d q f | a d q q c"
    vectors, limit = stream_for(machine, transactions)
    result = device.run(vectors, position_limit=limit)

    print("Transactions:", transactions.decode())
    print("Cycles: %d  reporting overhead: %.3fx" % (
        result.cycles, result.slowdown))

    # Cycle-accurate view (what a host would post-process):
    print("\nCycle-accurate reports:")
    for event in sorted(result.reports().events, key=lambda e: e.position):
        print("  byte %2d  pattern %r" % (event.position // 2,
                                          event.report_code))

    # Summarized view: one NOR sweep, 1-2 stall cycles per 16-row batch.
    summary, stall = device.summarize_all()
    found = sorted(machine.state(s).report_code for s in summary)
    print("\nSummarized ('did it ever match?') in %d stall cycles:" % stall)
    for items in patterns:
        mark = "FOUND" if items.decode() in found else "absent"
        print("  %s: %s" % (items.decode(), mark))


if __name__ == "__main__":
    main()
