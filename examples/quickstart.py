"""Quickstart: compile patterns, transform them, and run them on Sunder.

The end-to-end flow of the library in ~40 lines:

1. compile regexes into a homogeneous NFA,
2. transform it to 4-nibble (16-bit/cycle) processing,
3. place it on a bit-faithful Sunder device,
4. stream input and read the reports back out of the
   in-subarray reporting regions.

Run:  python examples/quickstart.py
"""

from repro.core import SunderConfig, SunderDevice
from repro.regex import compile_ruleset
from repro.sim import stream_for
from repro.transform import to_rate


def main():
    # 1. A small ruleset.  Report codes identify which rule matched.
    ruleset = compile_ruleset([
        ("GET /admin", "http-admin-probe"),
        ("root:[^\\n]*:0:0:", "passwd-leak"),
        ("[0-9]{3}-[0-9]{2}-[0-9]{4}", "ssn-pattern"),
    ])
    print("Compiled ruleset:", ruleset.summary())

    # 2. Nibble transformation + temporal striding to 16 bits/cycle.
    machine = to_rate(ruleset, 4)
    print("After 4-nibble transform:", machine.summary())

    # 3. Configure a Sunder device (defaults follow the paper: m=12
    #    report bits, n=20 metadata bits, FIFO reporting).
    device = SunderDevice(SunderConfig(rate_nibbles=4, report_bits=16))
    placement = device.configure(machine)
    print("Placed onto %d processing unit(s)" % len(placement.pus_used()))

    # 4. Stream some traffic through it.
    traffic = (
        b"GET /index.html\n"
        b"GET /admin HTTP/1.1\n"
        b"root:x:0:0:root:/root:/bin/bash\n"
        b"call me at 123-45-6789 ok?\n"
    )
    vectors, limit = stream_for(machine, traffic)
    result = device.run(vectors, position_limit=limit)

    print("\n%d cycles, %.3fx reporting overhead" % (
        result.cycles, result.slowdown))
    print("Reports (byte offset of match end -> rule):")
    for event in sorted(result.reports().events, key=lambda e: e.position):
        byte_offset = event.position // 2  # nibble position -> byte
        print("  byte %3d  %s" % (byte_offset, event.report_code))


if __name__ == "__main__":
    main()
