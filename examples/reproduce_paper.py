"""Run every paper experiment (Tables 1-5, Figures 8-10) in one go.

Equivalent to the benchmark harness without pytest — handy for quickly
regenerating all artifacts at a chosen scale:

    python examples/reproduce_paper.py [scale]

``scale`` is the fraction of the paper's 1MB input / state counts
(default 0.01; the tables take a few minutes at 0.02).
"""

import sys
import time

from repro.experiments import (
    figure8,
    figure9,
    figure10,
    table1,
    table2,
    table3,
    table4,
    table5,
)


def main(scale=0.01):
    print("Reproducing Sunder (MICRO'21) artifacts at scale %.3f\n" % scale)
    started = time.time()

    rows, derived = table2.run()
    print(table2.render(rows, derived), "\n")

    print(table5.render(table5.run()), "\n")

    print(figure9.render(figure9.run()), "\n")

    print(figure10.render(figure10.run()), "\n")

    rows = table1.run(scale=scale)
    print(table1.render(rows), "\n")

    rows3, averages3 = table3.run(scale=scale)
    print(table3.render(rows3, averages3), "\n")

    rows4, averages4 = table4.run(scale=scale)
    print(table4.render(rows4, averages4), "\n")

    print(figure8.render(figure8.run(table4_rows=rows4)), "\n")

    print("Done in %.1fs" % (time.time() - started))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
