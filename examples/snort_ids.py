"""A miniature IDS: real Snort-rule syntax, end to end on Sunder.

Parses payload-matching Snort rules, compiles them into one automaton,
recommends a processing rate for the deployment, runs traffic through
the bit-faithful device, and prints alerts with their rule sids.

Run:  python examples/snort_ids.py
"""

from repro.core import SunderConfig, SunderDevice, recommend_rate
from repro.sim import stream_for
from repro.transform import to_rate
from repro.workloads import compile_snort_rules

RULES = r'''
# payload-matching subset of a Snort ruleset
alert tcp any any -> any any (msg:"LFI attempt"; content:"/etc/passwd"; sid:2001;)
alert tcp any any -> any any (msg:"XSS attempt"; content:"<script>"; nocase; sid:2002;)
alert tcp any any -> any any (msg:"SQLi"; content:"union"; content:"select"; nocase; sid:2003;)
alert tcp any any -> any any (msg:"shellcode NOP sled"; content:"|90 90 90 90|"; sid:2004;)
alert tcp any any -> any any (msg:"weak creds"; pcre:"/pass(word)?=[a-z]{1,6}[0-9]{0,2}&/"; sid:2005;)
'''

TRAFFIC = (
    b"GET /index.html HTTP/1.1\r\n"
    b"GET /../../etc/passwd HTTP/1.1\r\n"
    b"POST /search q=<SCRIPT>alert(1)</script>\r\n"
    b"POST /login user=bob&password=hunter2&go=1\r\n"
    b"payload: \x90\x90\x90\x90\xcc\xcc\r\n"
    b"GET /vuln?id=1 UNION SELECT * FROM users\r\n"
)


def main():
    machine = compile_snort_rules(RULES)
    print("Compiled %d states from %d rules"
          % (len(machine), len(machine.report_states())))

    best, plans = recommend_rate(machine, device_clusters=4)
    print("Recommended rate: %d nibbles/cycle (%.1f Gbps)"
          % (best.rate, best.effective_gbps))

    strided = to_rate(machine, best.rate)
    device = SunderDevice(SunderConfig(rate_nibbles=best.rate,
                                       report_bits=16))
    device.configure(strided)
    vectors, limit = stream_for(strided, TRAFFIC)
    result = device.run(vectors, position_limit=limit)

    print("\nAlerts (byte offset -> sid):")
    nibbles_per_byte = 2
    for event in sorted(result.reports().events, key=lambda e: e.position):
        print("  %5d  sid:%s" % (event.position // nibbles_per_byte,
                                 event.report_code))
    print("\n%d cycles, %.3fx reporting overhead"
          % (result.cycles, result.slowdown))


if __name__ == "__main__":
    main()
