"""Batched/sharded execution suite -> ``BENCH_batch.json`` trajectory.

Usage:  python scripts/bench_batch.py [--scale S] [--repeats N]
                                      [--lanes L] [--out PATH]

For each calibrated workload the input stream is cut into ``lanes``
equal chunks (independent streams) and the suite measures aggregate
**streams/sec** at batch sizes 1/4/16/64:

- ``engine``  — batch 1 is today's serial path (a fresh
  :class:`~repro.sim.BitsetEngine` per stream); batch k drives groups
  of k lanes through one engine's ``run_batch`` (one compiled automaton
  + one shared step cache per group);
- ``device``  — batch 1 is ``SunderDevice.run`` per stream on one
  configured packed device (reports decoded once at the end); batch k
  uses ``run_batch``, which skips the per-cycle reporting-region model
  entirely.

It also measures single-stream sharding: ``run_sharded`` at K shards
through a K-worker :class:`~repro.sim.parallel.ParallelRunner` against
the serial single-pass time (workloads whose automaton is cyclic have
no depth bound and are skipped — the engine falls back to serial).

The payload schema below is pinned by ``validate_payload`` and the
tier-2 smoke ``benchmarks/test_bench_batch.py``; the committed
``BENCH_batch.json`` feeds the ``repro bench`` regression gate.

Run via ``make bench-batch``.
"""

import argparse
import json
import math
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import SunderConfig, SunderDevice  # noqa: E402
from repro.sim import BitsetEngine, stream_for  # noqa: E402
from repro.sim.parallel import ParallelRunner  # noqa: E402
from repro.transform import to_rate  # noqa: E402
from repro.workloads.registry import generate  # noqa: E402

#: Schema identifier written into (and required from) every payload.
SCHEMA = "repro-bench-batch"
SCHEMA_VERSION = 1

#: Default workload subset: report-heavy, state-dense, and sparse ends.
DEFAULT_WORKLOADS = ("Snort", "Bro217", "Hamming")

#: Batch sizes swept for both kernels (1 = the serial anchor).
BATCH_SIZES = (1, 4, 16, 64)

#: Shard counts swept through the worker pool.
SHARD_COUNTS = (2, 4)

#: Processing rate of the device under test (the paper's headline rate).
RATE = 4

#: ``repro bench run --quick`` overrides: the baseline's scale (speedups
#: are scale-sensitive) with one repeat and one workload.
QUICK_PARAMS = {"scale": 0.01, "repeats": 1, "workloads": ("Snort",)}


def _chunk(values, count):
    """``values`` cut into ``count`` equal chunks (in order)."""
    size = len(values) // count
    return [values[index * size:(index + 1) * size] for index in range(count)]


def _grouped(items, group):
    return [items[index:index + group] for index in range(0, len(items), group)]


def _best_and_band(measure, repeats):
    """(best value, [worst, best] band) over ``repeats`` calls."""
    best = 0.0
    worst = math.inf
    for _ in range(repeats):
        value = measure()
        best = max(best, value)
        worst = min(worst, value)
    return best, [worst, best]


def _engine_streams_per_sec(automaton, lane_streams, batch):
    """Aggregate streams/sec processing every lane in groups of ``batch``.

    Engine construction is inside the timed region on purpose: the
    batched path's pitch is one compiled automaton serving k streams,
    so the serial anchor pays that setup once per stream.
    """
    start = time.perf_counter()
    for group in _grouped(lane_streams, batch):
        engine = BitsetEngine(automaton)
        if batch == 1:
            engine.run(group[0])
        else:
            engine.run_batch(group)
    return len(lane_streams) / (time.perf_counter() - start)


def _device_streams_per_sec(device, lane_streams, batch):
    """Aggregate streams/sec through one configured packed device."""
    start = time.perf_counter()
    if batch == 1:
        for vectors in lane_streams:
            device.run(vectors)
            device.reset_matching_state()
        device.report_events()  # decode once; run_batch decodes inline
    else:
        for group in _grouped(lane_streams, batch):
            device.run_batch(group)
    return len(lane_streams) / (time.perf_counter() - start)


def _shard_seconds(automaton, vectors, shards, workers):
    """Wall seconds for one sharded pass (serial when shards == 1)."""
    engine = BitsetEngine(automaton)
    runner = ParallelRunner(workers=workers) if workers > 1 else None
    start = time.perf_counter()
    if shards == 1:
        engine.run(vectors)
    else:
        engine.run_sharded(vectors, shards, runner=runner)
    return time.perf_counter() - start


def bench_workload(name, scale, seed, repeats, lanes):
    """Batch-throughput and shard-speedup figures for one workload."""
    instance = generate(name, scale=scale, seed=seed)
    automaton = instance.automaton
    data = instance.input_bytes
    lane_bytes = _chunk(data, lanes)
    engine_lanes = [list(chunk) for chunk in lane_bytes]

    strided = to_rate(automaton, RATE)
    config = SunderConfig(rate_nibbles=RATE, report_bits=32)
    device_lanes = [stream_for(strided, chunk)[0] for chunk in lane_bytes]

    engine_batches = {}
    for batch in BATCH_SIZES:
        size = min(batch, lanes)
        rate, band = _best_and_band(
            lambda s=size: _engine_streams_per_sec(automaton,
                                                   engine_lanes, s),
            repeats)
        engine_batches[str(batch)] = {"streams_per_sec": rate,
                                      "band": band}

    device = SunderDevice(config, fidelity="packed")
    device.configure(strided)
    device_batches = {}
    for batch in BATCH_SIZES:
        size = min(batch, lanes)
        rate, band = _best_and_band(
            lambda s=size: _device_streams_per_sec(device, device_lanes, s),
            repeats)
        device_batches[str(batch)] = {"streams_per_sec": rate,
                                      "band": band}

    depth = automaton.depth_bound()
    shard = {}
    if depth is not None:
        stream = list(data)
        serial_best, serial_band = _best_and_band(
            lambda: 1.0 / _shard_seconds(automaton, stream, 1, 1), repeats)
        for shards in SHARD_COUNTS:
            best, band = _best_and_band(
                lambda k=shards: 1.0 / _shard_seconds(automaton, stream,
                                                      k, k),
                repeats)
            shard[str(shards)] = {
                "speedup": best / serial_best,
                "band": [band[0] / serial_band[1],
                         band[1] / serial_band[0]],
            }

    def ratio(batches, batch):
        anchor = batches["1"]
        entry = batches[str(batch)]
        return {
            "speedup": entry["streams_per_sec"] / anchor["streams_per_sec"],
            "band": [entry["band"][0] / anchor["band"][1],
                     entry["band"][1] / anchor["band"][0]],
        }

    return {
        "name": name,
        "states": len(automaton),
        "cycles": len(data),
        "lanes": lanes,
        "depth_bound": depth,
        "engine_batches": engine_batches,
        "device_batches": device_batches,
        "engine_batch16": ratio(engine_batches, 16),
        "device_batch16": ratio(device_batches, 16),
        "shard": shard,
    }


def run_suite(scale=0.01, seed=0, repeats=3, lanes=64,
              workloads=DEFAULT_WORKLOADS):
    """Measure everything; returns the BENCH_batch payload dict."""
    rows = [bench_workload(name, scale, seed, repeats, lanes)
            for name in workloads]
    best = max(row["engine_batch16"]["speedup"] for row in rows)
    best_device = max(row["device_batch16"]["speedup"] for row in rows)
    return {
        "version": SCHEMA_VERSION,
        "schema": SCHEMA,
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "lanes": lanes,
        "workloads": rows,
        "best_engine_batch16_speedup": best,
        "best_device_batch16_speedup": best_device,
    }


def extract_metrics(payload):
    """Scale-insensitive figures of merit for the regression gate.

    Batch and shard speedups are self-normalized within one run (batched
    path vs in-run serial anchor), so they compare across machines.
    """
    metrics = {}
    for row in payload["workloads"]:
        metrics["engine_batch16:%s" % row["name"]] = \
            row["engine_batch16"]["speedup"]
        metrics["device_batch16:%s" % row["name"]] = \
            row["device_batch16"]["speedup"]
        for shards, entry in row["shard"].items():
            metrics["shard%s:%s" % (shards, row["name"])] = entry["speedup"]
    return metrics


def extract_bands(payload):
    """Per-metric ``[lo, hi]`` noise bands from the repeat extremes."""
    bands = {}
    for row in payload["workloads"]:
        bands["engine_batch16:%s" % row["name"]] = \
            row["engine_batch16"]["band"]
        bands["device_batch16:%s" % row["name"]] = \
            row["device_batch16"]["band"]
        for shards, entry in row["shard"].items():
            bands["shard%s:%s" % (shards, row["name"])] = entry["band"]
    return bands


def _require(condition, message):
    if not condition:
        raise ValueError("BENCH_batch payload invalid: %s" % message)


def validate_payload(payload):
    """Schema check for the trajectory file; raises ValueError on drift.

    Returns the payload unchanged so callers can chain.
    """
    _require(isinstance(payload, dict), "expected an object")
    _require(payload.get("schema") == SCHEMA, "schema != %r" % SCHEMA)
    _require(payload.get("version") == SCHEMA_VERSION,
             "version != %d" % SCHEMA_VERSION)
    for field in ("scale", "seed", "repeats", "lanes",
                  "best_engine_batch16_speedup",
                  "best_device_batch16_speedup"):
        _require(isinstance(payload.get(field), (int, float)),
                 "%s must be a number" % field)
    rows = payload.get("workloads")
    _require(isinstance(rows, list) and rows, "workloads must be non-empty")
    for row in rows:
        _require(isinstance(row.get("name"), str), "workload name")
        for field in ("states", "cycles", "lanes"):
            _require(isinstance(row.get(field), int) and row[field] > 0,
                     "%s must be a positive int" % field)
        for kind in ("engine_batches", "device_batches"):
            batches = row.get(kind)
            _require(isinstance(batches, dict)
                     and set(batches) == {str(b) for b in BATCH_SIZES},
                     "%s must cover batch sizes %s" % (kind, BATCH_SIZES))
            for label, entry in batches.items():
                _require(entry.get("streams_per_sec", 0) > 0,
                         "%s[%s] streams_per_sec" % (kind, label))
        for kind in ("engine_batch16", "device_batch16"):
            entry = row.get(kind)
            _require(isinstance(entry, dict) and entry.get("speedup", 0) > 0,
                     "%s speedup" % kind)
            band = entry.get("band")
            _require(isinstance(band, list) and len(band) == 2
                     and 0 < band[0] <= band[1], "%s band" % kind)
        shard = row.get("shard")
        _require(isinstance(shard, dict), "shard must be an object")
        _require(row.get("depth_bound") is None or shard,
                 "acyclic workload must carry shard figures")
        for shards, entry in shard.items():
            _require(entry.get("speedup", 0) > 0,
                     "shard[%s] speedup" % shards)
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--lanes", type=int, default=64)
    parser.add_argument("--workloads", nargs="+", default=DEFAULT_WORKLOADS)
    parser.add_argument("--out", default="BENCH_batch.json")
    args = parser.parse_args(argv)

    payload = run_suite(scale=args.scale, seed=args.seed,
                        repeats=args.repeats, lanes=args.lanes,
                        workloads=args.workloads)
    validate_payload(payload)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for row in payload["workloads"]:
        shard_text = "  ".join(
            "shard%s %.2fx" % (shards, entry["speedup"])
            for shards, entry in sorted(row["shard"].items())) or "cyclic"
        print("%-10s engine batch16 %.2fx  device batch16 %.2fx  %s" % (
            row["name"], row["engine_batch16"]["speedup"],
            row["device_batch16"]["speedup"], shard_text))
    print("best engine batch16 speedup: %.2fx"
          % payload["best_engine_batch16_speedup"])
    print("best device batch16 speedup: %.2fx"
          % payload["best_device_batch16_speedup"])
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
