"""Device microbenchmark suite -> ``BENCH_device.json`` trajectory file.

Usage:  python scripts/bench_device.py [--scale S] [--repeats N]
                                       [--input-bytes B] [--out PATH]

For each calibrated workload the suite measures steady-state device
cycles/sec of three :class:`~repro.core.device.SunderDevice`
configurations over the same strided input stream:

- ``literal``        — the bit-level oracle path (numpy wired-NORs,
  crossbar row activations), kept as the comparison anchor;
- ``packed``         — the bitmask-compiled kernel with the step cache
  off (isolates the integer-arithmetic win);
- ``packed_cached``  — the shipping default (packed kernel + LRU step
  cache), with its measured cache hit rate.

Every configuration's report stream is checked identical to the literal
oracle's before timings are accepted.  The payload (schema below,
pinned by ``validate_payload`` and the tier-2 smoke
``benchmarks/test_bench_device.py``) records per-config throughput,
kernel compile seconds, cache hit rates, and the idle-PU skip fraction.

Run via ``make bench-device``.
"""

import argparse
import json
import math
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import PUS_PER_CLUSTER, SunderConfig, SunderDevice  # noqa: E402
from repro.sim import stream_for  # noqa: E402
from repro.transform import to_rate  # noqa: E402
from repro.workloads.registry import generate  # noqa: E402

#: Schema identifier written into (and required from) every payload.
SCHEMA = "repro-bench-device"
SCHEMA_VERSION = 1

#: Default workload subset: report-heavy, state-dense, and sparse ends.
DEFAULT_WORKLOADS = ("Snort", "Bro217", "Hamming", "Fermi")

#: The measured device configurations, in presentation order.
DEVICE_CONFIGS = (
    ("literal", {"fidelity": "literal"}),
    ("packed", {"fidelity": "packed", "step_cache": 0}),
    ("packed_cached", {"fidelity": "packed"}),
)

#: Processing rate of the device under test (the paper's headline rate).
RATE = 4

#: ``repro bench run --quick`` overrides: the baseline's scale with one
#: timing repeat, a shorter stream, and the cheap end of the workloads.
QUICK_PARAMS = {"scale": 0.01, "repeats": 1, "input_bytes": 2000,
                "workloads": ("Snort", "Hamming")}


def _reset_dynamic_state(device):
    """Return a device to its freshly-configured dynamic state.

    Clears enables/actives, the cycle counter, every reporting region's
    pointers and statistics, the host archives, and the shared FIFO
    drain credit — so repeated timing runs do identical work.  The
    compiled kernel and its step cache survive (steady state is the
    point of the repeats).
    """
    device.reset_matching_state()
    for _, _, pu in device.iter_pus():
        pu.reporting.reset_counters()
    for cluster in device.clusters:
        for archive in cluster.archives:
            archive.batches.clear()
    if hasattr(device, "_drain_credit"):
        device._drain_credit = 0.0


def bench_workload(name, scale, seed, repeats, input_bytes):
    """Cycles/sec for every device configuration on one workload."""
    instance = generate(name, scale=scale, seed=seed)
    strided = to_rate(instance.automaton, RATE)
    data = instance.input_bytes[:input_bytes]
    vectors, limit = stream_for(strided, data)
    config = SunderConfig(rate_nibbles=RATE)

    configs = {}
    report_keys = {}
    pus_used = 0
    for label, knobs in DEVICE_CONFIGS:
        device = SunderDevice(config, **knobs)
        placement = device.configure(strided)
        pus_used = len(placement.pus_used())
        # Warm-up run: compiles the packed kernel, fills the step cache,
        # and yields the report stream for the cross-config parity check.
        result = device.run(vectors, position_limit=limit)
        report_keys[label] = result.reports().event_keys()
        best = math.inf
        worst = 0.0
        for _ in range(repeats):
            _reset_dynamic_state(device)
            start = time.perf_counter()
            device.run(vectors, position_limit=limit)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            worst = max(worst, elapsed)
        kernel = device._kernel
        pu_cycles = len(vectors) * len(list(device.iter_pus())) * (repeats + 1)
        configs[label] = {
            "fidelity": device.fidelity,
            "step_cache": device.step_cache_info()["limit"],
            "cycles_per_sec": len(vectors) / best,
            "cycles_per_sec_band": [len(vectors) / worst,
                                    len(vectors) / best],
            "cache_hit_rate": device.step_cache_info()["hit_rate"],
            "compile_seconds": kernel.compile_seconds if kernel else 0.0,
            "pus_skipped_fraction": (
                kernel.pus_skipped / pu_cycles if kernel else 0.0),
        }
    reports_identical = all(keys == report_keys["literal"]
                            for keys in report_keys.values())
    cached = configs["packed_cached"]
    literal = configs["literal"]
    return {
        "name": name,
        "states": len(strided),
        "pus": pus_used,
        "cycles": len(vectors),
        "reports": len(report_keys["literal"]),
        "reports_identical": reports_identical,
        "configs": configs,
        "speedup": cached["cycles_per_sec"] / literal["cycles_per_sec"],
        # Pessimistic/optimistic pairing of the repeat extremes; the
        # regression gate treats a miss inside this band as noise.
        "speedup_band": [
            cached["cycles_per_sec_band"][0] / literal["cycles_per_sec_band"][1],
            cached["cycles_per_sec_band"][1] / literal["cycles_per_sec_band"][0],
        ],
    }


def run_suite(scale=0.01, seed=0, repeats=3, input_bytes=4000,
              workloads=DEFAULT_WORKLOADS):
    """Measure everything; returns the BENCH_device payload dict."""
    rows = [bench_workload(name, scale, seed, repeats, input_bytes)
            for name in workloads]
    geomean = math.exp(
        sum(math.log(row["speedup"]) for row in rows) / len(rows))
    return {
        "version": SCHEMA_VERSION,
        "schema": SCHEMA,
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "rate": RATE,
        "input_bytes": input_bytes,
        "workloads": rows,
        "geomean_speedup": geomean,
    }


def extract_metrics(payload):
    """Scale-insensitive figures of merit for the regression gate."""
    return {"speedup:%s" % row["name"]: row["speedup"]
            for row in payload["workloads"]}


def extract_bands(payload):
    """Per-metric ``[lo, hi]`` noise bands from the repeat extremes."""
    return {"speedup:%s" % row["name"]: row["speedup_band"]
            for row in payload["workloads"] if "speedup_band" in row}


def _require(condition, message):
    if not condition:
        raise ValueError("BENCH_device payload invalid: %s" % message)


def validate_payload(payload):
    """Schema check for the trajectory file; raises ValueError on drift.

    Returns the payload unchanged so callers can chain.
    """
    _require(isinstance(payload, dict), "expected an object")
    _require(payload.get("schema") == SCHEMA, "schema != %r" % SCHEMA)
    _require(payload.get("version") == SCHEMA_VERSION,
             "version != %d" % SCHEMA_VERSION)
    for field in ("scale", "seed", "repeats", "rate", "input_bytes",
                  "geomean_speedup"):
        _require(isinstance(payload.get(field), (int, float)),
                 "%s must be a number" % field)
    rows = payload.get("workloads")
    _require(isinstance(rows, list) and rows, "workloads must be non-empty")
    expected = {label for label, _ in DEVICE_CONFIGS}
    for row in rows:
        _require(isinstance(row.get("name"), str), "workload name")
        for field in ("states", "cycles"):
            _require(isinstance(row.get(field), int) and row[field] > 0,
                     "%s must be a positive int" % field)
        _require(row.get("reports_identical") is True,
                 "%s: packed reports diverged from literal" % row.get("name"))
        _require(isinstance(row.get("speedup"), (int, float)),
                 "workload speedup")
        configs = row.get("configs")
        _require(isinstance(configs, dict) and set(configs) == expected,
                 "configs must cover %s" % sorted(expected))
        for label, stats in configs.items():
            _require(stats.get("cycles_per_sec", 0) > 0,
                     "%s cycles_per_sec" % label)
            _require(0.0 <= stats.get("cache_hit_rate", -1) <= 1.0,
                     "%s cache_hit_rate" % label)
            _require(stats.get("compile_seconds", -1) >= 0.0,
                     "%s compile_seconds" % label)
            _require(0.0 <= stats.get("pus_skipped_fraction", -1) <= 1.0,
                     "%s pus_skipped_fraction" % label)
        # Noise bands are optional (older payloads predate them).
        band = row.get("speedup_band")
        if band is not None:
            _require(isinstance(band, list) and len(band) == 2
                     and 0 < band[0] <= band[1], "speedup_band")
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--input-bytes", type=int, default=4000,
                        help="bytes of each workload's stream to run "
                             "(the literal oracle bounds feasible sizes)")
    parser.add_argument("--workloads", nargs="+", default=DEFAULT_WORKLOADS)
    parser.add_argument("--out", default="BENCH_device.json")
    args = parser.parse_args(argv)

    payload = run_suite(scale=args.scale, seed=args.seed,
                        repeats=args.repeats, input_bytes=args.input_bytes,
                        workloads=args.workloads)
    validate_payload(payload)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for row in payload["workloads"]:
        cached = row["configs"]["packed_cached"]
        print("%-12s %6d states %6d cycles  literal %8.0f c/s   "
              "packed+cache %9.0f c/s  (%.2fx, hit %.1f%%, skip %.1f%%)" % (
                  row["name"], row["states"], row["cycles"],
                  row["configs"]["literal"]["cycles_per_sec"],
                  cached["cycles_per_sec"], row["speedup"],
                  100 * cached["cache_hit_rate"],
                  100 * cached["pus_skipped_fraction"]))
    print("geomean speedup: %.2fx" % payload["geomean_speedup"])
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
