"""Engine microbenchmark suite -> ``BENCH_engine.json`` trajectory file.

Usage:  python scripts/bench_engine.py [--scale S] [--repeats N]
                                       [--workers W] [--out PATH]

For each calibrated workload the suite measures steady-state cycles/sec
of three engine configurations:

- ``baseline``       — ``kernel="scan", step_cache=0``: the pre-kernel
  engine (per-active-bit successor loop, no memoization), kept as the
  comparison anchor;
- ``sliced``         — block-sliced successor tables, cache off;
- ``sliced_cached``  — the shipping default (sliced kernel + LRU step
  cache), with its measured cache hit rate.

It also times the Table 1 harness serially vs through
``ParallelRunner`` and checks the rows are identical, then writes one
JSON payload (schema below, pinned by ``validate_payload`` and the
tier-2 smoke ``benchmarks/test_bench_engine.py``).

Run via ``make bench-engine``.
"""

import argparse
import json
import math
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import table1  # noqa: E402
from repro.sim import BitsetEngine  # noqa: E402
from repro.workloads.registry import generate  # noqa: E402

#: Schema identifier written into (and required from) every payload.
SCHEMA = "repro-bench-engine"
SCHEMA_VERSION = 1

#: Default workload subset: the report-heavy, the state-dense, and the
#: sparse ends of the Table 1 suite.
DEFAULT_WORKLOADS = ("Snort", "Brill", "SPM", "Bro217", "Fermi", "Hamming")

#: The measured engine configurations, in presentation order.
KERNEL_CONFIGS = (
    ("baseline", {"kernel": "scan", "step_cache": 0}),
    ("sliced", {"kernel": "sliced", "step_cache": 0}),
    ("sliced_cached", {"kernel": "sliced"}),
)

#: ``repro bench run --quick`` overrides: the baseline's scale (speedups
#: are scale-sensitive, so the gate only compares same-scale payloads)
#: with fewer repeats and the fast end of the workload set.
QUICK_PARAMS = {"scale": 0.01, "repeats": 1, "workers": 2,
                "workloads": ("Snort", "Bro217", "Hamming")}


def _cycles_per_sec(engine, data, repeats):
    """(best cycles/sec, [worst, best] band) over ``repeats`` runs."""
    engine.run(data)  # warm-up: fills lazy tables and the step cache
    best = math.inf
    worst = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        engine.run(data)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        worst = max(worst, elapsed)
    return len(data) / best, [len(data) / worst, len(data) / best]


def bench_workload(name, scale, seed, repeats):
    """Cycles/sec for every kernel configuration on one workload."""
    instance = generate(name, scale=scale, seed=seed)
    data = list(instance.input_bytes)
    kernels = {}
    for label, config in KERNEL_CONFIGS:
        engine = BitsetEngine(instance.automaton, **config)
        rate, band = _cycles_per_sec(engine, data, repeats)
        kernels[label] = {
            "kernel": engine.kernel,
            "step_cache": engine._step_cache_limit,
            "cycles_per_sec": rate,
            "cycles_per_sec_band": band,
            "cache_hit_rate": engine.step_cache_info()["hit_rate"],
        }
    cached = kernels["sliced_cached"]
    base = kernels["baseline"]
    return {
        "name": name,
        "states": len(instance.automaton),
        "cycles": len(data),
        "kernels": kernels,
        "speedup": cached["cycles_per_sec"] / base["cycles_per_sec"],
        # Most-pessimistic to most-optimistic pairing of the repeat
        # extremes: the regression gate treats a miss inside this band
        # as noise, not a regression.
        "speedup_band": [
            cached["cycles_per_sec_band"][0] / base["cycles_per_sec_band"][1],
            cached["cycles_per_sec_band"][1] / base["cycles_per_sec_band"][0],
        ],
    }


def bench_harness(names, scale, seed, workers):
    """Serial vs parallel Table 1 wall time over ``names``."""
    start = time.perf_counter()
    serial_rows = table1.run(scale=scale, seed=seed, names=names, workers=1)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel_rows = table1.run(scale=scale, seed=seed, names=names,
                               workers=workers)
    parallel_seconds = time.perf_counter() - start
    return {
        "experiment": "table1",
        "benchmarks": len(names),
        "workers": workers,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "rows_identical": serial_rows == parallel_rows,
    }


def run_suite(scale=0.01, seed=0, repeats=3, workers=4,
              workloads=DEFAULT_WORKLOADS):
    """Measure everything; returns the BENCH_engine payload dict."""
    names = tuple(workloads)
    rows = [bench_workload(name, scale, seed, repeats) for name in names]
    geomean = math.exp(
        sum(math.log(row["speedup"]) for row in rows) / len(rows))
    return {
        "version": SCHEMA_VERSION,
        "schema": SCHEMA,
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "workloads": rows,
        "geomean_speedup": geomean,
        "harness": bench_harness(names, scale, seed, workers),
    }


def extract_metrics(payload):
    """Scale-insensitive figures of merit for the regression gate.

    Per-workload kernel speedups are self-normalized within one run
    (optimized path vs in-run baseline), so they compare meaningfully
    across machines — unlike absolute cycles/sec.
    """
    return {"speedup:%s" % row["name"]: row["speedup"]
            for row in payload["workloads"]}


def extract_bands(payload):
    """Per-metric ``[lo, hi]`` noise bands from the repeat extremes.

    Absent from payloads recorded before bands existed; the gate treats
    a missing band as "no noise allowance".
    """
    return {"speedup:%s" % row["name"]: row["speedup_band"]
            for row in payload["workloads"] if "speedup_band" in row}


def _require(condition, message):
    if not condition:
        raise ValueError("BENCH_engine payload invalid: %s" % message)


def validate_payload(payload):
    """Schema check for the trajectory file; raises ValueError on drift.

    Returns the payload unchanged so callers can chain.
    """
    _require(isinstance(payload, dict), "expected an object")
    _require(payload.get("schema") == SCHEMA, "schema != %r" % SCHEMA)
    _require(payload.get("version") == SCHEMA_VERSION,
             "version != %d" % SCHEMA_VERSION)
    for field in ("scale", "seed", "repeats", "geomean_speedup"):
        _require(isinstance(payload.get(field), (int, float)),
                 "%s must be a number" % field)
    rows = payload.get("workloads")
    _require(isinstance(rows, list) and rows, "workloads must be non-empty")
    for row in rows:
        _require(isinstance(row.get("name"), str), "workload name")
        for field in ("states", "cycles"):
            _require(isinstance(row.get(field), int) and row[field] > 0,
                     "%s must be a positive int" % field)
        _require(isinstance(row.get("speedup"), (int, float)),
                 "workload speedup")
        kernels = row.get("kernels")
        _require(isinstance(kernels, dict)
                 and set(kernels) == {label for label, _ in KERNEL_CONFIGS},
                 "kernels must cover %s" % [l for l, _ in KERNEL_CONFIGS])
        for label, stats in kernels.items():
            _require(stats.get("cycles_per_sec", 0) > 0,
                     "%s cycles_per_sec" % label)
            _require(0.0 <= stats.get("cache_hit_rate", -1) <= 1.0,
                     "%s cache_hit_rate" % label)
        # Noise bands are optional (older payloads predate them).
        band = row.get("speedup_band")
        if band is not None:
            _require(isinstance(band, list) and len(band) == 2
                     and 0 < band[0] <= band[1], "speedup_band")
    harness = payload.get("harness")
    _require(isinstance(harness, dict), "harness must be an object")
    _require(harness.get("rows_identical") is True,
             "parallel harness rows diverged from serial")
    for field in ("serial_seconds", "parallel_seconds"):
        _require(harness.get(field, 0) > 0, "harness %s" % field)
    _require(isinstance(harness.get("workers"), int)
             and harness["workers"] >= 1, "harness workers")
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--workloads", nargs="+", default=DEFAULT_WORKLOADS)
    parser.add_argument("--out", default="BENCH_engine.json")
    args = parser.parse_args(argv)

    payload = run_suite(scale=args.scale, seed=args.seed,
                        repeats=args.repeats, workers=args.workers,
                        workloads=args.workloads)
    validate_payload(payload)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for row in payload["workloads"]:
        print("%-16s %8d states  baseline %10.0f c/s   sliced+cache "
              "%10.0f c/s  (%.2fx, hit %.1f%%)" % (
                  row["name"], row["states"],
                  row["kernels"]["baseline"]["cycles_per_sec"],
                  row["kernels"]["sliced_cached"]["cycles_per_sec"],
                  row["speedup"],
                  100 * row["kernels"]["sliced_cached"]["cache_hit_rate"]))
    harness = payload["harness"]
    print("geomean speedup: %.2fx" % payload["geomean_speedup"])
    print("table1 harness: %.2fs serial -> %.2fs with %d workers" % (
        harness["serial_seconds"], harness["parallel_seconds"],
        harness["workers"]))
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
