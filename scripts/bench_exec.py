"""Execution-planner suite -> ``BENCH_exec.json`` trajectory.

Usage:  python scripts/bench_exec.py [--scale S] [--seed N]
                                     [--repeats N] [--out PATH]

For each regex family the suite runs one mostly-clean input stream
through a planned :class:`~repro.exec.Session` twice per manual
configuration and once auto-planned:

- **manual configs** — every hand-pickable plan that is valid for the
  family's machine: ``serial`` (the all-defaults plan), ``scan-nocache``
  (the scan kernel with the step cache disabled — the reliably worst
  choice), ``shards4`` (acyclic machines only), and ``gated`` (the
  literal prefilter; filterable machines only);
- **auto** — a plan-free session, so the
  :class:`~repro.exec.Planner` picks the strategy from the machine's
  memoized traits and the stream shape.

The acceptance figure the committed baseline pins: the auto plan's
streams/sec is >= 0.95x the *best* manual configuration and strictly
above the *worst* one on every family — i.e. the planner never costs
more than noise and always dodges the bad configuration.

The payload schema below is pinned by ``validate_payload`` and the
tier-2 smoke ``benchmarks/test_bench_exec.py``; the committed
``BENCH_exec.json`` feeds the ``repro bench`` regression gate.

Run via ``make bench-exec``.
"""

import argparse
import json
import math
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.exec import ExecutionPlan, Session, automaton_traits  # noqa: E402
from repro.regex import compile_ruleset  # noqa: E402

#: Schema identifier written into (and required from) every payload.
SCHEMA = "repro-bench-exec"
SCHEMA_VERSION = 1

#: Benchmarked regex families (a filterable-acyclic, an alternation, and
#: a cyclic machine — one per planner strategy regime).
FAMILIES = {
    "exact": ["abc", "hello", "needle"],
    "alternation": ["q(rs|tu)v", "(foo|bar)"],
    "dotstar": ["a.*b"],
}
DEFAULT_FAMILIES = tuple(sorted(FAMILIES))

#: Clean filler the planted literals sit in (never matches the rules).
NOISE = b"KLMNOPQWRSTUVXYZ"

#: ``repro bench run --quick`` overrides: the baseline's scale (times
#: are scale-sensitive) with one repeat and one family.
QUICK_PARAMS = {"scale": 0.01, "repeats": 1, "families": ("exact",)}


def _stream(rules, length, seed):
    """A mostly-clean stream with a few planted rule literals."""
    rng = random.Random(seed)
    data = bytearray(rng.choice(NOISE) for _ in range(length))
    for index, rule in enumerate(rules):
        seed_text = rule.strip("(").split("|")[0]
        literal = "".join(ch for ch in seed_text if ch.isalnum()).encode()
        position = (index * 977 + 13) % max(1, length - 16)
        data[position:position + len(literal)] = literal
    return bytes(data)


def _manual_plans(traits):
    """Every hand-pickable plan that is valid for this machine."""
    plans = {
        "serial": ExecutionPlan(),
        "scan-nocache": ExecutionPlan(kernel="scan", step_cache=0),
    }
    if traits.depth_bound is not None:
        plans["shards4"] = ExecutionPlan(shards=4)
    if traits.filterable:
        plans["gated"] = ExecutionPlan(prefilter=True)
    return plans


def _best_and_band(measure, repeats):
    """(best value, [worst, best] band) over ``repeats`` calls."""
    best = 0.0
    worst = math.inf
    for _ in range(repeats):
        value = measure()
        best = max(best, value)
        worst = min(worst, value)
    return best, [worst, best]


def _streams_per_sec(machine, plan, data):
    """One full planned execution, session construction included.

    The session is rebuilt per measurement on purpose: the planner's
    pitch is end-to-end (traits lookup, plan selection, engine bind,
    run), so the auto path pays its own planning cost in the figure.
    """
    start = time.perf_counter()
    Session(machine, plan).execute([data])
    return 1.0 / (time.perf_counter() - start)


def bench_family(family, scale, seed, repeats):
    """Auto-vs-manual planner figures for one regex family."""
    rules = FAMILIES[family]
    machine = compile_ruleset(rules)
    traits = automaton_traits(machine)
    length = max(2048, int(scale * 1_000_000))
    data = _stream(rules, length, seed)

    # Warm the cross-session caches (prefilter build, trait artifacts)
    # so every configuration measures steady-state execution rather
    # than whoever happens to run first paying the cold build.
    if traits.filterable:
        Session(machine, ExecutionPlan(prefilter=True)).execute([data[:256]])

    configs = {}
    for label, plan in sorted(_manual_plans(traits).items()):
        rate, band = _best_and_band(
            lambda p=plan: _streams_per_sec(machine, p, data), repeats)
        configs[label] = {"streams_per_sec": rate, "band": band}

    auto_rate, auto_band = _best_and_band(
        lambda: _streams_per_sec(machine, None, data), repeats)
    strategy = Session(machine)
    strategy.execute([data[:64]])  # bind a plan to read its strategy

    best_label = max(configs, key=lambda k: configs[k]["streams_per_sec"])
    worst_label = min(configs, key=lambda k: configs[k]["streams_per_sec"])

    def ratio(label):
        entry = configs[label]
        return {
            "config": label,
            "speedup": auto_rate / entry["streams_per_sec"],
            "band": [auto_band[0] / entry["band"][1],
                     auto_band[1] / entry["band"][0]],
        }

    return {
        "name": family,
        "rules": rules,
        "states": len(machine),
        "cycles": length,
        "strategy": strategy.plan.strategy,
        "auto": {"streams_per_sec": auto_rate, "band": auto_band},
        "configs": configs,
        "auto_vs_best": ratio(best_label),
        "auto_vs_worst": ratio(worst_label),
    }


def run_suite(scale=0.01, seed=0, repeats=3, families=DEFAULT_FAMILIES):
    """Measure everything; returns the BENCH_exec payload dict."""
    rows = [bench_family(family, scale, seed, repeats)
            for family in families]
    ratios = [row["auto_vs_best"]["speedup"] for row in rows]
    geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
    return {
        "version": SCHEMA_VERSION,
        "schema": SCHEMA,
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "families": rows,
        "auto_vs_best_geomean": geomean,
    }


def extract_metrics(payload):
    """Scale-insensitive figures of merit for the regression gate.

    Both ratios are self-normalized within one run (auto plan vs manual
    configurations on the same machine), so they compare across hosts.
    """
    metrics = {}
    for row in payload["families"]:
        metrics["auto_vs_best:%s" % row["name"]] = \
            row["auto_vs_best"]["speedup"]
        metrics["auto_vs_worst:%s" % row["name"]] = \
            row["auto_vs_worst"]["speedup"]
    return metrics


def extract_bands(payload):
    """Per-metric ``[lo, hi]`` noise bands from the repeat extremes."""
    bands = {}
    for row in payload["families"]:
        bands["auto_vs_best:%s" % row["name"]] = row["auto_vs_best"]["band"]
        bands["auto_vs_worst:%s" % row["name"]] = \
            row["auto_vs_worst"]["band"]
    return bands


def _require(condition, message):
    if not condition:
        raise ValueError("BENCH_exec payload invalid: %s" % message)


def validate_payload(payload):
    """Schema check for the trajectory file; raises ValueError on drift.

    Returns the payload unchanged so callers can chain.
    """
    _require(isinstance(payload, dict), "expected an object")
    _require(payload.get("schema") == SCHEMA, "schema != %r" % SCHEMA)
    _require(payload.get("version") == SCHEMA_VERSION,
             "version != %d" % SCHEMA_VERSION)
    for field in ("scale", "seed", "repeats", "auto_vs_best_geomean"):
        _require(isinstance(payload.get(field), (int, float)),
                 "%s must be a number" % field)
    rows = payload.get("families")
    _require(isinstance(rows, list) and rows, "families must be non-empty")
    for row in rows:
        _require(row.get("name") in FAMILIES, "unknown family %r"
                 % row.get("name"))
        for field in ("states", "cycles"):
            _require(isinstance(row.get(field), int) and row[field] > 0,
                     "%s must be a positive int" % field)
        _require(isinstance(row.get("strategy"), str), "strategy")
        auto = row.get("auto")
        _require(isinstance(auto, dict)
                 and auto.get("streams_per_sec", 0) > 0, "auto rate")
        configs = row.get("configs")
        _require(isinstance(configs, dict)
                 and {"serial", "scan-nocache"} <= set(configs),
                 "configs must include the serial and scan-nocache anchors")
        for label, entry in configs.items():
            _require(entry.get("streams_per_sec", 0) > 0,
                     "configs[%s] streams_per_sec" % label)
            band = entry.get("band")
            _require(isinstance(band, list) and len(band) == 2
                     and 0 < band[0] <= band[1],
                     "configs[%s] band" % label)
        for kind in ("auto_vs_best", "auto_vs_worst"):
            entry = row.get(kind)
            _require(isinstance(entry, dict) and entry.get("speedup", 0) > 0,
                     "%s speedup" % kind)
            _require(entry.get("config") in configs,
                     "%s config must name a measured configuration" % kind)
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--families", nargs="+", default=DEFAULT_FAMILIES,
                        choices=sorted(FAMILIES))
    parser.add_argument("--out", default="BENCH_exec.json")
    args = parser.parse_args(argv)

    payload = run_suite(scale=args.scale, seed=args.seed,
                        repeats=args.repeats, families=args.families)
    validate_payload(payload)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for row in payload["families"]:
        print("%-12s auto=%-7s vs best(%s) %.2fx  vs worst(%s) %.2fx" % (
            row["name"], row["strategy"],
            row["auto_vs_best"]["config"], row["auto_vs_best"]["speedup"],
            row["auto_vs_worst"]["config"],
            row["auto_vs_worst"]["speedup"]))
    print("auto-vs-best geomean: %.3fx" % payload["auto_vs_best_geomean"])
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
