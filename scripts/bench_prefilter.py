"""Prefilter match-rate sweep -> ``BENCH_prefilter.json`` trajectory.

Usage:  python scripts/bench_prefilter.py [--scale S] [--repeats N]
                                          [--out PATH]

For each filterable workload the suite builds a family of synthetic
streams of the workload's input length: a clean seeded-random stream
with literal occurrences planted at a swept *density* (occurrences per
byte, 0 = fully clean).  At each density it measures **streams/sec**
through both kernels, gated vs ungated:

- ``engine``  — :func:`repro.prefilter.gated_simulation` against a
  plain :class:`~repro.sim.BitsetEngine` run;
- ``device``  — :func:`repro.prefilter.gated_device_run` against
  ``SunderDevice.run_batch`` on one configured packed device.

Every measured pair is also asserted bit-exact (same report events),
so the suite doubles as an end-to-end differential check.  The row's
``crossover_density`` is the first swept density where the gated
engine path stops winning — the "when prefiltering loses" point
documented in docs/performance.md.

The payload schema below is pinned by ``validate_payload`` and the
tier-2 smoke ``benchmarks/test_bench_prefilter.py``; the committed
``BENCH_prefilter.json`` feeds the ``repro bench`` regression gate.

Run via ``make bench-prefilter``.
"""

import argparse
import contextlib
import gc
import json
import math
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.core import SunderConfig, SunderDevice  # noqa: E402
from repro.prefilter import (build_prefilter, gated_device_run,  # noqa: E402
                             gated_simulation)
from repro.sim import BitsetEngine, ReportRecorder, stream_for  # noqa: E402
from repro.transform import to_rate  # noqa: E402
from repro.workloads.registry import generate  # noqa: E402

#: Schema identifier written into (and required from) every payload.
SCHEMA = "repro-bench-prefilter"
SCHEMA_VERSION = 1

#: Default workload subset: every calibrated *filterable* generator.
DEFAULT_WORKLOADS = ("ClamAV", "ExactMatch")

#: Planted literal occurrences per stream byte (0 = clean stream).
DENSITIES = (0.0, 1e-3, 1e-2, 1e-1)

#: Processing rate of the device under test (the paper's headline rate).
RATE = 4

#: ``repro bench run --quick`` overrides: the baseline's scale (speedups
#: are scale-sensitive) with one workload.  Three repeats stay — the
#: clean gated run is sub-millisecond, so a best-of-1 ratio is noise.
QUICK_PARAMS = {"scale": 0.01, "repeats": 3, "workloads": ("ClamAV",)}


@contextlib.contextmanager
def _gc_quiesced():
    """Collect, then keep the collector off for the timed region.

    The gated path runs in single-digit milliseconds; when this suite
    runs after others in one gate process (``repro bench check``) the
    grown heap makes a stray gen-2 collection inside that window cost
    more than the measurement itself.
    """
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _planted_stream(literals, length, density, seed):
    """Seeded random bytes with literal occurrences planted at ``density``.

    The random filler avoids the literals' first bytes so the intended
    occurrences are the only ones (up to vanishing coincidence for
    multi-byte literals), keeping the match rate equal to ``density``.
    """
    rng = random.Random(seed)
    first_bytes = {literal[0] for literal in literals}
    alphabet = [value for value in range(256) if value not in first_bytes]
    data = bytearray(rng.choice(alphabet) for _ in range(length))
    count = int(length * density)
    if count:
        longest = max(len(literal) for literal in literals)
        stride = max(longest, length // count)
        for index in range(count):
            literal = literals[index % len(literals)]
            position = (index * stride) % max(1, length - longest)
            data[position:position + len(literal)] = literal
    return bytes(data)


def _best_and_band(measure, repeats):
    """(best value, [worst, best] band) over ``repeats`` calls."""
    best = 0.0
    worst = math.inf
    for _ in range(repeats):
        value = measure()
        best = max(best, value)
        worst = min(worst, value)
    return best, [worst, best]


def _engine_pair_seconds(automaton, prefilter, data):
    """(ungated seconds, gated seconds, reports) for one engine stream.

    Engine construction is inside both timed regions: the gated path's
    pitch is that a cold gate never *builds* the engine, so the anchor
    pays construction per stream exactly like a stream-at-a-time
    service would.
    """
    with _gc_quiesced():
        start = time.perf_counter()
        vectors, _ = stream_for(automaton, data)
        base = ReportRecorder(keep_events=True)
        BitsetEngine(automaton).run(vectors, base)
        ungated = time.perf_counter() - start

        start = time.perf_counter()
        recorder = ReportRecorder(keep_events=True)
        gated_simulation(automaton, data, recorder, prefilter=prefilter)
        gated = time.perf_counter() - start

    if recorder.events != base.events:
        raise AssertionError("gated engine run diverged from ungated")
    return ungated, gated, base.total_reports


def _device_pair_seconds(device, strided, source, prefilter, data):
    """(ungated seconds, gated seconds) for one device stream."""
    with _gc_quiesced():
        start = time.perf_counter()
        vectors, limit = stream_for(strided, data)
        base = device.run_batch([vectors], position_limit=limit)[0]
        ungated = time.perf_counter() - start

        start = time.perf_counter()
        recorder = gated_device_run(device, strided, data, source=source,
                                    prefilter=prefilter)
        gated = time.perf_counter() - start

    if recorder.events != base.events:
        raise AssertionError("gated device run diverged from ungated")
    return ungated, gated


def bench_workload(name, scale, seed, repeats):
    """Gated-vs-ungated throughput across the density sweep."""
    instance = generate(name, scale=scale, seed=seed)
    automaton = instance.automaton
    prefilter = build_prefilter(automaton)
    if not prefilter.filterable:
        raise ValueError("workload %r is unfilterable (%s); the sweep "
                         "needs literal-bearing rulesets"
                         % (name, prefilter.extraction.reason))
    literals = list(prefilter.literals)
    length = len(instance.input_bytes)

    strided = to_rate(automaton, RATE)
    device = SunderDevice(SunderConfig(rate_nibbles=RATE, report_bits=32),
                          fidelity="packed")
    device.configure(strided)

    densities = {}
    for density in DENSITIES:
        data = _planted_stream(literals, length, density, seed)

        def engine_speedup():
            ungated, gated, _ = _engine_pair_seconds(automaton, prefilter,
                                                     data)
            return ungated / gated

        def device_speedup():
            ungated, gated = _device_pair_seconds(device, strided,
                                                  automaton, prefilter,
                                                  data)
            return ungated / gated

        engine_best, engine_band = _best_and_band(engine_speedup, repeats)
        device_best, device_band = _best_and_band(device_speedup, repeats)
        _, _, reports = _engine_pair_seconds(automaton, prefilter, data)
        densities[repr(density)] = {
            "engine_speedup": engine_best,
            "engine_band": engine_band,
            "device_speedup": device_best,
            "device_band": device_band,
            "reports": reports,
        }

    crossover = None
    for density in DENSITIES:
        if densities[repr(density)]["engine_speedup"] < 1.0:
            crossover = density
            break

    return {
        "name": name,
        "states": len(automaton),
        "stream_bytes": length,
        "literals": len(literals),
        "densities": densities,
        "clean_engine_speedup": densities[repr(0.0)]["engine_speedup"],
        "clean_device_speedup": densities[repr(0.0)]["device_speedup"],
        "crossover_density": crossover,
    }


def run_suite(scale=0.01, seed=0, repeats=3, workloads=DEFAULT_WORKLOADS):
    """Measure everything; returns the BENCH_prefilter payload dict."""
    rows = [bench_workload(name, scale, seed, repeats)
            for name in workloads]
    speedups = [row["clean_engine_speedup"] for row in rows]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return {
        "version": SCHEMA_VERSION,
        "schema": SCHEMA,
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "workloads": rows,
        "clean_engine_geomean_speedup": geomean,
    }


def extract_metrics(payload):
    """Scale-insensitive figures of merit for the regression gate.

    Speedups are self-normalized within one run (gated path vs in-run
    ungated anchor), so they compare across machines.
    """
    metrics = {}
    for row in payload["workloads"]:
        for density, entry in row["densities"].items():
            metrics["engine:%s:%s" % (row["name"], density)] = \
                entry["engine_speedup"]
            metrics["device:%s:%s" % (row["name"], density)] = \
                entry["device_speedup"]
    return metrics


def extract_bands(payload):
    """Per-metric ``[lo, hi]`` noise bands from the repeat extremes."""
    bands = {}
    for row in payload["workloads"]:
        for density, entry in row["densities"].items():
            bands["engine:%s:%s" % (row["name"], density)] = \
                entry["engine_band"]
            bands["device:%s:%s" % (row["name"], density)] = \
                entry["device_band"]
    return bands


def _require(condition, message):
    if not condition:
        raise ValueError("BENCH_prefilter payload invalid: %s" % message)


def validate_payload(payload):
    """Schema check for the trajectory file; raises ValueError on drift.

    Returns the payload unchanged so callers can chain.
    """
    _require(isinstance(payload, dict), "expected an object")
    _require(payload.get("schema") == SCHEMA, "schema != %r" % SCHEMA)
    _require(payload.get("version") == SCHEMA_VERSION,
             "version != %d" % SCHEMA_VERSION)
    for field in ("scale", "seed", "repeats",
                  "clean_engine_geomean_speedup"):
        _require(isinstance(payload.get(field), (int, float)),
                 "%s must be a number" % field)
    rows = payload.get("workloads")
    _require(isinstance(rows, list) and rows, "workloads must be non-empty")
    for row in rows:
        _require(isinstance(row.get("name"), str), "workload name")
        for field in ("states", "stream_bytes", "literals"):
            _require(isinstance(row.get(field), int) and row[field] > 0,
                     "%s must be a positive int" % field)
        densities = row.get("densities")
        _require(isinstance(densities, dict) and densities,
                 "densities must be non-empty")
        for density, entry in densities.items():
            for field in ("engine_speedup", "device_speedup"):
                _require(entry.get(field, 0) > 0,
                         "densities[%s].%s" % (density, field))
            for field in ("engine_band", "device_band"):
                band = entry.get(field)
                _require(isinstance(band, list) and len(band) == 2
                         and 0 < band[0] <= band[1],
                         "densities[%s].%s" % (density, field))
            _require(isinstance(entry.get("reports"), int),
                     "densities[%s].reports" % density)
        for field in ("clean_engine_speedup", "clean_device_speedup"):
            _require(row.get(field, 0) > 0, field)
        crossover = row.get("crossover_density")
        _require(crossover is None
                 or isinstance(crossover, (int, float)),
                 "crossover_density must be a number or null")
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workloads", nargs="+", default=DEFAULT_WORKLOADS)
    parser.add_argument("--out", default="BENCH_prefilter.json")
    args = parser.parse_args(argv)

    payload = run_suite(scale=args.scale, seed=args.seed,
                        repeats=args.repeats, workloads=args.workloads)
    validate_payload(payload)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for row in payload["workloads"]:
        sweep = "  ".join(
            "d=%s %.2fx/%.2fx" % (density, entry["engine_speedup"],
                                  entry["device_speedup"])
            for density, entry in sorted(
                row["densities"].items(), key=lambda kv: float(kv[0])))
        crossover = ("crossover at d=%s" % row["crossover_density"]
                     if row["crossover_density"] is not None
                     else "no crossover in sweep")
        print("%-10s (%d literals)  %s  [%s]" % (
            row["name"], row["literals"], sweep, crossover))
    print("clean-stream engine geomean speedup: %.2fx"
          % payload["clean_engine_geomean_speedup"])
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
