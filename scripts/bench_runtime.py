"""Stage-graph runtime benchmark suite -> ``BENCH_runtime.json``.

Usage:  python scripts/bench_runtime.py [--scale S] [--out PATH]
                                        [--artifact-dir DIR]

Measures the scorecard — the heaviest composite experiment — twice
against one on-disk artifact directory:

- **cold** — an empty store: every cacheable stage (generate,
  simulate8, to_rate, simulate_strided, row derivations) executes and
  writes its artifact;
- **warm** — a fresh store over the same directory (memory tier
  dropped): the expensive stages must be served entirely from disk,
  with *zero* generate/simulate8/to_rate executions, and the rendered
  scorecard must be byte-identical to the cold run.

Per-stage hit/miss counts come from the
``repro_runtime_stage_{hits,misses}_total`` instruments gathered during
each run.  Writes one JSON payload (schema pinned by
``validate_payload`` and the tier-2 smoke
``benchmarks/test_bench_runtime.py``).  Run via ``make bench-runtime``.
"""

import argparse
import json
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.experiments import scorecard  # noqa: E402
from repro.runtime import store as runtime_store  # noqa: E402
from repro.transform import cache as transform_cache  # noqa: E402

#: Schema identifier written into (and required from) every payload.
SCHEMA = "repro-bench-runtime"
SCHEMA_VERSION = 1

#: Stages a warm store must serve without a single execution.
WARM_CACHED_STAGES = ("generate", "simulate8", "to_rate")

#: ``repro bench run --quick`` overrides: the cold/warm scorecard pair
#: is one measurement either way, so quick mode just pins the scale the
#: committed baseline was recorded at.
QUICK_PARAMS = {"scale": 0.01}


def _stage_counts(registry):
    """``{stage: {"hits": n, "misses": n}}`` from one run's registry."""
    counts = {}
    for family, field in (("repro_runtime_stage_hits_total", "hits"),
                          ("repro_runtime_stage_misses_total", "misses")):
        metric = registry.get(family)
        if metric is None:
            continue
        for sample in metric.samples():
            stage = sample["labels"]["stage"]
            counts.setdefault(stage, {"hits": 0, "misses": 0})
            counts[stage][field] = sample["value"]
    return counts


def _timed_scorecard(scale, seed):
    """(render text, wall seconds, per-stage counts) for one run."""
    registry = obs.MetricsRegistry()
    with obs.collecting(registry=registry):
        start = time.perf_counter()
        claims = scorecard.build_scorecard(scale=scale, seed=seed)
        seconds = time.perf_counter() - start
    return scorecard.render(claims), seconds, _stage_counts(registry)


def run_suite(scale=0.01, seed=0, artifact_dir=None):
    """Measure cold vs warm; returns the BENCH_runtime payload dict."""
    with tempfile.TemporaryDirectory() as tmp:
        directory = artifact_dir or tmp
        transform_cache.configure()
        runtime_store.configure(directory=directory)
        cold_text, cold_seconds, cold_stages = _timed_scorecard(scale, seed)

        # A fresh store over the same directory drops the memory tier:
        # the warm run exercises exactly the on-disk artifact path.
        transform_cache.configure()
        runtime_store.configure(directory=directory)
        warm_text, warm_seconds, warm_stages = _timed_scorecard(scale, seed)
        info = runtime_store.get_store().info()
    runtime_store.configure()  # leave no benchmark state behind
    transform_cache.configure()

    return {
        "version": SCHEMA_VERSION,
        "schema": SCHEMA,
        "scale": scale,
        "seed": seed,
        "code_version": runtime_store.CODE_VERSION,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "cold_stages": cold_stages,
        "warm_stages": warm_stages,
        "disk_entries": info["disk_entries"],
        "disk_bytes": info["disk_bytes"],
        "identical": cold_text == warm_text,
    }


def extract_metrics(payload):
    """Scale-insensitive figures of merit for the regression gate."""
    return {"warm_speedup": payload["warm_speedup"]}


def _require(condition, message):
    if not condition:
        raise ValueError("BENCH_runtime payload invalid: %s" % message)


def validate_payload(payload):
    """Schema check for the trajectory file; raises ValueError on drift.

    Returns the payload unchanged so callers can chain.
    """
    _require(isinstance(payload, dict), "expected an object")
    _require(payload.get("schema") == SCHEMA, "schema != %r" % SCHEMA)
    _require(payload.get("version") == SCHEMA_VERSION,
             "version != %d" % SCHEMA_VERSION)
    for field in ("scale", "cold_seconds", "warm_seconds", "warm_speedup"):
        _require(isinstance(payload.get(field), (int, float))
                 and payload[field] > 0, "%s must be a positive number" % field)
    _require(isinstance(payload.get("seed"), int), "seed must be an int")
    _require(isinstance(payload.get("code_version"), str), "code_version")
    _require(payload.get("identical") is True,
             "warm scorecard diverged from the cold run")
    _require(payload.get("disk_entries", 0) > 0, "no artifacts were written")
    _require(payload.get("disk_bytes", 0) > 0, "artifact bytes")
    for field in ("cold_stages", "warm_stages"):
        _require(isinstance(payload.get(field), dict) and payload[field],
                 "%s must be a non-empty object" % field)
        for stage, counts in payload[field].items():
            for kind in ("hits", "misses"):
                _require(isinstance(counts.get(kind), (int, float))
                         and counts[kind] >= 0,
                         "%s[%s].%s" % (field, stage, kind))
    for stage in WARM_CACHED_STAGES:
        counts = payload["warm_stages"].get(stage, {"hits": 0, "misses": 0})
        _require(counts["misses"] == 0,
                 "warm run executed cached stage %r" % stage)
        _require(counts["hits"] > 0,
                 "warm run never demanded cached stage %r" % stage)
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--artifact-dir", default=None,
                        help="persist artifacts here instead of a temp dir")
    parser.add_argument("--out", default="BENCH_runtime.json")
    args = parser.parse_args(argv)

    payload = run_suite(scale=args.scale, seed=args.seed,
                        artifact_dir=args.artifact_dir)
    validate_payload(payload)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    print("scorecard  cold %7.2fs   warm %7.2fs   (%.1fx, %d artifacts, "
          "%.1f KiB)" % (
              payload["cold_seconds"], payload["warm_seconds"],
              payload["warm_speedup"], payload["disk_entries"],
              payload["disk_bytes"] / 1024.0))
    width = max(len(stage) for stage in payload["warm_stages"])
    for stage in sorted(payload["warm_stages"]):
        cold = payload["cold_stages"].get(stage, {"hits": 0, "misses": 0})
        warm = payload["warm_stages"][stage]
        print("  %-*s  cold %3d run / %3d hit   warm %3d run / %3d hit" % (
            width, stage, cold["misses"], cold["hits"],
            warm["misses"], warm["hits"]))
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
