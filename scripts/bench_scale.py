"""Paper-scale transform benchmark suite -> ``BENCH_scale.json``.

Usage:  python scripts/bench_scale.py [--scales S ...] [--repeats N]
                                      [--legacy-max-scale S] [--out PATH]

Measures how the compile-side pipeline approaches paper scale
(``--scale 1.0``), per workload and per scale:

- **square+minimize** — the indexed kernel (``_square(minimized=True)``,
  the production path) against the legacy string-graph oracle
  (``square_unindexed``), with bit-exactness checked whenever both run.
  The oracle is timed twice: as the pre-indexed pipeline actually ran
  (cyclic collector enabled — ``legacy_seconds``, the headline
  ``speedup`` denominator, i.e. what this tree delivers over the old
  path) and with the collector paused like the indexed kernel
  (``legacy_paused_seconds`` -> ``speedup_kernel``, isolating the
  algorithmic win from the allocation-burst GC pause).
  ``--legacy-max-scale`` caps the scale at which the oracle still runs
  (default: every scale, so the committed baseline measures the oracle
  at paper scale too — its growing disadvantage there is the headline);
- **end-to-end** — a cold ``to_rate(machine, 4)`` wall-clock through the
  memoized pipeline (nibble -> two squarings), the figure the
  EXPERIMENTS.md wall-clock budget is built from.

The regression gate compares only rows at the *gating scale* (the first
``--scales`` entry, default 0.02 — same as ``QUICK_PARAMS``), so quick
runs and the committed full-scan baseline stay comparable; larger-scale
rows are trajectory data.  Run via ``make bench-scale``.
"""

import argparse
import json
import math
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.automata import gcutil  # noqa: E402
from repro.transform import cache as transform_cache  # noqa: E402
from repro.transform import to_nibbles, to_rate  # noqa: E402
from repro.transform.striding import _square, square_unindexed  # noqa: E402
from repro.workloads.registry import generate  # noqa: E402

#: Schema identifier written into (and required from) every payload.
SCHEMA = "repro-bench-scale"
SCHEMA_VERSION = 1

#: Scale ladder of the committed baseline (the paper's point is 1.0).
DEFAULT_SCALES = (0.02, 0.1, 0.5, 1.0)

#: Workloads spanning the suite's structure: Snort (dense byte rules,
#: report-heavy) and SPM (the largest machine per unit scale).
DEFAULT_WORKLOADS = ("Snort", "SPM")

#: Largest scale at which the legacy oracle still runs by default.  The
#: full ladder includes paper scale: the oracle's superlinear degradation
#: there is exactly what the indexed core fixes, so the committed
#: baseline measures it rather than extrapolating.
DEFAULT_LEGACY_MAX_SCALE = 1.0

#: State-count floor for the headline geomean (the issue's acceptance
#: bar targets machines of at least this many nibble states).
LARGE_STATES_FLOOR = 5000

#: Repeats per timing (best-of); single runs swing 20-30% on a loaded
#: machine, and the gate consumes the best/worst band.
DEFAULT_REPEATS = 3

#: ``repro bench run --quick`` overrides: gating scale only (tiny
#: machines time in milliseconds, so the default repeats stay).
QUICK_PARAMS = {"scales": (0.02,)}


def _spread(func, repeats):
    """(best, worst wall seconds, last result) over ``repeats`` runs."""
    best = math.inf
    worst = 0.0
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        worst = max(worst, elapsed)
    return best, worst, result


def bench_row(name, scale, seed, repeats, legacy_max_scale):
    """Square+minimize and end-to-end timings for one (workload, scale)."""
    automaton = generate(name, scale=scale, seed=seed).automaton
    transform_cache.configure()
    nibble = to_nibbles(automaton)

    indexed_best, indexed_worst, squared = _spread(
        lambda: _square(nibble, minimized=True, name=None), repeats)

    legacy_best = legacy_worst = legacy_paused_best = None
    bit_exact = None
    speedup = None
    speedup_kernel = None
    speedup_band = None
    if scale <= legacy_max_scale:
        with gcutil.pausing_suspended():
            # The oracle as the pre-indexed pipeline ran it: collector
            # enabled, so every generational collection walks the heap
            # mid-burst.  This is the cost the indexed path replaced.
            legacy_best, legacy_worst, legacy_machine = _spread(
                lambda: square_unindexed(nibble, minimized=True), repeats)
        legacy_paused_best, _, _ = _spread(
            lambda: square_unindexed(nibble, minimized=True), repeats)
        bit_exact = legacy_machine.dumps() == squared.dumps()
        speedup = legacy_best / indexed_best
        speedup_kernel = legacy_paused_best / indexed_best
        speedup_band = [legacy_best / indexed_worst,
                        legacy_worst / indexed_best]

    transform_cache.configure()
    e2e_start = time.perf_counter()
    to_rate(automaton, 4)
    e2e_seconds = time.perf_counter() - e2e_start
    transform_cache.configure()  # leave no benchmark state behind

    return {
        "name": name,
        "scale": scale,
        "byte_states": len(automaton),
        "nibble_states": len(nibble),
        "squared_states": len(squared),
        "indexed_seconds": indexed_best,
        "legacy_seconds": legacy_best,
        "legacy_paused_seconds": legacy_paused_best,
        "speedup": speedup,
        "speedup_kernel": speedup_kernel,
        "speedup_band": speedup_band,
        "bit_exact": bit_exact,
        "end_to_end_rate4_seconds": e2e_seconds,
    }


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_suite(scales=DEFAULT_SCALES, seed=0, repeats=DEFAULT_REPEATS,
              workloads=DEFAULT_WORKLOADS,
              legacy_max_scale=DEFAULT_LEGACY_MAX_SCALE, progress=None):
    """Measure everything; returns the BENCH_scale payload dict."""
    scales = tuple(scales)
    rows = []
    for scale in scales:
        for name in workloads:
            if progress is not None:
                progress("bench-scale: %s @ %g ..." % (name, scale))
            rows.append(bench_row(name, scale, seed, repeats,
                                  legacy_max_scale))
    compared = [row["speedup"] for row in rows if row["speedup"]]
    large = [row["speedup"] for row in rows
             if row["speedup"] and row["nibble_states"] >= LARGE_STATES_FLOOR]
    kernel_large = [row["speedup_kernel"] for row in rows
                    if row["speedup_kernel"]
                    and row["nibble_states"] >= LARGE_STATES_FLOOR]
    payload = {
        "version": SCHEMA_VERSION,
        "schema": SCHEMA,
        "scale": scales[0],
        "scales": list(scales),
        "seed": seed,
        "repeats": repeats,
        "legacy_max_scale": legacy_max_scale,
        "code_version": transform_cache.CODE_VERSION,
        "workloads": list(workloads),
        "rows": rows,
        "speedup_geomean": _geomean(compared) if compared else None,
        "speedup_geomean_large": _geomean(large) if large else None,
        "speedup_kernel_geomean_large":
            _geomean(kernel_large) if kernel_large else None,
        "large_states_floor": LARGE_STATES_FLOOR,
    }
    return payload


def extract_metrics(payload):
    """Figures of merit for the regression gate (gating-scale rows only).

    Only speedups are gated: wall-clock seconds swing with machine load,
    and larger-scale rows do not exist in quick runs.
    """
    gate_scale = payload["scale"]
    metrics = {}
    for row in payload["rows"]:
        if row["scale"] == gate_scale and row["speedup"]:
            metrics["square_speedup:%s" % row["name"]] = row["speedup"]
    return metrics


def extract_bands(payload):
    """Per-metric ``[lo, hi]`` noise bands from the repeat extremes."""
    gate_scale = payload["scale"]
    return {"square_speedup:%s" % row["name"]: row["speedup_band"]
            for row in payload["rows"]
            if row["scale"] == gate_scale and row["speedup_band"]}


def _require(condition, message):
    if not condition:
        raise ValueError("BENCH_scale payload invalid: %s" % message)


def validate_payload(payload):
    """Schema check for the trajectory file; raises ValueError on drift.

    Returns the payload unchanged so callers can chain.
    """
    _require(isinstance(payload, dict), "expected an object")
    _require(payload.get("schema") == SCHEMA, "schema != %r" % SCHEMA)
    _require(payload.get("version") == SCHEMA_VERSION,
             "version != %d" % SCHEMA_VERSION)
    for field in ("scale", "seed", "repeats", "legacy_max_scale"):
        _require(isinstance(payload.get(field), (int, float)),
                 "%s must be a number" % field)
    _require(isinstance(payload.get("code_version"), str), "code_version")
    scales = payload.get("scales")
    _require(isinstance(scales, list) and scales, "scales must be non-empty")
    _require(payload["scale"] == scales[0],
             "gating scale must be the first scales entry")
    rows = payload.get("rows")
    _require(isinstance(rows, list) and rows, "rows must be non-empty")
    for row in rows:
        _require(isinstance(row.get("name"), str), "row name")
        _require(row.get("scale") in scales, "row scale not in scales")
        for field in ("byte_states", "nibble_states", "squared_states"):
            _require(isinstance(row.get(field), int) and row[field] > 0,
                     "%s must be a positive int" % field)
        _require(row.get("indexed_seconds", 0) > 0, "indexed_seconds")
        _require(row.get("end_to_end_rate4_seconds", 0) > 0,
                 "end_to_end_rate4_seconds")
        if row.get("legacy_seconds") is not None:
            _require(row["legacy_seconds"] > 0, "legacy_seconds")
            _require(row.get("legacy_paused_seconds", 0) > 0,
                     "legacy_paused_seconds")
            _require(row.get("bit_exact") is True,
                     "indexed kernel diverged from the legacy oracle")
            _require(row.get("speedup", 0) > 0, "speedup")
            _require(row.get("speedup_kernel", 0) > 0, "speedup_kernel")
            band = row.get("speedup_band")
            _require(isinstance(band, list) and len(band) == 2
                     and 0 < band[0] <= band[1], "speedup_band")
    gated = [row for row in rows
             if row["scale"] == payload["scale"] and row.get("speedup")]
    _require(gated, "no gating-scale rows with a legacy comparison")
    if payload.get("speedup_geomean") is not None:
        _require(payload["speedup_geomean"] > 0, "speedup_geomean")
    if payload.get("speedup_geomean_large") is not None:
        _require(payload["speedup_geomean_large"] > 0,
                 "speedup_geomean_large")
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scales", nargs="+", type=float,
                        default=list(DEFAULT_SCALES))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--workloads", nargs="+", default=DEFAULT_WORKLOADS)
    parser.add_argument("--legacy-max-scale", type=float,
                        default=DEFAULT_LEGACY_MAX_SCALE)
    parser.add_argument("--out", default="BENCH_scale.json")
    args = parser.parse_args(argv)

    payload = run_suite(scales=args.scales, seed=args.seed,
                        repeats=args.repeats, workloads=args.workloads,
                        legacy_max_scale=args.legacy_max_scale,
                        progress=lambda line: print(line, flush=True))
    validate_payload(payload)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for row in payload["rows"]:
        legacy = ("legacy %8.2fs  %5.1fx (%.1fx kernel)"
                  % (row["legacy_seconds"], row["speedup"],
                     row["speedup_kernel"])
                  if row["legacy_seconds"] is not None
                  else "legacy   (gated)")
        print("%-6s @ %-4g %7d nibble states  indexed %8.2fs  %s  "
              "e2e(rate4) %8.2fs" % (
                  row["name"], row["scale"], row["nibble_states"],
                  row["indexed_seconds"], legacy,
                  row["end_to_end_rate4_seconds"]))
    if payload["speedup_geomean"] is not None:
        print("square+minimize speedup geomean: %.2fx" %
              payload["speedup_geomean"])
    if payload["speedup_geomean_large"] is not None:
        print("speedup geomean (>=%d states): %.2fx (%.2fx with the "
              "oracle's collector also paused)" % (
                  payload["large_states_floor"],
                  payload["speedup_geomean_large"],
                  payload["speedup_kernel_geomean_large"]))
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
