"""Transform pipeline benchmark suite -> ``BENCH_transform.json``.

Usage:  python scripts/bench_transform.py [--scale S] [--repeats N]
                                          [--out PATH]

Two measurement families:

- **cache** — for each workload, the nibble and stride stages are timed
  cold (fresh cache, real build) and warm (served from the
  content-addressed cache), and the cached result is checked to be
  byte-identical to the fresh build at rates 1/2/4;
- **minimizer** — the partition-refinement ``minimize`` against the
  round-based ``minimize_legacy`` on two regimes: already-minimal
  registry machines (where minimization is a verification pass) and
  duplicate-heavy rule unions (the redundancy FlexAmata minimization
  exists for, where the legacy round cap also under-merges).

Writes one JSON payload (schema pinned by ``validate_payload`` and the
tier-2 smoke ``benchmarks/test_bench_transform.py``).  Run via
``make bench-transform``.
"""

import argparse
import json
import math
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.automata import single_pattern, union  # noqa: E402
from repro.automata.ops import minimize, minimize_legacy  # noqa: E402
from repro.transform import cache as transform_cache  # noqa: E402
from repro.transform import stride, to_nibbles, to_rate  # noqa: E402
from repro.workloads.registry import generate  # noqa: E402

#: Schema identifier written into (and required from) every payload.
SCHEMA = "repro-bench-transform"
SCHEMA_VERSION = 1

#: Cache-stage workloads: the suite's report-heavy, dense, and sparse ends.
DEFAULT_WORKLOADS = ("Snort", "Brill", "SPM", "Bro217")

#: Minimizer workloads drawn from the registry (already-minimal regime).
MINIMAL_WORKLOADS = ("Snort", "SPM", "Brill")

#: Duplicate-heavy unions (copies, pattern_length) — the merge regime.
DUPLICATE_CASES = ((10, 32), (20, 64))

#: ``repro bench run --quick`` overrides: the baseline's scale with half
#: the cache-stage workloads.  Repeats stay at 3 — they only re-time
#: cache lookups and small minimizer runs (cheap), and best-of-1
#: minimizer timings are too noisy to gate on.
QUICK_PARAMS = {"scale": 0.02, "workloads": ("Snort", "Bro217")}


def _best(func, repeats):
    """(best wall seconds, last result) over ``repeats`` runs."""
    best, _, result = _spread(func, repeats)
    return best, result


def _spread(func, repeats):
    """(best, worst wall seconds, last result) over ``repeats`` runs."""
    best = math.inf
    worst = 0.0
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        worst = max(worst, elapsed)
    return best, worst, result


def bench_cache_workload(name, scale, seed, repeats):
    """Cold vs warm stage timings for one workload."""
    automaton = generate(name, scale=scale, seed=seed).automaton
    transform_cache.configure()
    cold_nibble, nib = _best(lambda: to_nibbles(automaton), 1)
    warm_nibble, _ = _best(lambda: to_nibbles(automaton), repeats)
    cold_stride, _ = _best(lambda: stride(nib, 4), 1)
    warm_stride, _ = _best(lambda: stride(nib, 4), repeats)

    identical = True
    for rate in (1, 2, 4):
        transform_cache.configure()
        fresh = to_rate(automaton, rate)
        cached = to_rate(automaton, rate)
        identical = identical and fresh.dumps() == cached.dumps()

    return {
        "name": name,
        "states": len(automaton),
        "stages": {
            "nibble": {
                "cold_seconds": cold_nibble,
                "warm_seconds": warm_nibble,
                "warm_speedup": cold_nibble / warm_nibble,
            },
            "stride": {
                "cold_seconds": cold_stride,
                "warm_seconds": warm_stride,
                "warm_speedup": cold_stride / warm_stride,
            },
        },
        "cached_identical": identical,
    }


def _duplicate_union(copies, length):
    return union(
        [single_pattern("dup", bytes([0x41 + (i % 26) for i in range(length)]))
         for _ in range(copies)],
        name="dup%dx%d" % (copies, length),
    )


def bench_minimizer_machine(name, build, repeats):
    """New vs legacy minimizer on fresh copies of one machine."""
    machine = build()
    new_best, new_worst, removed_new = _spread(
        lambda: minimize(machine.copy()), repeats)
    legacy_best, legacy_worst, removed_legacy = _spread(
        lambda: minimize_legacy(machine.copy()), repeats)
    return {
        "name": name,
        "states": len(machine),
        "removed_new": removed_new,
        "removed_legacy": removed_legacy,
        "new_seconds": new_best,
        "legacy_seconds": legacy_best,
        "speedup": legacy_best / new_best,
        # Pessimistic/optimistic pairing of the repeat extremes; the
        # regression gate treats a miss inside this band as noise.
        "speedup_band": [legacy_best / new_worst, legacy_worst / new_best],
    }


def bench_minimizer(scale, seed, repeats):
    """Both minimizer regimes; returns the payload's ``minimizer`` dict."""
    rows = []
    for name in MINIMAL_WORKLOADS:
        automaton = generate(name, scale=scale, seed=seed).automaton
        transform_cache.configure()
        nib = to_nibbles(automaton, minimized=False)
        rows.append(bench_minimizer_machine(
            "%s/nibble" % name, lambda nib=nib: nib, repeats))
    for copies, length in DUPLICATE_CASES:
        rows.append(bench_minimizer_machine(
            "dup%dx%d" % (copies, length),
            lambda c=copies, l=length: _duplicate_union(c, l), repeats))
    geomean = math.exp(
        sum(math.log(row["speedup"]) for row in rows) / len(rows))
    return {"rows": rows, "speedup_geomean": geomean}


def run_suite(scale=0.01, seed=0, repeats=3, workloads=DEFAULT_WORKLOADS):
    """Measure everything; returns the BENCH_transform payload dict."""
    rows = [bench_cache_workload(name, scale, seed, repeats)
            for name in workloads]
    warm = math.exp(sum(
        math.log(row["stages"][stage]["warm_speedup"])
        for row in rows for stage in ("nibble", "stride")
    ) / (2 * len(rows)))
    payload = {
        "version": SCHEMA_VERSION,
        "schema": SCHEMA,
        "scale": scale,
        "seed": seed,
        "repeats": repeats,
        "code_version": transform_cache.CODE_VERSION,
        "workloads": rows,
        "warm_speedup_geomean": warm,
        "minimizer": bench_minimizer(scale, seed, repeats),
    }
    transform_cache.configure()  # leave no benchmark state behind
    return payload


def extract_metrics(payload):
    """Scale-insensitive figures of merit for the regression gate.

    Minimizer speedups (new vs legacy, measured in the same run) are the
    stable figures; warm-cache speedups swing with filesystem noise, so
    only their geomean is gated, not the per-stage numbers.
    """
    metrics = {"warm_speedup_geomean": payload["warm_speedup_geomean"]}
    for row in payload["minimizer"]["rows"]:
        metrics["minimizer:%s" % row["name"]] = row["speedup"]
    return metrics


def extract_bands(payload):
    """Per-metric ``[lo, hi]`` noise bands from the repeat extremes."""
    return {"minimizer:%s" % row["name"]: row["speedup_band"]
            for row in payload["minimizer"]["rows"]
            if "speedup_band" in row}


def _require(condition, message):
    if not condition:
        raise ValueError("BENCH_transform payload invalid: %s" % message)


def validate_payload(payload):
    """Schema check for the trajectory file; raises ValueError on drift.

    Returns the payload unchanged so callers can chain.
    """
    _require(isinstance(payload, dict), "expected an object")
    _require(payload.get("schema") == SCHEMA, "schema != %r" % SCHEMA)
    _require(payload.get("version") == SCHEMA_VERSION,
             "version != %d" % SCHEMA_VERSION)
    for field in ("scale", "seed", "repeats", "warm_speedup_geomean"):
        _require(isinstance(payload.get(field), (int, float)),
                 "%s must be a number" % field)
    _require(isinstance(payload.get("code_version"), str), "code_version")
    rows = payload.get("workloads")
    _require(isinstance(rows, list) and rows, "workloads must be non-empty")
    for row in rows:
        _require(isinstance(row.get("name"), str), "workload name")
        _require(isinstance(row.get("states"), int) and row["states"] > 0,
                 "states must be a positive int")
        _require(row.get("cached_identical") is True,
                 "cached transform diverged from fresh build")
        stages = row.get("stages")
        _require(isinstance(stages, dict)
                 and set(stages) == {"nibble", "stride"},
                 "stages must cover nibble and stride")
        for label, stats in stages.items():
            for field in ("cold_seconds", "warm_seconds", "warm_speedup"):
                _require(stats.get(field, 0) > 0,
                         "%s %s" % (label, field))
    minimizer = payload.get("minimizer")
    _require(isinstance(minimizer, dict), "minimizer must be an object")
    _require(minimizer.get("speedup_geomean", 0) > 0,
             "minimizer speedup_geomean")
    mrows = minimizer.get("rows")
    _require(isinstance(mrows, list) and mrows,
             "minimizer rows must be non-empty")
    for row in mrows:
        _require(isinstance(row.get("name"), str), "minimizer row name")
        for field in ("new_seconds", "legacy_seconds", "speedup"):
            _require(row.get(field, 0) > 0, "minimizer %s" % field)
        # Noise bands are optional (older payloads predate them).
        band = row.get("speedup_band")
        if band is not None:
            _require(isinstance(band, list) and len(band) == 2
                     and 0 < band[0] <= band[1], "minimizer speedup_band")
        _require(row.get("removed_new", -1) >= row.get("removed_legacy", 0),
                 "refinement minimizer merged less than legacy")
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.01)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--workloads", nargs="+", default=DEFAULT_WORKLOADS)
    parser.add_argument("--out", default="BENCH_transform.json")
    args = parser.parse_args(argv)

    payload = run_suite(scale=args.scale, seed=args.seed,
                        repeats=args.repeats, workloads=args.workloads)
    validate_payload(payload)
    pathlib.Path(args.out).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    for row in payload["workloads"]:
        nibble = row["stages"]["nibble"]
        strided = row["stages"]["stride"]
        print("%-10s %7d states  nibble %8.4fs -> %8.5fs (%6.0fx)  "
              "stride %8.4fs -> %8.5fs (%6.0fx)" % (
                  row["name"], row["states"],
                  nibble["cold_seconds"], nibble["warm_seconds"],
                  nibble["warm_speedup"],
                  strided["cold_seconds"], strided["warm_seconds"],
                  strided["warm_speedup"]))
    print("warm-cache speedup geomean: %.0fx" %
          payload["warm_speedup_geomean"])
    for row in payload["minimizer"]["rows"]:
        print("%-12s %7d states  new -%-5d %8.4fs   legacy -%-5d %8.4fs  "
              "(%.2fx)" % (
                  row["name"], row["states"],
                  row["removed_new"], row["new_seconds"],
                  row["removed_legacy"], row["legacy_seconds"],
                  row["speedup"]))
    print("minimizer speedup geomean: %.2fx" %
          payload["minimizer"]["speedup_geomean"])
    print("wrote %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
