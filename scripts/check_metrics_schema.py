"""Profile-smoke check: run a profiled experiment, validate its exports.

Usage:  python scripts/check_metrics_schema.py [scale]

Runs ``python -m repro profile experiment table4 --workers 2
--metrics-out ... --trace-out ...`` in-process, then validates

- the metrics JSON against the snapshot schema
  (:func:`repro.obs.validate_snapshot`), including the presence of the
  documented core metric families — worker-side families (engine,
  transform) must survive the fleet merge, and the fleet provenance
  counters themselves must be populated;
- the Chrome trace file's structure, including the runtime's
  generate -> simulate -> transform -> report-drain stage spans nested
  under the experiment span, and the ``parallel.map`` fan-out span the
  worker spans are stitched under;
- a second observed mini-run exercising ``run_batch``/``run_sharded``
  directly, pinning the batch/shard metric families (the profiled
  table4 run stays on the default serial stage params, so these
  instruments need their own exercise to record samples);
- observed gated and *planned* mini-runs pinning the prefilter
  instrument family and the execution planner's
  ``repro_plan_selected_total`` counter plus ``exec.plan`` span.

Exits non-zero on any drift, so the exposition format is pinned in CI
(``make profile-smoke``).
"""

import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import obs  # noqa: E402
from repro.cli import main as repro_main  # noqa: E402
from repro.obs import validate_snapshot  # noqa: E402
from repro.regex import compile_ruleset  # noqa: E402
from repro.runtime import store as runtime_store  # noqa: E402
from repro.sim import BitsetEngine, stream_for  # noqa: E402
from repro.transform import cache as transform_cache  # noqa: E402

#: Metric families the profiled table4 run must populate.  The engine/
#: transform families are recorded in pool workers under ``--workers 2``,
#: so their presence pins the fleet capture-and-merge path.
REQUIRED_METRICS = (
    "repro_engine_runs_total",
    "repro_engine_cycles_total",
    "repro_engine_active_states",
    "repro_transform_runs_total",
    "repro_transform_stage_seconds",
    "repro_transform_states",
    "repro_runtime_stage_misses_total",
    "repro_runtime_stage_seconds",
    "repro_stage_progress",
    "repro_experiment_runs_total",
    "repro_experiment_seconds",
    "repro_parallel_jobs_total",
    "repro_parallel_job_seconds",
    "repro_fleet_envelopes_total",
    "repro_fleet_merged_samples_total",
    "repro_fleet_spans_stitched_total",
)
#: Stage spans that must appear, nested under the experiment span.  The
#: stage spans themselves ran in worker processes; seeing them in the
#: parent's trace pins the stitch path.
#: Batch/shard instruments pinned by the observed mini-run below.
BATCH_REQUIRED_METRICS = (
    "repro_engine_batch_lanes",
    "repro_engine_batch_lane_cache_hits_total",
    "repro_engine_batch_lane_cache_misses_total",
    "repro_shard_overlap_bytes",
)
REQUIRED_SPANS = (
    "experiment.table4",
    "runtime.wave",
    "parallel.map",
    "stage.generate",
    "stage.simulate8",
    "stage.to_rate",
    "stage.report_drain",
    "engine.run",
    "reporting.drain_model",
    "transform.indexed",
)
#: Prefilter instruments pinned by the gated mini-run below.
PREFILTER_REQUIRED_METRICS = (
    "repro_prefilter_builds_total",
    "repro_prefilter_build_seconds",
    "repro_prefilter_literals",
    "repro_prefilter_scan_bytes_total",
    "repro_prefilter_scan_seconds",
    "repro_prefilter_candidate_windows_total",
    "repro_prefilter_verified_windows_total",
    "repro_prefilter_gated_cycles_total",
    "repro_prefilter_skipped_cycles_total",
    "repro_prefilter_bypass_total",
    "repro_hotcold_state_savings",
)
PREFILTER_REQUIRED_SPANS = (
    "prefilter.build",
    "prefilter.scan",
    "prefilter.hotcold",
    "engine.run_windows",
)
#: Planner instruments pinned by the planned mini-run below.
PLAN_REQUIRED_METRICS = (
    "repro_plan_selected_total",
)
PLAN_REQUIRED_SPANS = (
    "exec.plan",
)


def fail(message):
    print("profile-smoke: FAIL: %s" % message, file=sys.stderr)
    return 1


def check_batch_shard_metrics():
    """Observed mini-run over run_batch/run_sharded; returns 0 or fail()."""
    machine = compile_ruleset(["abc", "hello", "[0-9]{3}"])
    data = b"abc hello 123 " * 40
    vectors, limit = stream_for(machine, data)
    registry = obs.MetricsRegistry()
    with obs.collecting(registry=registry):
        engine = BitsetEngine(machine)
        engine.run_batch([vectors, vectors, vectors], position_limit=limit)
        engine.run_sharded(vectors, 3, position_limit=limit)
    snapshot = registry.snapshot()
    validate_snapshot(snapshot)
    by_name = {metric["name"]: metric for metric in snapshot["metrics"]}
    missing = [name for name in BATCH_REQUIRED_METRICS
               if name not in by_name]
    if missing:
        return fail("batch/shard mini-run lacks metrics: %s" % missing)
    empty = [name for name in BATCH_REQUIRED_METRICS
             if not by_name[name]["samples"]]
    if empty:
        return fail("batch/shard metrics recorded no samples: %s" % empty)
    return 0


def check_prefilter_metrics():
    """Observed gated mini-run; returns 0 or fail().

    Drives a filterable ruleset over a stream with one planted literal
    (build miss + scan + gated windows), an unfilterable ruleset (the
    bypass counter), and a hot/cold split — requiring every prefilter
    instrument to record samples and the prefilter spans to be emitted.
    """
    from repro.prefilter import build_prefilter, gated_simulation
    from repro.sim import ReportRecorder

    transform_cache.configure()  # fresh cache so the build is a miss
    filterable = compile_ruleset(["needle", "abc[0-9]"])
    unfilterable = compile_ruleset(["a.*b"])
    data = b"x" * 400 + b"needle" + b"y" * 400
    registry = obs.MetricsRegistry()
    trace = obs.TraceCollector()
    with obs.collecting(registry=registry, trace=trace):
        recorder = ReportRecorder(keep_events=True)
        gated_simulation(filterable, data, recorder, hotcold_coverage=0.9)
        gated_simulation(unfilterable, data, ReportRecorder())
    if recorder.total_reports != 1:
        return fail("prefilter mini-run expected 1 report, saw %d"
                    % recorder.total_reports)
    snapshot = registry.snapshot()
    validate_snapshot(snapshot)
    by_name = {metric["name"]: metric for metric in snapshot["metrics"]}
    missing = [name for name in PREFILTER_REQUIRED_METRICS
               if name not in by_name]
    if missing:
        return fail("prefilter mini-run lacks metrics: %s" % missing)
    empty = [name for name in PREFILTER_REQUIRED_METRICS
             if not by_name[name]["samples"]]
    if empty:
        return fail("prefilter metrics recorded no samples: %s" % empty)
    span_names = {span.name for span in trace.spans}
    missing_spans = [name for name in PREFILTER_REQUIRED_SPANS
                     if name not in span_names]
    if missing_spans:
        return fail("prefilter mini-run lacks spans: %s" % missing_spans)
    return 0


def check_plan_metrics():
    """Observed planned execution; returns 0 or fail().

    Runs a plan-free :class:`~repro.exec.Session` so the planner picks
    the strategy, requiring the ``repro_plan_selected_total`` counter
    (with strategy/reason labels) and the ``exec.plan`` span.
    """
    from repro.exec import Session

    machine = compile_ruleset(["needle", "abc[0-9]"])
    data = b"x" * 200 + b"needle" + b"y" * 200
    registry = obs.MetricsRegistry()
    trace = obs.TraceCollector()
    with obs.collecting(registry=registry, trace=trace):
        results = Session(machine).execute([data])
    if results[0].total_reports != 1:
        return fail("planned mini-run expected 1 report, saw %d"
                    % results[0].total_reports)
    snapshot = registry.snapshot()
    validate_snapshot(snapshot)
    by_name = {metric["name"]: metric for metric in snapshot["metrics"]}
    missing = [name for name in PLAN_REQUIRED_METRICS if name not in by_name]
    if missing:
        return fail("planned mini-run lacks metrics: %s" % missing)
    samples = by_name["repro_plan_selected_total"]["samples"]
    if not samples:
        return fail("repro_plan_selected_total recorded no samples")
    labels = samples[0].get("labels", {})
    if not labels.get("strategy") or not labels.get("reason"):
        return fail("plan_selected sample lacks strategy/reason labels: %r"
                    % (labels,))
    span_names = {span.name for span in trace.spans}
    missing_spans = [name for name in PLAN_REQUIRED_SPANS
                     if name not in span_names]
    if missing_spans:
        return fail("planned mini-run lacks spans: %s" % missing_spans)
    return 0


def check(scale="0.002"):
    # A warm transform cache or artifact store would serve every stage
    # as a hit, which is (correctly) excluded from the *_seconds
    # histograms — pin the cold-run exposition by starting from fresh
    # memory-only stores.
    transform_cache.configure()
    runtime_store.configure()
    with tempfile.TemporaryDirectory() as tmp:
        metrics_path = pathlib.Path(tmp) / "metrics.json"
        trace_path = pathlib.Path(tmp) / "trace.json"
        code = repro_main([
            "profile", "experiment", "table4", "--scale", str(scale),
            "--workers", "2",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
        ])
        if code != 0:
            return fail("profiled run exited %d" % code)

        snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
        validate_snapshot(snapshot)
        names = {metric["name"] for metric in snapshot["metrics"]}
        missing = [name for name in REQUIRED_METRICS if name not in names]
        if missing:
            return fail("snapshot lacks core metrics: %s" % missing)
        empty = [
            metric["name"] for metric in snapshot["metrics"]
            if metric["name"] in REQUIRED_METRICS and not metric["samples"]
        ]
        if empty:
            return fail("core metrics recorded no samples: %s" % empty)

        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        events = trace.get("traceEvents")
        if not isinstance(events, list) or not events:
            return fail("trace has no traceEvents")
        by_name = {}
        for event in events:
            if event.get("ph") != "X":
                return fail("unexpected event phase %r" % event.get("ph"))
            by_name.setdefault(event["name"], event)
        missing_spans = [n for n in REQUIRED_SPANS if n not in by_name]
        if missing_spans:
            return fail("trace lacks stage spans: %s" % missing_spans)
        tracks = {event["tid"] for event in events}
        if len(tracks) < 2:
            return fail("stitched trace renders a single track; expected "
                        "per-worker tracks under parallel.map")
        experiment_depth = by_name["experiment.table4"]["args"]["depth"]
        for stage in ("stage.generate", "stage.simulate8",
                      "stage.to_rate", "stage.report_drain"):
            if by_name[stage]["args"]["depth"] <= experiment_depth:
                return fail("span %s is not nested under the experiment"
                            % stage)

    code = check_batch_shard_metrics()
    if code:
        return code

    code = check_prefilter_metrics()
    if code:
        return code

    code = check_plan_metrics()
    if code:
        return code

    print("profile-smoke: OK (%d metrics, %d spans)"
          % (len(snapshot["metrics"]), len(events)))
    return 0


if __name__ == "__main__":
    sys.exit(check(*sys.argv[1:]))
