"""Shim for legacy editable installs on offline boxes without `wheel`."""
from setuptools import setup

setup()
