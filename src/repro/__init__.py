"""repro — a from-scratch reproduction of Sunder (MICRO '21).

Sunder is an in-SRAM automata-processing accelerator with a reconfigurable
nibble processing rate and an in-place, memory-mapped reporting
architecture.  This package provides:

- :mod:`repro.automata` — homogeneous NFA substrate (+ ANML/MNRL I/O)
- :mod:`repro.regex` — regex to homogeneous-NFA compiler
- :mod:`repro.transform` — nibble transformation and temporal striding
- :mod:`repro.sim` — functional cycle-accurate simulation
- :mod:`repro.core` — the Sunder architecture model (the paper's contribution)
- :mod:`repro.hwmodel` — area/delay/frequency models (Tables 2 & 5)
- :mod:`repro.baselines` — AP, AP+RAD, Cache Automaton, Impala models
- :mod:`repro.workloads` — synthetic ANMLZoo/Regex benchmark stand-ins
- :mod:`repro.experiments` — one harness per paper table/figure
- :mod:`repro.obs` — telemetry: metrics registry, span tracing, hooks
"""

__version__ = "1.0.0"

from .automata import Automaton, StartKind, Ste, SymbolSet
from .errors import ReproError

__all__ = [
    "Automaton",
    "StartKind",
    "Ste",
    "SymbolSet",
    "ReproError",
    "__version__",
]
