"""Homogeneous-NFA substrate: symbol sets, STEs, graphs, and I/O formats."""

from .automaton import Automaton, single_pattern
from .classic import ClassicNfa, figure1_example
from .ops import (
    connected_components,
    degree_statistics,
    merge_prefix_equivalent,
    merge_suffix_equivalent,
    minimize,
    union,
)
from .ste import StartKind, Ste
from .symbolset import SymbolSet
from .viz import outline, to_dot, write_dot

__all__ = [
    "Automaton",
    "ClassicNfa",
    "figure1_example",
    "SymbolSet",
    "StartKind",
    "Ste",
    "single_pattern",
    "connected_components",
    "degree_statistics",
    "merge_prefix_equivalent",
    "merge_suffix_equivalent",
    "minimize",
    "outline",
    "to_dot",
    "union",
    "write_dot",
]
