"""ANML (Automata Network Markup Language) reader/writer.

ANML is the XML interchange format of the Micron Automata Processor and of
the ANMLZoo benchmark suite the paper evaluates.  This module supports the
subset ANMLZoo uses: ``state-transition-element`` nodes with a character
class, start attributes, ``activate-on-match`` edges, and
``report-on-match`` flags.  Only arity-1 automata are representable (ANML
has no notion of strided symbol vectors).
"""

import xml.etree.ElementTree as ElementTree

from ..errors import FormatError
from .automaton import Automaton
from .ste import StartKind
from .symbolset import SymbolSet

_ESCAPES = {
    "n": ord("\n"),
    "r": ord("\r"),
    "t": ord("\t"),
    "0": 0,
    "\\": ord("\\"),
    "]": ord("]"),
    "[": ord("["),
    "-": ord("-"),
    "*": ord("*"),
    ".": ord("."),
}


def parse_charclass(text, bits=8):
    """Parse an ANML character class like ``[a-f\\x00]`` into a SymbolSet.

    Accepts ``[*]`` (or bare ``*``) for the full alphabet and the escape
    forms ``\\xHH``, ``\\n``, ``\\r``, ``\\t``, ``\\0``, and backslashed
    metacharacters.
    """
    text = text.strip()
    if text in ("*", "[*]"):
        return SymbolSet.full(bits)
    if not (text.startswith("[") and text.endswith("]")):
        raise FormatError("character class must be bracketed: %r" % text)
    body = text[1:-1]
    negate = body.startswith("^")
    if negate:
        body = body[1:]

    index = 0

    def read_symbol():
        nonlocal index
        char = body[index]
        if char == "\\":
            index += 1
            if index >= len(body):
                raise FormatError("dangling escape in %r" % text)
            escape = body[index]
            if escape == "x":
                hex_digits = body[index + 1:index + 3]
                if len(hex_digits) != 2:
                    raise FormatError("bad \\x escape in %r" % text)
                index += 3
                return int(hex_digits, 16)
            if escape in _ESCAPES:
                index += 1
                return _ESCAPES[escape]
            raise FormatError("unknown escape \\%s in %r" % (escape, text))
        index += 1
        return ord(char)

    mask_set = SymbolSet.empty(bits)
    while index < len(body):
        low = read_symbol()
        if index < len(body) and body[index] == "-" and index + 1 < len(body):
            index += 1
            high = read_symbol()
            mask_set = mask_set | SymbolSet.from_ranges(bits, [(low, high)])
        else:
            mask_set = mask_set | SymbolSet.single(bits, low)
    if negate:
        mask_set = ~mask_set
    return mask_set


def loads(text, bits=8):
    """Parse an ANML document string into an :class:`Automaton`."""
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as error:
        raise FormatError("malformed ANML XML: %s" % error) from error
    network = root if root.tag == "automata-network" else root.find("automata-network")
    if network is None:
        raise FormatError("no <automata-network> element found")
    automaton = Automaton(name=network.get("id", "anml"), bits=bits)
    edges = []
    for element in network.iter("state-transition-element"):
        state_id = element.get("id")
        if state_id is None:
            raise FormatError("state-transition-element without id")
        symbol_set = parse_charclass(element.get("symbol-set", "[*]"), bits=bits)
        start_attr = element.get("start", "none")
        try:
            start = StartKind(start_attr)
        except ValueError:
            raise FormatError("unknown start kind %r" % start_attr) from None
        report_node = element.find("report-on-match")
        report = report_node is not None
        report_code = report_node.get("reportcode") if report else None
        automaton.new_state(
            state_id, symbol_set, start=start,
            report=report, report_code=report_code,
        )
        for activation in element.iter("activate-on-match"):
            target = activation.get("element")
            if target is None:
                raise FormatError("activate-on-match without element attribute")
            edges.append((state_id, target))
    for src, dst in edges:
        automaton.add_transition(src, dst)
    return automaton


def load(path, bits=8):
    """Read an ANML file from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read(), bits=bits)


def dumps(automaton):
    """Serialize an arity-1 automaton to an ANML document string."""
    if automaton.arity != 1:
        raise FormatError(
            "ANML cannot represent arity-%d automata" % automaton.arity
        )
    network = ElementTree.Element("automata-network", {"id": automaton.name})
    for state in automaton:
        attributes = {
            "id": str(state.id),
            "symbol-set": state.symbols[0].to_charclass(),
        }
        if state.start is not StartKind.NONE:
            attributes["start"] = state.start.value
        element = ElementTree.SubElement(
            network, "state-transition-element", attributes
        )
        if state.report:
            report_attributes = {}
            if state.report_code is not None:
                report_attributes["reportcode"] = str(state.report_code)
            ElementTree.SubElement(element, "report-on-match", report_attributes)
        for successor in sorted(automaton.successors(state.id)):
            ElementTree.SubElement(
                element, "activate-on-match", {"element": str(successor)}
            )
    root = ElementTree.Element("anml", {"version": "1.0"})
    root.append(network)
    return ElementTree.tostring(root, encoding="unicode")


def dump(automaton, path):
    """Write an automaton to an ANML file at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(automaton))
