"""Homogeneous NFA container.

The :class:`Automaton` owns a set of :class:`~repro.automata.ste.Ste`
states and a successor relation.  It is the common currency of the whole
library: the regex compiler produces automata, the transformation passes
rewrite them, the simulator executes them, and the architecture model maps
them onto subarrays.
"""

import hashlib
import json

from ..errors import AutomatonError
from ..obs import OBS
from .ste import StartKind, Ste
from .symbolset import SymbolSet

#: Format tag + version written into (and required from) every payload
#: produced by :meth:`Automaton.to_payload`.  Bump the version whenever
#: the payload shape changes; old artifacts then deserialize as errors
#: (which the transform cache treats as misses).
PAYLOAD_FORMAT = "repro-automaton"
PAYLOAD_VERSION = 1


class Automaton:
    """A homogeneous NFA over a fixed-width, fixed-arity symbol vector.

    Parameters
    ----------
    name:
        Human-readable identifier (used in reports and experiment tables).
    bits:
        Sub-symbol width in bits (8 for byte automata, 4 after the nibble
        transformation).
    arity:
        Number of sub-symbols consumed per cycle (1, 2, or 4 in Sunder).
    start_period:
        ``ALL_INPUT`` start states self-enable only on cycles that are
        multiples of this value.  A byte automaton rewritten to nibbles has
        ``start_period == 2`` because patterns may only begin on byte
        boundaries; strided automata fold the period back to 1.
    """

    def __init__(self, name="automaton", bits=8, arity=1, start_period=1):
        if bits < 1:
            raise AutomatonError("bits must be positive")
        if arity < 1:
            raise AutomatonError("arity must be positive")
        if start_period < 1:
            raise AutomatonError("start_period must be positive")
        self.name = name
        self.bits = bits
        self.arity = arity
        self.start_period = start_period
        self._states = {}
        self._succ = {}
        self._pred = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_state(self, ste):
        """Insert an STE; returns it for chaining."""
        if not isinstance(ste, Ste):
            raise AutomatonError("add_state expects an Ste, got %r" % (ste,))
        if ste.id in self._states:
            raise AutomatonError("duplicate state id %r" % (ste.id,))
        if ste.bits != self.bits:
            raise AutomatonError(
                "state %r has %d-bit symbols in a %d-bit automaton"
                % (ste.id, ste.bits, self.bits)
            )
        if ste.arity != self.arity:
            raise AutomatonError(
                "state %r has arity %d in an arity-%d automaton"
                % (ste.id, ste.arity, self.arity)
            )
        self._states[ste.id] = ste
        self._succ[ste.id] = set()
        self._pred[ste.id] = set()
        return ste

    def new_state(self, state_id, symbols, **kwargs):
        """Convenience wrapper: build and insert an :class:`Ste`."""
        return self.add_state(Ste(state_id, symbols, **kwargs))

    def add_transition(self, src, dst):
        """Add an edge ``src -> dst`` (idempotent)."""
        if src not in self._states:
            raise AutomatonError("unknown source state %r" % (src,))
        if dst not in self._states:
            raise AutomatonError("unknown destination state %r" % (dst,))
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    def remove_transition(self, src, dst):
        """Remove the edge ``src -> dst`` if present."""
        self._succ.get(src, set()).discard(dst)
        self._pred.get(dst, set()).discard(src)

    def remove_state(self, state_id):
        """Remove a state and all incident edges."""
        if state_id not in self._states:
            raise AutomatonError("unknown state %r" % (state_id,))
        for succ in self._succ.pop(state_id):
            self._pred[succ].discard(state_id)
        for pred in self._pred.pop(state_id):
            self._succ[pred].discard(state_id)
        del self._states[state_id]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, state_id):
        return state_id in self._states

    def __len__(self):
        return len(self._states)

    def __iter__(self):
        return iter(self._states.values())

    def state(self, state_id):
        """Look up one STE by id."""
        try:
            return self._states[state_id]
        except KeyError:
            raise AutomatonError("unknown state %r" % (state_id,)) from None

    def state_ids(self):
        """All state ids (insertion order)."""
        return list(self._states)

    def states(self):
        """All STEs (insertion order)."""
        return list(self._states.values())

    def successors(self, state_id):
        """Successor ids of a state (a set; do not mutate)."""
        return self._succ[state_id]

    def predecessors(self, state_id):
        """Predecessor ids of a state (a set; do not mutate)."""
        return self._pred[state_id]

    def transitions(self):
        """Yield every ``(src, dst)`` edge."""
        for src, dsts in self._succ.items():
            for dst in dsts:
                yield (src, dst)

    def num_transitions(self):
        """Total edge count."""
        return sum(len(dsts) for dsts in self._succ.values())

    def start_states(self):
        """STEs with either start kind."""
        return [s for s in self._states.values() if s.is_start]

    def report_states(self):
        """STEs flagged as reporting."""
        return [s for s in self._states.values() if s.report]

    # ------------------------------------------------------------------
    # Validation & copying
    # ------------------------------------------------------------------
    def validate(self):
        """Check structural invariants; raises :class:`AutomatonError`.

        Invariants: symbol widths and arities are uniform; the successor and
        predecessor maps mirror each other; every non-start state is
        reachable from some start state; no state has an empty symbol set at
        any position (such a state could never activate).
        """
        for state in self:
            if state.bits != self.bits or state.arity != self.arity:
                raise AutomatonError("state %r shape mismatch" % (state.id,))
            for position, sset in enumerate(state.symbols):
                if sset.is_empty():
                    raise AutomatonError(
                        "state %r has an empty symbol set at position %d"
                        % (state.id, position)
                    )
        for src, dsts in self._succ.items():
            for dst in dsts:
                if src not in self._pred[dst]:
                    raise AutomatonError(
                        "edge %r->%r missing from predecessor map" % (src, dst)
                    )
        for dst, srcs in self._pred.items():
            for src in srcs:
                if dst not in self._succ[src]:
                    raise AutomatonError(
                        "edge %r->%r missing from successor map" % (src, dst)
                    )
        unreachable = self.unreachable_states()
        if unreachable:
            raise AutomatonError(
                "unreachable states: %s" % sorted(unreachable)[:8]
            )
        return self

    def unreachable_states(self):
        """Ids of states not reachable from any start state."""
        frontier = [s.id for s in self.start_states()]
        seen = set(frontier)
        while frontier:
            current = frontier.pop()
            for succ in self._succ[current]:
                if succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return set(self._states) - seen

    def prune_unreachable(self):
        """Drop unreachable states in place; returns the number removed.

        A handful of dead states are unlinked individually; a large dead
        set (the common case right after ``square`` builds its pair
        states) switches to rebuilding the three dicts in one filtered
        pass — same surviving states in the same insertion order, same
        edge sets, so the result is identical either way
        (:meth:`unreachable_states` stays the oracle for both paths).
        """
        dead = self.unreachable_states()
        if not dead:
            return 0
        if len(dead) * 8 < len(self._states):
            for state_id in dead:
                self.remove_state(state_id)
            return len(dead)
        # Successors of a reachable state are always reachable, so only
        # predecessor rows need filtering (dead -> live edges exist).
        states = {state_id: ste for state_id, ste in self._states.items()
                  if state_id not in dead}
        self._states = states
        self._succ = {state_id: self._succ[state_id] for state_id in states}
        pred = {}
        for state_id in states:
            row = self._pred[state_id]
            pred[state_id] = (row - dead) if row & dead else row
        self._pred = pred
        return len(dead)

    def depth_bound(self):
        """Longest edge-path from any start state, or ``None`` if cyclic.

        A state at edge-distance ``d`` from a start can only be active
        ``d`` cycles after that start last self-enabled, so the bound
        caps how much input history can influence the active set: a
        replay from an empty active mask converges to the true state
        after ``depth_bound()`` cycles.  That is exactly the overlap
        prefix shard-and-stitch execution needs (see
        ``BitsetEngine.run_sharded``).  Machines with a reachable cycle
        have unbounded memory — ``None`` tells callers to fall back to
        a serial run.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color = dict.fromkeys(self._states, WHITE)
        longest = {}
        for root in self.start_states():
            if color[root.id] == BLACK:
                continue
            stack = [(root.id, iter(sorted(self._succ[root.id])))]
            color[root.id] = GRAY
            while stack:
                state_id, successors = stack[-1]
                advanced = False
                for succ in successors:
                    mark = color[succ]
                    if mark == GRAY:
                        return None
                    if mark == WHITE:
                        color[succ] = GRAY
                        stack.append((succ, iter(sorted(self._succ[succ]))))
                        advanced = True
                        break
                if advanced:
                    continue
                stack.pop()
                color[state_id] = BLACK
                longest[state_id] = 1 + max(
                    (longest[s] for s in self._succ[state_id]), default=-1)
        return max((longest[s.id] for s in self.start_states()), default=0)

    def copy(self, name=None):
        """Deep-enough copy (STEs are cloned, edges rebuilt)."""
        duplicate = Automaton(
            name=name if name is not None else self.name,
            bits=self.bits,
            arity=self.arity,
            start_period=self.start_period,
        )
        for state in self:
            duplicate.add_state(state.clone())
        for src, dst in self.transitions():
            duplicate.add_transition(src, dst)
        return duplicate

    def shallow_clone(self, name=None):
        """Copy sharing the (immutable-once-compiled) STE objects.

        Edge sets and the state dict are fresh, so graph mutations on
        the clone never touch the source — but the STEs themselves are
        shared, which is what makes a rename-only copy (``stride``
        factor 1, cache-hit relabeling) O(states) dict work instead of
        a full re-validation pass.  Use :meth:`copy` when the caller
        may mutate STE fields in place.
        """
        duplicate = Automaton(
            name=name if name is not None else self.name,
            bits=self.bits,
            arity=self.arity,
            start_period=self.start_period,
        )
        duplicate._states = dict(self._states)
        duplicate._succ = {src: set(dsts) for src, dsts in self._succ.items()}
        duplicate._pred = {dst: set(srcs) for dst, srcs in self._pred.items()}
        return duplicate

    @classmethod
    def _from_graph(cls, name, bits, arity, start_period, states, succ, pred):
        """Trusted constructor: install pre-built graph dicts directly.

        The indexed transform kernels materialize their results through
        this hook — the dicts must already satisfy :meth:`validate`'s
        invariants (callers run ``validate()`` on the result).
        """
        automaton = cls(name=name, bits=bits, arity=arity,
                        start_period=start_period)
        automaton._states = states
        automaton._succ = succ
        automaton._pred = pred
        return automaton

    def relabeled(self, prefix="q"):
        """Copy with dense integer ids ``<prefix><n>``; returns the copy."""
        mapping = {old: "%s%d" % (prefix, index)
                   for index, old in enumerate(self._states)}
        duplicate = Automaton(
            name=self.name, bits=self.bits, arity=self.arity,
            start_period=self.start_period,
        )
        for state in self:
            duplicate.add_state(state.clone(mapping[state.id]))
        for src, dst in self.transitions():
            duplicate.add_transition(mapping[src], mapping[dst])
        return duplicate

    # ------------------------------------------------------------------
    # Fingerprinting & serialization
    # ------------------------------------------------------------------
    def fingerprint(self):
        """Canonical structural hash (hex sha256), insertion-order free.

        Two automata that contain the same states (ids, symbol sets,
        start kinds, report metadata) and the same transitions hash
        identically regardless of the order states or edges were added.
        The shape header (name, bits, arity, start period) is included,
        so machines that differ only in name do not collide — transform
        results derive their names from their source's.
        """
        digest = hashlib.sha256()
        digest.update(
            ("%s\x00%d\x00%d\x00%d" % (
                self.name, self.bits, self.arity, self.start_period,
            )).encode("utf-8", "surrogatepass")
        )
        for state_id in sorted(self._states):
            state = self._states[state_id]
            record = (
                state_id,
                "|".join("%x" % sset.mask for sset in state.symbols),
                state.start.value,
                "%d" % state.report,
                "" if state.report_code is None else str(state.report_code),
                ",".join("%d" % o for o in state.report_offsets),
                ";".join(sorted(self._succ[state_id])),
            )
            digest.update(("\x1e".join(record) + "\x1d").encode(
                "utf-8", "surrogatepass"))
        return digest.hexdigest()

    def to_payload(self):
        """Versioned JSON-serializable dict (see :data:`PAYLOAD_FORMAT`).

        State and edge order follow insertion order, so a round trip
        through :meth:`from_payload` reproduces the automaton exactly —
        including the state ordering the simulators use for bit
        assignment.  Symbol-set masks are hex strings (they can exceed
        64 bits for wide alphabets).
        """
        states = []
        for state in self:
            states.append([
                state.id,
                ["%x" % sset.mask for sset in state.symbols],
                state.start.value,
                1 if state.report else 0,
                state.report_code,
                list(state.report_offsets),
            ])
        return {
            "format": PAYLOAD_FORMAT,
            "version": PAYLOAD_VERSION,
            "name": self.name,
            "bits": self.bits,
            "arity": self.arity,
            "start_period": self.start_period,
            "states": states,
            "transitions": [
                [src, sorted(self._succ[src])]
                for src in self._states if self._succ[src]
            ],
        }

    @classmethod
    def from_payload(cls, payload):
        """Rebuild an automaton from a :meth:`to_payload` dict.

        Raises :class:`AutomatonError` on any malformed or
        version-mismatched payload, so callers (notably the transform
        cache) can treat corruption as a recoverable condition.
        """
        try:
            if payload.get("format") != PAYLOAD_FORMAT:
                raise AutomatonError(
                    "unknown payload format %r" % (payload.get("format"),))
            if payload.get("version") != PAYLOAD_VERSION:
                raise AutomatonError(
                    "unsupported payload version %r" % (payload.get("version"),))
            automaton = cls(
                name=payload["name"],
                bits=payload["bits"],
                arity=payload["arity"],
                start_period=payload["start_period"],
            )
            for record in payload["states"]:
                state_id, masks, start, report, code, offsets = record
                automaton.add_state(Ste(
                    state_id,
                    tuple(SymbolSet(automaton.bits, int(mask, 16))
                          for mask in masks),
                    start=StartKind(start),
                    report=bool(report),
                    report_code=code,
                    report_offsets=tuple(offsets) if report else None,
                ))
            for src, dsts in payload["transitions"]:
                for dst in dsts:
                    automaton.add_transition(src, dst)
        except AutomatonError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise AutomatonError("malformed automaton payload: %s" % error)
        return automaton

    def dumps(self):
        """Compact JSON text of :meth:`to_payload`."""
        return json.dumps(self.to_payload(), separators=(",", ":"))

    @classmethod
    def loads(cls, text):
        """Inverse of :meth:`dumps`; raises :class:`AutomatonError`."""
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, TypeError) as error:
            raise AutomatonError("undecodable automaton payload: %s" % error)
        return cls.from_payload(payload)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def merge_in(self, other, prefix):
        """Union ``other`` into this automaton, prefixing its state ids.

        Both automata must agree on bits, arity, and start period.  Used to
        pack many independent patterns (e.g. a whole ruleset) into a single
        machine, which is how the benchmark suites ship their automata.
        """
        if (other.bits, other.arity) != (self.bits, self.arity):
            raise AutomatonError("cannot merge automata of different shapes")
        if other.start_period != self.start_period:
            raise AutomatonError("cannot merge automata with different start periods")
        # Intern every prefixed id once up front; the edge loops below
        # then move whole rows through the mapping instead of going
        # through per-edge add_transition bookkeeping.
        states = self._states
        mapping = {}
        for state_id in other._states:
            new_id = "%s%s" % (prefix, state_id)
            if new_id in states:
                raise AutomatonError("duplicate state id %r" % (new_id,))
            mapping[state_id] = new_id
        succ = self._succ
        pred = self._pred
        for state in other:
            new_id = mapping[state.id]
            states[new_id] = state.clone(new_id)
            succ[new_id] = {mapping[dst] for dst in other._succ[state.id]}
            pred[new_id] = {mapping[src] for src in other._pred[state.id]}
        if OBS.active:
            OBS.instruments.transform_states.labels(op="merge_in").set(
                len(states))
        return mapping

    # ------------------------------------------------------------------
    def summary(self):
        """Dict of headline statistics (sizes, degrees, report density)."""
        n_states = len(self)
        n_report = len(self.report_states())
        return {
            "name": self.name,
            "bits": self.bits,
            "arity": self.arity,
            "states": n_states,
            "transitions": self.num_transitions(),
            "start_states": len(self.start_states()),
            "report_states": n_report,
            "report_state_pct": (100.0 * n_report / n_states) if n_states else 0.0,
        }

    def __repr__(self):
        return "Automaton(%r, bits=%d, arity=%d, states=%d, transitions=%d)" % (
            self.name, self.bits, self.arity, len(self), self.num_transitions(),
        )


def single_pattern(name, pattern, bits=8, report_code=None):
    """Build a linear automaton matching one literal ``pattern``.

    ``pattern`` is a sequence of symbol values (e.g. ``b"GET "``).  The
    first state is an ``ALL_INPUT`` start so the literal is found at every
    input offset; the last state reports.
    """
    if not pattern:
        raise AutomatonError("pattern must be non-empty")
    automaton = Automaton(name=name, bits=bits)
    previous = None
    last_index = len(pattern) - 1
    for index, value in enumerate(pattern):
        ste = automaton.new_state(
            "%s_%d" % (name, index),
            SymbolSet.single(bits, value),
            start=StartKind.ALL_INPUT if index == 0 else StartKind.NONE,
            report=index == last_index,
            report_code=report_code if index == last_index else None,
        )
        if previous is not None:
            automaton.add_transition(previous, ste.id)
        previous = ste.id
    return automaton
