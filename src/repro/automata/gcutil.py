"""Cyclic-GC pause for allocation-heavy graph construction.

The transform kernels allocate hundreds of thousands of long-lived
containers (adjacency rows, STEs, id strings) in one burst.  None of
them form reference cycles — automata are plain trees of dicts, lists,
and immutable values — so every generational collection CPython triggers
during the burst walks a multi-million-object heap and reclaims nothing.
Measured on the squaring kernels this overhead is around half the total
runtime, and it grows with whatever else the process has on the heap,
which also made kernel timings irreproducible between processes.

:func:`bulk_alloc` pauses the collector for the duration of a kernel and
restores it afterwards.  It is re-entrant (an inner kernel sees the
collector already off and leaves state alone) and exception-safe, and it
respects callers that run with the collector disabled globally.
"""

import contextlib
import functools
import gc

__all__ = ["bulk_alloc", "gc_paused", "pausing_suspended"]

#: When true, :func:`bulk_alloc` is a no-op (see :func:`pausing_suspended`).
_suspended = False


@contextlib.contextmanager
def bulk_alloc():
    """Context manager: cyclic GC off inside, restored on exit."""
    if _suspended or not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


@contextlib.contextmanager
def pausing_suspended():
    """Make :func:`bulk_alloc`/:func:`gc_paused` no-ops within the block.

    Benchmarks use this to time the legacy oracle the way the pre-indexed
    pipeline actually ran it — collector enabled throughout, including in
    nested ``gc_paused`` regions.  Production code never needs this.
    """
    global _suspended
    previous = _suspended
    _suspended = True
    try:
        yield
    finally:
        _suspended = previous


def gc_paused(fn):
    """Decorator form of :func:`bulk_alloc` for whole-kernel functions."""
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with bulk_alloc():
            return fn(*args, **kwargs)
    return wrapper
