"""Indexed packed automaton view — the compile-side kernel substrate.

The transformation passes (``square``/``stride``/``minimize``/
``prune_unreachable``) historically walked :class:`~repro.automata
.automaton.Automaton` directly: string-keyed dicts, per-state
:class:`~repro.automata.ste.Ste` objects, and signature hashing over
frozensets of id strings.  At paper scale (tens of thousands of states
per machine, hundreds of thousands mid-transform) that representation
is exactly what dominates compile time once the execution kernels are
fast.

:class:`IndexedAutomaton` interns every state id to a dense integer
once and re-expresses the machine as flat arrays:

- ``succ``/``pred`` — per-state successor/predecessor rows of dense
  ints, captured in the *raw set-iteration order* of the source maps so
  indexed ``square`` replays the legacy pair-state creation order
  bit-exactly.  Rows may be shared between states (``square`` hands the
  same fan-out list to every pair state ending in the same source
  state); kernels therefore never mutate a row in place without
  :meth:`make_mutable` first;
- ``behavior`` — :meth:`Ste.behavior_key` interned to small ints, so
  the minimizer's signature hashing compares ints instead of re-hashing
  symbol-set tuples per pass;
- ``alive`` — one byte per state; removal flips a flag instead of
  unlinking dict entries, and liveness scans are flat ``bytearray``
  reads rather than big-int bit walks (which go quadratic past ~10^5
  states).

``from_automaton(..., light=True)`` skips the parts a forward-only
consumer never reads (predecessor rows, behaviour interning) — the
``square`` kernel only needs ids, STEs, start kinds and successor rows
of its *source*.

Kernels mutate the indexed view and materialize an ``Automaton`` only
at the boundary (:meth:`write_back` for in-place passes).  Every kernel
is bit-exact against the legacy implementation it replaces — the legacy
code paths survive as differential oracles
(:func:`repro.automata.ops.minimize_unindexed`,
:func:`repro.transform.striding.square_unindexed`) and
``tests/test_indexed.py`` pins equality over randomized machines.
"""

from ..obs import OBS, trace_span
from .ste import StartKind

__all__ = ["IndexedAutomaton"]


class IndexedAutomaton:
    """Dense-integer view of one :class:`Automaton` (see module docs).

    The view is a *snapshot*: it captures the source's states, edges and
    iteration orders at construction time.  In-place kernels mutate the
    view and then :meth:`write_back` the survivors; the source automaton
    must not be mutated independently while a view of it is live.
    """

    __slots__ = (
        "name", "bits", "arity", "start_period",
        "n", "ids", "stes", "succ", "pred",
        "behavior", "is_start", "start_kind", "alive",
        "_mutable",
    )

    def __init__(self):
        # Built via the classmethods below; nothing to do here.
        pass

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_automaton(cls, automaton, light=False):
        """Index ``automaton``: intern ids, behaviors, and adjacency.

        ``light`` skips predecessor rows and behaviour interning — the
        forward-only fields are all ``square`` reads from its source.
        Emits a ``transform.indexed`` span when a collector is attached,
        so profiles show where compile passes pay the indexing cost.
        """
        if OBS.active:
            with trace_span("transform.indexed", automaton=automaton.name,
                            states=len(automaton)):
                return cls._build(automaton, light)
        return cls._build(automaton, light)

    @classmethod
    def _build(cls, automaton, light):
        self = cls()
        self.name = automaton.name
        self.bits = automaton.bits
        self.arity = automaton.arity
        self.start_period = automaton.start_period
        self._mutable = False

        states = automaton._states
        ids = list(states)
        index = {state_id: i for i, state_id in enumerate(ids)}
        n = len(ids)
        self.n = n
        self.ids = ids
        self.stes = list(states.values())

        succ_map = automaton._succ
        # Raw set-iteration order is captured on purpose: legacy square
        # walks successors() unsorted, and replaying that order is what
        # keeps the indexed kernel's output byte-identical in-process.
        # ``map`` keeps the inner conversion in C: id strings are long
        # (squared ids nest), so per-item bytecode dominates otherwise.
        index_get = index.__getitem__
        self.succ = [list(map(index_get, succ_map[s])) for s in ids]
        self.start_kind = [ste.start for ste in self.stes]
        self.is_start = [kind is not StartKind.NONE
                         for kind in self.start_kind]
        self.alive = bytearray(b"\x01") * n if n else bytearray()

        if light:
            self.pred = None
            self.behavior = None
            return self

        pred_map = automaton._pred
        self.pred = [list(map(index_get, pred_map[s])) for s in ids]
        interned = {}
        behavior = []
        for ste in self.stes:
            key = ste.behavior_key()
            bid = interned.get(key)
            if bid is None:
                bid = interned[key] = len(interned)
            behavior.append(bid)
        self.behavior = behavior
        return self

    @classmethod
    def from_parts(cls, name, bits, arity, start_period, succ, pred, alive,
                   behavior=None, is_start=None, stes=None, ids=None):
        """Assemble a view directly from pre-built arrays.

        The indexed ``square`` kernel builds its result in array form and
        never materializes intermediate ``Ste`` objects; it hands the
        arrays here so minimization runs before any per-state object
        exists.  ``succ`` rows may be shared list objects; ``alive`` is
        adopted (not copied).
        """
        self = cls()
        self.name = name
        self.bits = bits
        self.arity = arity
        self.start_period = start_period
        self.n = len(succ)
        self.ids = ids
        self.stes = stes
        self.succ = succ
        self.pred = pred
        self.behavior = behavior
        self.is_start = is_start
        self.start_kind = None
        self.alive = alive
        self._mutable = False
        return self

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    def alive_indices(self):
        """Alive state indices in insertion order."""
        alive = self.alive
        return [i for i in range(self.n) if alive[i]]

    def alive_count(self):
        return sum(self.alive)

    def make_mutable(self):
        """Convert adjacency rows to private sets (kernels mutate them).

        Idempotent; required before any in-place edge mutation because
        rows may be shared list objects (see module docs).
        """
        if self._mutable:
            return
        self.succ = [set(row) for row in self.succ]
        if self.pred is not None:
            self.pred = [set(row) for row in self.pred]
        self._mutable = True

    # ------------------------------------------------------------------
    # Reachability / pruning (flat-flag BFS)
    # ------------------------------------------------------------------
    def reachable(self):
        """Byte flags (1 per state) of states reachable from any start."""
        succ = self.succ
        alive = self.alive
        is_start = self.is_start
        seen = bytearray(self.n)
        work = []
        push = work.append
        for i in range(self.n):
            if alive[i] and is_start[i]:
                seen[i] = 1
                push(i)
        while work:
            for j in succ[work.pop()]:
                if not seen[j]:
                    seen[j] = 1
                    push(j)
        return seen

    def prune_unreachable(self):
        """Drop states unreachable from every start; returns removed count.

        Works on both row representations (list rows from
        :meth:`from_automaton`, set rows after :meth:`make_mutable`).
        Edges from a reachable state always target reachable states, so
        only predecessor rows of survivors need filtering.
        """
        seen = self.reachable()
        alive = self.alive
        dead = [i for i in range(self.n) if alive[i] and not seen[i]]
        if not dead:
            return 0
        succ = self.succ
        pred = self.pred
        for i in dead:
            succ[i] = type(succ[i])()
            if pred is not None:
                pred[i] = type(pred[i])()
            alive[i] = 0
        if pred is not None:
            for i in range(self.n):
                if alive[i]:
                    row = pred[i]
                    if row:
                        survivors = [p for p in row if seen[p]]
                        if len(survivors) != len(row):
                            pred[i] = type(row)(survivors)
        return len(dead)

    # ------------------------------------------------------------------
    # Depth bound (reused by repro.exec traits)
    # ------------------------------------------------------------------
    def depth_bound(self):
        """Longest edge-path from any start, or ``None`` if cyclic.

        Same contract as :meth:`Automaton.depth_bound`, computed over the
        dense adjacency rows (the value is traversal-order independent).
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color = [WHITE] * self.n
        longest = [0] * self.n
        succ = self.succ
        alive = self.alive
        is_start = self.is_start
        roots = [i for i in range(self.n) if is_start[i] and alive[i]]
        for root in roots:
            if color[root] == BLACK:
                continue
            stack = [(root, iter(sorted(succ[root])))]
            color[root] = GRAY
            while stack:
                i, successors = stack[-1]
                advanced = False
                for j in successors:
                    mark = color[j]
                    if mark == GRAY:
                        return None
                    if mark == WHITE:
                        color[j] = GRAY
                        stack.append((j, iter(sorted(succ[j]))))
                        advanced = True
                        break
                if advanced:
                    continue
                stack.pop()
                color[i] = BLACK
                longest[i] = 1 + max(
                    (longest[j] for j in succ[i]), default=-1)
        return max((longest[i] for i in roots), default=0)

    # ------------------------------------------------------------------
    # Screening merges (indexed replica of ops._merge_pass)
    # ------------------------------------------------------------------
    def _merge_pass(self, signature):
        """Collapse equal-signature states onto the first; returns removed.

        Exact indexed replica of :func:`repro.automata.ops._merge_pass`:
        same group order (first occurrence in insertion order), same
        survivor choice, same edge-redirection cascade — so the final
        edge sets match the legacy pass member-for-member.  Grouping
        happens before any mutation (as in the legacy pass), so when no
        group has two members the rows — possibly still shared/immutable
        — are never touched.
        """
        groups = {}
        merge = False
        for i in self.alive_indices():
            key = signature(i)
            row = groups.get(key)
            if row is None:
                groups[key] = [i]
            else:
                row.append(i)
                merge = True
        if not merge:
            return 0
        self.make_mutable()
        succ = self.succ
        pred = self.pred
        alive = self.alive
        removed = 0
        for members in groups.values():
            if len(members) < 2:
                continue
            survivor = members[0]
            for duplicate in members[1:]:
                for p in list(pred[duplicate]):
                    remapped = survivor if p == duplicate else p
                    succ[remapped].add(survivor)
                    pred[survivor].add(remapped)
                for s in list(succ[duplicate]):
                    remapped = survivor if s == duplicate else s
                    succ[survivor].add(remapped)
                    pred[remapped].add(survivor)
                for s in succ[duplicate]:
                    pred[s].discard(duplicate)
                for p in pred[duplicate]:
                    succ[p].discard(duplicate)
                succ[duplicate] = set()
                pred[duplicate] = set()
                alive[duplicate] = 0
                removed += 1
        return removed

    def merge_suffix_equivalent(self):
        """Indexed :func:`~repro.automata.ops.merge_suffix_equivalent`.

        Signature frozensets are cached per row *object*: ``square``
        shares one fan-out list across every pair state ending in the
        same source state, so the (immutable pre-mutation) grouping pass
        hashes each distinct row once instead of once per state.
        """
        succ = self.succ
        behavior = self.behavior
        frozen = {}

        def signature(i):
            row = succ[i]
            cached = frozen.get(id(row))
            if cached is None:
                cached = frozen[id(row)] = frozenset(row)
            if i in cached:
                return (behavior[i], cached - {i}, True)
            return (behavior[i], cached, False)
        return self._merge_pass(signature)

    def merge_prefix_equivalent(self):
        """Indexed :func:`~repro.automata.ops.merge_prefix_equivalent`."""
        pred = self.pred
        behavior = self.behavior
        is_start = self.is_start

        def signature(i):
            predecessors = frozenset(pred[i])
            loop = i in predecessors
            if loop:
                predecessors -= {i}
            if is_start[i] and not predecessors:
                return ("unmergeable-start", i)
            return (behavior[i], predecessors, loop)
        return self._merge_pass(signature)

    # ------------------------------------------------------------------
    # Partition refinement (indexed replica of ops._refine_partition)
    # ------------------------------------------------------------------
    def refine_partition(self, forward=True, protected=frozenset()):
        """Coarsest stable partition; returns ``state index -> block id``.

        Block numbering, split order, and the id-keeps-largest-sub-block
        rule all mirror :func:`repro.automata.ops._refine_partition`, so
        the resulting partition (and therefore the quotient machine) is
        identical to the legacy pass over the equivalent string graph.
        """
        neighbors = self.succ if forward else self.pred
        inverse = self.pred if forward else self.succ
        behavior = self.behavior
        block = {}
        members = {}
        blocks_seen = {}
        for i in self.alive_indices():
            if i in protected:
                key = ("protected", i)
            else:
                key = ("behavior", behavior[i])
            index = blocks_seen.get(key)
            if index is None:
                index = blocks_seen[key] = len(blocks_seen)
            block[i] = index
            row = members.get(index)
            if row is None:
                members[index] = [i]
            else:
                row.append(i)
        next_id = len(blocks_seen)
        pending = {index for index, mem in members.items() if len(mem) > 1}
        signatures = {}
        examined = set()
        dirty = set(block)
        while pending:
            touched, pending = pending, set()
            moved = []
            for index in touched:
                mem = members[index]
                if len(mem) < 2:
                    continue
                changed = index not in examined
                for i in mem:
                    if i in dirty:
                        dirty.discard(i)
                        signature = frozenset(
                            block[j] for j in neighbors[i])
                        if signatures.get(i) != signature:
                            signatures[i] = signature
                            changed = True
                if not changed:
                    continue
                examined.add(index)
                groups = {}
                for i in mem:
                    key = signatures[i]
                    row = groups.get(key)
                    if row is None:
                        groups[key] = [i]
                    else:
                        row.append(i)
                if len(groups) == 1:
                    continue
                ordered = sorted(groups.values(), key=len, reverse=True)
                members[index] = ordered[0]
                for sub in ordered[1:]:
                    for i in sub:
                        block[i] = next_id
                    members[next_id] = sub
                    examined.add(next_id)
                    moved.extend(sub)
                    next_id += 1
            for i in moved:
                for j in inverse[i]:
                    dirty.add(j)
                    neighbor_block = block[j]
                    if len(members[neighbor_block]) > 1:
                        pending.add(neighbor_block)
        return block

    def apply_partition(self, block):
        """Quotient onto first-member survivors; returns removed count.

        Builds each survivor's pooled edge rows directly (every original
        edge remapped through the survivor map), which lands on exactly
        the edge sets the legacy remap-then-remove loop produces.
        """
        ids_alive = self.alive_indices()
        members = {}
        for i in ids_alive:
            row = members.get(block[i])
            if row is None:
                members[block[i]] = [i]
            else:
                row.append(i)
        survivor = {i: members[block[i]][0] for i in ids_alive}
        removed = 0
        dead = [i for i in ids_alive if survivor[i] != i]
        if not dead:
            return 0
        self.make_mutable()
        succ = self.succ
        pred = self.pred
        alive = self.alive
        new_succ = {}
        for i in ids_alive:
            s = survivor[i]
            row = new_succ.get(s)
            if row is None:
                row = new_succ[s] = set()
            for d in succ[i]:
                row.add(survivor[d])
        for i in dead:
            succ[i] = set()
            pred[i] = set()
            alive[i] = 0
            removed += 1
        new_pred = {s: set() for s in new_succ}
        for s, row in new_succ.items():
            succ[s] = row
            for d in row:
                new_pred[d].add(s)
        for s, row in new_pred.items():
            pred[s] = row
        return removed

    def prefix_protected(self):
        """Alive start states with no predecessors (never merged)."""
        pred = self.pred
        return frozenset(
            i for i in self.alive_indices()
            if self.is_start[i] and not pred[i]
        )

    # ------------------------------------------------------------------
    # Minimization driver (indexed replica of ops.minimize)
    # ------------------------------------------------------------------
    def minimize(self, max_rounds=32):
        """Screen + alternating refinement; returns states removed.

        Mirrors :func:`repro.automata.ops.minimize_unindexed` exactly:
        one suffix + one prefix screening merge, early-out when neither
        fired, then alternating coarsest-partition quotients until a
        round removes nothing.
        """
        total = self.merge_suffix_equivalent()
        total += self.merge_prefix_equivalent()
        if total == 0:
            return 0
        for _ in range(max_rounds):
            removed = self.apply_partition(
                self.refine_partition(forward=True))
            removed += self.apply_partition(
                self.refine_partition(forward=False,
                                      protected=self.prefix_protected()))
            total += removed
            if removed == 0:
                break
        return total

    # ------------------------------------------------------------------
    # Boundary materialization
    # ------------------------------------------------------------------
    def write_back(self, automaton):
        """Install the surviving graph into ``automaton`` in place.

        Survivors keep their original :class:`Ste` objects and their
        insertion order; edge rows convert back to string-id sets — the
        same final dict shapes the legacy in-place passes leave behind.
        """
        ids = self.ids
        stes = self.stes
        succ = self.succ
        pred = self.pred
        lookup = ids.__getitem__
        states = {}
        new_succ = {}
        new_pred = {}
        for i in self.alive_indices():
            state_id = ids[i]
            states[state_id] = stes[i]
            new_succ[state_id] = set(map(lookup, succ[i]))
            new_pred[state_id] = set(map(lookup, pred[i]))
        automaton._states = states
        automaton._succ = new_succ
        automaton._pred = new_pred
        return automaton
