"""MNRL (MNCaRT Network Representation Language) JSON reader/writer.

MNRL is the JSON successor to ANML used by the MNCaRT automata-processing
ecosystem.  Unlike ANML it is easy to extend, so we use a small extension
(``symbolSets`` as a list) to round-trip strided, vector-labelled automata
that ANML cannot express.
"""

import json

from ..errors import FormatError
from .anml import parse_charclass
from .automaton import Automaton
from .ste import StartKind

_ENABLE_BY_KIND = {
    StartKind.NONE: "onActivateIn",
    StartKind.START_OF_DATA: "onStartAndActivateIn",
    StartKind.ALL_INPUT: "onInput",
}
_KIND_BY_ENABLE = {value: key for key, value in _ENABLE_BY_KIND.items()}


def dumps(automaton, indent=None):
    """Serialize an automaton (any arity) to an MNRL JSON string."""
    nodes = []
    for state in automaton:
        node = {
            "id": str(state.id),
            "type": "hState",
            "enable": _ENABLE_BY_KIND[state.start],
            "report": state.report,
            "attributes": {
                "symbolSets": [s.to_charclass() for s in state.symbols],
            },
            "outputConnections": [
                {"portId": "o", "activate": [
                    {"id": str(dst), "portId": "i"}
                    for dst in sorted(automaton.successors(state.id))
                ]}
            ],
        }
        if state.report:
            node["reportId"] = state.report_code
            node["attributes"]["reportOffsets"] = list(state.report_offsets)
        nodes.append(node)
    document = {
        "id": automaton.name,
        "bits": automaton.bits,
        "arity": automaton.arity,
        "startPeriod": automaton.start_period,
        "nodes": nodes,
    }
    return json.dumps(document, indent=indent)


def loads(text):
    """Parse an MNRL JSON string into an :class:`Automaton`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise FormatError("malformed MNRL JSON: %s" % error) from error
    if "nodes" not in document:
        raise FormatError("MNRL document has no 'nodes' array")
    bits = document.get("bits", 8)
    automaton = Automaton(
        name=document.get("id", "mnrl"),
        bits=bits,
        arity=document.get("arity", 1),
        start_period=document.get("startPeriod", 1),
    )
    edges = []
    for node in document["nodes"]:
        if node.get("type") != "hState":
            raise FormatError("unsupported MNRL node type %r" % node.get("type"))
        enable = node.get("enable", "onActivateIn")
        if enable not in _KIND_BY_ENABLE:
            raise FormatError("unknown MNRL enable kind %r" % enable)
        attributes = node.get("attributes", {})
        charclasses = attributes.get("symbolSets")
        if charclasses is None:
            raise FormatError("MNRL node %r missing symbolSets" % node.get("id"))
        symbols = tuple(parse_charclass(text, bits=bits) for text in charclasses)
        report = bool(node.get("report"))
        offsets = attributes.get("reportOffsets") if report else None
        automaton.new_state(
            node["id"], symbols,
            start=_KIND_BY_ENABLE[enable],
            report=report,
            report_code=node.get("reportId"),
            report_offsets=offsets,
        )
        for port in node.get("outputConnections", []):
            for target in port.get("activate", []):
                edges.append((node["id"], target["id"]))
    for src, dst in edges:
        automaton.add_transition(src, dst)
    return automaton


def dump(automaton, path, indent=2):
    """Write an automaton to an MNRL file at ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(automaton, indent=indent))


def load(path):
    """Read an MNRL file from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())
