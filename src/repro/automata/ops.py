"""Graph algorithms over homogeneous NFAs.

These are the passes the transformation pipeline leans on: connected
components drive placement into processing units, and the two congruence
merges implement the FlexAmata-style state minimization that keeps the
nibble transformation's state overhead near the paper's Table 3 numbers.
"""

from collections import deque

from .automaton import Automaton


def connected_components(automaton):
    """Weakly connected components as lists of state ids.

    Placement treats one component as an indivisible automaton: all states
    of a component must land in processing units that can exchange
    activation signals (Section 5.2's local/global interconnect).
    """
    remaining = set(automaton.state_ids())
    components = []
    while remaining:
        seed = next(iter(remaining))
        queue = deque([seed])
        component = {seed}
        while queue:
            current = queue.popleft()
            for neighbor in automaton.successors(current) | automaton.predecessors(current):
                if neighbor not in component:
                    component.add(neighbor)
                    queue.append(neighbor)
        remaining -= component
        components.append(sorted(component))
    components.sort(key=lambda c: (-len(c), c[0]))
    return components


def degree_statistics(automaton):
    """Fan-in/fan-out statistics used by the interconnect sizing analysis."""
    if len(automaton) == 0:
        return {"max_fan_in": 0, "max_fan_out": 0,
                "avg_fan_in": 0.0, "avg_fan_out": 0.0}
    fan_in = [len(automaton.predecessors(s)) for s in automaton.state_ids()]
    fan_out = [len(automaton.successors(s)) for s in automaton.state_ids()]
    return {
        "max_fan_in": max(fan_in),
        "max_fan_out": max(fan_out),
        "avg_fan_in": sum(fan_in) / len(fan_in),
        "avg_fan_out": sum(fan_out) / len(fan_out),
    }


def _merge_pass(automaton, signature):
    """Merge states sharing a signature; returns number of states removed.

    ``signature`` maps a state id to a hashable key; states with equal keys
    are collapsed into the first one (edges are unioned onto the survivor).
    """
    groups = {}
    for state in automaton:
        groups.setdefault(signature(state.id), []).append(state.id)
    removed = 0
    for members in groups.values():
        if len(members) < 2:
            continue
        survivor = members[0]
        for duplicate in members[1:]:
            for pred in list(automaton.predecessors(duplicate)):
                remapped = survivor if pred == duplicate else pred
                automaton.add_transition(remapped, survivor)
            for succ in list(automaton.successors(duplicate)):
                remapped = survivor if succ == duplicate else succ
                automaton.add_transition(survivor, remapped)
            automaton.remove_state(duplicate)
            removed += 1
    return removed


def merge_suffix_equivalent(automaton):
    """Merge states with identical behaviour and successor sets.

    Safe for NFAs: two states with the same symbol sets, flags, and exact
    successor sets are observationally identical going forward, so their
    incoming edges can be pooled.  Returns states removed.
    """
    def signature(state_id):
        state = automaton.state(state_id)
        return (state.behavior_key(), frozenset(
            s for s in automaton.successors(state_id) if s != state_id
        ), state_id in automaton.successors(state_id))
    return _merge_pass(automaton, signature)


def merge_prefix_equivalent(automaton):
    """Merge states with identical behaviour and predecessor sets.

    Two states with the same symbol sets, start kind, report behaviour, and
    exact predecessor sets are always co-active, so unioning their outgoing
    edges preserves the language.  Returns states removed.

    Start states with *no* predecessors are deliberately left unmerged:
    collapsing them is language-preserving but welds independent rules into
    one weakly-connected component, destroying the per-rule granularity the
    hardware placement needs (a component must fit one 1024-state cluster).
    """
    def signature(state_id):
        state = automaton.state(state_id)
        predecessors = frozenset(
            p for p in automaton.predecessors(state_id) if p != state_id
        )
        if state.is_start and not predecessors:
            return ("unmergeable-start", state_id)
        return (state.behavior_key(), predecessors,
                state_id in automaton.predecessors(state_id))
    return _merge_pass(automaton, signature)


def minimize(automaton, max_rounds=32):
    """Iterate prefix+suffix merging to a fixpoint; returns states removed.

    This is the hardware-aware minimization FlexAmata applies after bitwise
    decomposition: it cannot change the language (each individual merge is
    language-preserving) and typically recovers most of the state blowup of
    naive per-state decomposition.
    """
    total = 0
    for _ in range(max_rounds):
        removed = merge_suffix_equivalent(automaton)
        removed += merge_prefix_equivalent(automaton)
        total += removed
        if removed == 0:
            break
    return total


def union(automata, name="union", bits=None, arity=None):
    """Disjoint union of many automata into one machine.

    Each input keeps its behaviour; state ids are prefixed with the input's
    index.  All inputs must share shape (bits/arity/start period).
    """
    if not automata:
        raise ValueError("union() needs at least one automaton")
    first = automata[0]
    result = Automaton(
        name=name,
        bits=bits if bits is not None else first.bits,
        arity=arity if arity is not None else first.arity,
        start_period=first.start_period,
    )
    for index, machine in enumerate(automata):
        result.merge_in(machine, "u%d_" % index)
    return result


def reachable_from(automaton, seeds):
    """Forward-reachable set of state ids from ``seeds``."""
    queue = deque(seeds)
    seen = set(seeds)
    while queue:
        current = queue.popleft()
        for succ in automaton.successors(current):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return seen


def longest_simple_path_bound(automaton):
    """Cheap upper bound on pattern depth: BFS layering from start states.

    Used by workload generators to sanity-check that generated rules have
    the intended depth; exact longest-path is NP-hard on general graphs.
    """
    depth = {s.id: 0 for s in automaton.start_states()}
    queue = deque(depth)
    while queue:
        current = queue.popleft()
        for succ in automaton.successors(current):
            if succ not in depth:
                depth[succ] = depth[current] + 1
                queue.append(succ)
    return max(depth.values()) + 1 if depth else 0
