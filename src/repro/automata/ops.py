"""Graph algorithms over homogeneous NFAs.

These are the passes the transformation pipeline leans on: connected
components drive placement into processing units, and the two congruence
merges implement the FlexAmata-style state minimization that keeps the
nibble transformation's state overhead near the paper's Table 3 numbers.
"""

from collections import deque

from ..obs import OBS
from .automaton import Automaton
from .gcutil import gc_paused
from .indexed import IndexedAutomaton


def connected_components(automaton):
    """Weakly connected components as lists of state ids.

    Placement treats one component as an indivisible automaton: all states
    of a component must land in processing units that can exchange
    activation signals (Section 5.2's local/global interconnect).
    """
    remaining = set(automaton.state_ids())
    components = []
    while remaining:
        seed = next(iter(remaining))
        queue = deque([seed])
        component = {seed}
        while queue:
            current = queue.popleft()
            for neighbor in automaton.successors(current) | automaton.predecessors(current):
                if neighbor not in component:
                    component.add(neighbor)
                    queue.append(neighbor)
        remaining -= component
        components.append(sorted(component))
    components.sort(key=lambda c: (-len(c), c[0]))
    return components


def degree_statistics(automaton):
    """Fan-in/fan-out statistics used by the interconnect sizing analysis."""
    if len(automaton) == 0:
        return {"max_fan_in": 0, "max_fan_out": 0,
                "avg_fan_in": 0.0, "avg_fan_out": 0.0}
    fan_in = [len(automaton.predecessors(s)) for s in automaton.state_ids()]
    fan_out = [len(automaton.successors(s)) for s in automaton.state_ids()]
    return {
        "max_fan_in": max(fan_in),
        "max_fan_out": max(fan_out),
        "avg_fan_in": sum(fan_in) / len(fan_in),
        "avg_fan_out": sum(fan_out) / len(fan_out),
    }


def _merge_pass(automaton, signature):
    """Merge states sharing a signature; returns number of states removed.

    ``signature`` maps a state id to a hashable key; states with equal keys
    are collapsed into the first one (edges are unioned onto the survivor).
    """
    groups = {}
    for state in automaton:
        groups.setdefault(signature(state.id), []).append(state.id)
    removed = 0
    for members in groups.values():
        if len(members) < 2:
            continue
        survivor = members[0]
        for duplicate in members[1:]:
            for pred in list(automaton.predecessors(duplicate)):
                remapped = survivor if pred == duplicate else pred
                automaton.add_transition(remapped, survivor)
            for succ in list(automaton.successors(duplicate)):
                remapped = survivor if succ == duplicate else succ
                automaton.add_transition(survivor, remapped)
            automaton.remove_state(duplicate)
            removed += 1
    return removed


def merge_suffix_equivalent(automaton):
    """Merge states with identical behaviour and successor sets.

    Safe for NFAs: two states with the same symbol sets, flags, and exact
    successor sets are observationally identical going forward, so their
    incoming edges can be pooled.  Returns states removed.
    """
    def signature(state_id):
        state = automaton.state(state_id)
        return (state.behavior_key(), frozenset(
            s for s in automaton.successors(state_id) if s != state_id
        ), state_id in automaton.successors(state_id))
    return _merge_pass(automaton, signature)


def merge_prefix_equivalent(automaton):
    """Merge states with identical behaviour and predecessor sets.

    Two states with the same symbol sets, start kind, report behaviour, and
    exact predecessor sets are always co-active, so unioning their outgoing
    edges preserves the language.  Returns states removed.

    Start states with *no* predecessors are deliberately left unmerged:
    collapsing them is language-preserving but welds independent rules into
    one weakly-connected component, destroying the per-rule granularity the
    hardware placement needs (a component must fit one 1024-state cluster).
    """
    def signature(state_id):
        state = automaton.state(state_id)
        predecessors = frozenset(
            p for p in automaton.predecessors(state_id) if p != state_id
        )
        if state.is_start and not predecessors:
            return ("unmergeable-start", state_id)
        return (state.behavior_key(), predecessors,
                state_id in automaton.predecessors(state_id))
    return _merge_pass(automaton, signature)


def _refine_partition(automaton, neighbors, inverse, protected=frozenset()):
    """Coarsest partition stable under (behaviour, neighbour-block-set).

    Worklist signature refinement: start from the partition induced by
    :meth:`Ste.behavior_key` (``protected`` ids get singleton blocks) and
    split any block whose members see different *blocks* through
    ``neighbors``.  When a split moves states to a fresh block id, only
    the blocks holding their ``inverse`` neighbours are re-examined — the
    id stays with the largest sub-block, so work is proportional to the
    states that actually move, not to graph depth.  The coarsest stable
    partition is unique, so the processing order cannot change the
    result; no mutation happens until the merge is applied.

    Returns ``state id -> block index``; within each block the survivor
    chosen later is the member earliest in state insertion order.
    """
    block = {}
    members = {}
    blocks_seen = {}
    for state_id in automaton.state_ids():
        if state_id in protected:
            key = ("protected", state_id)
        else:
            key = ("behavior", automaton.state(state_id).behavior_key())
        index = blocks_seen.get(key)
        if index is None:
            index = blocks_seen[key] = len(blocks_seen)
        block[state_id] = index
        members.setdefault(index, []).append(state_id)
    next_id = len(blocks_seen)
    pending = {index for index, mem in members.items() if len(mem) > 1}
    signatures = {}  # state id -> cached sig; stale only for dirty states
    examined = set()  # blocks whose members are known sig-uniform
    dirty = set(block)
    while pending:
        touched, pending = pending, set()
        moved = []
        for index in touched:
            mem = members[index]
            if len(mem) < 2:
                continue
            # Refresh stale signatures; a block is sig-uniform after its
            # first examination, so if no refresh changed anything it
            # cannot split now and regrouping is skipped entirely.
            changed = index not in examined
            for state_id in mem:
                if state_id in dirty:
                    dirty.discard(state_id)
                    signature = frozenset(
                        block[n] for n in neighbors(state_id))
                    if signatures.get(state_id) != signature:
                        signatures[state_id] = signature
                        changed = True
            if not changed:
                continue
            examined.add(index)
            groups = {}
            for state_id in mem:
                groups.setdefault(signatures[state_id], []).append(state_id)
            if len(groups) == 1:
                continue
            ordered = sorted(groups.values(), key=len, reverse=True)
            members[index] = ordered[0]
            for sub in ordered[1:]:
                for state_id in sub:
                    block[state_id] = next_id
                members[next_id] = sub
                examined.add(next_id)
                moved.extend(sub)
                next_id += 1
        for state_id in moved:
            for neighbor in inverse(state_id):
                dirty.add(neighbor)
                neighbor_block = block[neighbor]
                if len(members[neighbor_block]) > 1:
                    pending.add(neighbor_block)
    return block


def _apply_partition(automaton, block):
    """Collapse each partition block onto its first member (quotient).

    All edges are remapped onto the survivors before any state is
    removed, so in/out edges of duplicates are pooled exactly as the
    one-shot merge passes do.  Returns states removed.
    """
    ids = automaton.state_ids()
    members = {}
    for state_id in ids:
        members.setdefault(block[state_id], []).append(state_id)
    survivor = {state_id: members[block[state_id]][0] for state_id in ids}
    for src, dst in list(automaton.transitions()):
        remapped = (survivor[src], survivor[dst])
        if remapped != (src, dst):
            automaton.add_transition(*remapped)
    removed = 0
    for state_id in ids:
        if survivor[state_id] != state_id:
            automaton.remove_state(state_id)
            removed += 1
    return removed


def _prefix_protected(automaton):
    """Start states with no predecessors — never merged (see
    :func:`merge_prefix_equivalent` for the placement rationale)."""
    return frozenset(
        state.id for state in automaton.start_states()
        if not automaton.predecessors(state.id)
    )


#: In-process memo of fingerprints whose machines are known minimal
#: (bounded FIFO); probed before any minimization work is done.
_MINIMAL_FINGERPRINTS = {}
_MINIMAL_LIMIT = 4096
#: Cache-key op for the cross-process known-minimal markers stored in
#: the transform cache (content-addressed by fingerprint, like traits).
MINIMAL_OP = "minimal"


def _minimal_marker_store():
    """The transform cache's generic store interface, or ``None``.

    Imported lazily: ``repro.transform`` depends on this package, so a
    module-level import would be circular.
    """
    try:
        from ..transform import cache as transform_cache
        return transform_cache.get_cache()
    except Exception:  # pragma: no cover - import/config failures
        return None


def _is_known_minimal(fingerprint):
    """Whether ``fingerprint`` was recorded as a minimal machine."""
    if fingerprint in _MINIMAL_FINGERPRINTS:
        return True
    store = _minimal_marker_store()
    if store is None:
        return False
    if store.has_marker(MINIMAL_OP, fingerprint):
        _remember_minimal(fingerprint)
        return True
    return False


def _remember_minimal(fingerprint):
    if len(_MINIMAL_FINGERPRINTS) >= _MINIMAL_LIMIT:
        _MINIMAL_FINGERPRINTS.pop(next(iter(_MINIMAL_FINGERPRINTS)))
    _MINIMAL_FINGERPRINTS[fingerprint] = True


def _record_minimal(fingerprint):
    """Record ``fingerprint`` in-process and in the transform cache."""
    _remember_minimal(fingerprint)
    store = _minimal_marker_store()
    if store is not None:
        store.put_marker(MINIMAL_OP, fingerprint)


@gc_paused
def minimize(automaton, max_rounds=32):
    """Partition-refinement minimization; returns states removed.

    This is the hardware-aware minimization FlexAmata applies after
    bitwise decomposition.  Semantics are documented on
    :func:`minimize_unindexed` (the direct string-graph implementation,
    kept as the differential oracle); this entry point runs the same
    screen-then-refine algorithm over the dense
    :class:`~repro.automata.indexed.IndexedAutomaton` view — interned
    behaviour ids, integer adjacency rows, bitmask liveness — and
    writes the surviving graph back in place.  Output is bit-exact
    against the oracle (``tests/test_indexed.py``).

    Machines whose fingerprint the cache already recorded as minimal
    (a previous ``minimize`` left them unchanged or produced them) are
    skipped outright: the fingerprint probe costs one canonical hash
    instead of a full screening pass.
    """
    fingerprint = automaton.fingerprint()
    if _is_known_minimal(fingerprint):
        return 0
    indexed = IndexedAutomaton.from_automaton(automaton)
    total = indexed.minimize(max_rounds=max_rounds)
    if total:
        indexed.write_back(automaton)
        _record_minimal(automaton.fingerprint())
    else:
        _record_minimal(fingerprint)
    if OBS.active:
        OBS.instruments.transform_states.labels(op="minimize").set(
            len(automaton))
    return total


@gc_paused
def minimize_unindexed(automaton, max_rounds=32):
    """Partition-refinement minimization on the string graph (oracle).

    One cheap exact-signature screening pass (one suffix + one prefix
    merge) runs first: on an already-minimal machine — the common case
    for compiled registry workloads — it removes nothing and
    minimization stops at the cost of a single scan.  When the screen
    does find merges, the full partition refinement takes over and
    computes each direction's coarsest stable partition in one pass
    over the static graph:

    - **suffix** — states in one block share behaviour and see the same
      successor blocks, hence the same right language, so their incoming
      edges can be pooled.  Unlike the one-shot exact-successor-set
      merge, this reaches equivalences through cycles and collapses a
      chain of ``L`` duplicate states in one pass instead of ``L``
      mutate-and-rescan rounds (which :func:`minimize_legacy` caps at
      ``max_rounds``, leaving long duplicates unmerged);
    - **prefix** — states in one block share behaviour and the same
      predecessor blocks, hence are always co-active, so their outgoing
      edges can be pooled.  Start states with no predecessors stay
      singleton blocks (merging them would weld independent rules into
      one placement component).

    The two directions alternate until neither shrinks the machine —
    typically one refinement round plus one (much smaller) verification
    round.  :func:`minimize` runs this exact algorithm over the indexed
    view; this direct implementation is retained as its differential
    oracle (like :func:`minimize_legacy` before it).
    """
    total = merge_suffix_equivalent(automaton)
    total += merge_prefix_equivalent(automaton)
    if total == 0:
        return 0
    for _ in range(max_rounds):
        removed = _apply_partition(
            automaton, _refine_partition(
                automaton, automaton.successors, automaton.predecessors))
        removed += _apply_partition(
            automaton, _refine_partition(
                automaton, automaton.predecessors, automaton.successors,
                protected=_prefix_protected(automaton)))
        total += removed
        if removed == 0:
            break
    return total


def minimize_legacy(automaton, max_rounds=32):
    """The pre-refinement minimizer: iterate one-shot merges to fixpoint.

    Each round rescans and mutates the whole graph, and a chain of ``L``
    equivalent states needs ``L`` rounds to collapse.  Kept as the
    baseline for ``scripts/bench_transform.py``; new code should call
    :func:`minimize`.
    """
    total = 0
    for _ in range(max_rounds):
        removed = merge_suffix_equivalent(automaton)
        removed += merge_prefix_equivalent(automaton)
        total += removed
        if removed == 0:
            break
    return total


def union(automata, name="union", bits=None, arity=None):
    """Disjoint union of many automata into one machine.

    Each input keeps its behaviour; state ids are prefixed with the input's
    index.  All inputs must share shape (bits/arity/start period).
    """
    if not automata:
        raise ValueError("union() needs at least one automaton")
    first = automata[0]
    result = Automaton(
        name=name,
        bits=bits if bits is not None else first.bits,
        arity=arity if arity is not None else first.arity,
        start_period=first.start_period,
    )
    for index, machine in enumerate(automata):
        result.merge_in(machine, "u%d_" % index)
    if OBS.active:
        OBS.instruments.transform_states.labels(op="union").set(len(result))
    return result


def reachable_from(automaton, seeds):
    """Forward-reachable set of state ids from ``seeds``."""
    queue = deque(seeds)
    seen = set(seeds)
    while queue:
        current = queue.popleft()
        for succ in automaton.successors(current):
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return seen


def longest_simple_path_bound(automaton):
    """Cheap upper bound on pattern depth: BFS layering from start states.

    Used by workload generators to sanity-check that generated rules have
    the intended depth; exact longest-path is NP-hard on general graphs.
    """
    depth = {s.id: 0 for s in automaton.start_states()}
    queue = deque(depth)
    while queue:
        current = queue.popleft()
        for succ in automaton.successors(current):
            if succ not in depth:
                depth[succ] = depth[current] + 1
                queue.append(succ)
    return max(depth.values()) + 1 if depth else 0
