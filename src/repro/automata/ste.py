"""State Transition Elements (STEs) for homogeneous NFAs.

A homogeneous NFA attaches the matching rule to the *state* rather than the
edge: every transition entering a state fires on that state's symbol set
(Glushkov form).  This is the representation used by the Micron AP, Cache
Automaton, Impala, and Sunder, because a state then maps to exactly one
memory column.

An STE in this library is *vector-valued*: ``symbols`` is a tuple with one
:class:`~repro.automata.symbolset.SymbolSet` per stride position.  A plain
8-bit or 4-bit automaton uses arity-1 tuples; temporally strided automata
(Section 4 of the paper) use arity 2 or 4.
"""

import enum

from ..errors import AutomatonError
from .symbolset import SymbolSet


class StartKind(enum.Enum):
    """How a state may self-activate, mirroring ANML start attributes."""

    #: Never self-activates; only enabled by a predecessor.
    NONE = "none"
    #: Enabled only for the very first input symbol (ANML ``start-of-data``).
    START_OF_DATA = "start-of-data"
    #: Enabled on every symbol-cycle boundary (ANML ``all-input``).
    ALL_INPUT = "all-input"


class Ste:
    """One state of a homogeneous NFA.

    Parameters
    ----------
    state_id:
        Unique identifier within the automaton (any hashable string).
    symbols:
        One :class:`SymbolSet` per stride position; all positions must share
        the same symbol width.
    start:
        A :class:`StartKind` (or its string value).
    report:
        Whether reaching this state emits a report event.
    report_code:
        Stable identifier attached to report events.  Transformations
        propagate it, so reports from a nibble-transformed automaton can be
        matched against the original automaton's reports.
    report_offsets:
        For strided states: the positions within the vector at which the
        report fires (``0`` is the first sub-symbol).  Defaults to the last
        position, which is the only position for arity-1 states.
    """

    __slots__ = ("id", "symbols", "start", "report", "report_code", "report_offsets")

    def __init__(
        self,
        state_id,
        symbols,
        start=StartKind.NONE,
        report=False,
        report_code=None,
        report_offsets=None,
    ):
        if isinstance(symbols, SymbolSet):
            symbols = (symbols,)
        symbols = tuple(symbols)
        if not symbols:
            raise AutomatonError("STE %r needs at least one symbol set" % state_id)
        widths = {s.bits for s in symbols}
        if len(widths) != 1:
            raise AutomatonError(
                "STE %r mixes symbol widths %s" % (state_id, sorted(widths))
            )
        if isinstance(start, str):
            start = StartKind(start)
        if report_offsets is None:
            report_offsets = (len(symbols) - 1,) if report else ()
        report_offsets = tuple(sorted(set(report_offsets)))
        for offset in report_offsets:
            if not 0 <= offset < len(symbols):
                raise AutomatonError(
                    "report offset %d out of range for arity-%d STE %r"
                    % (offset, len(symbols), state_id)
                )
        if report and not report_offsets:
            raise AutomatonError("reporting STE %r has no report offsets" % state_id)
        if report_offsets and not report:
            raise AutomatonError(
                "STE %r has report offsets but report=False" % state_id
            )
        self.id = state_id
        self.symbols = symbols
        self.start = start
        self.report = bool(report)
        self.report_code = report_code if report else None
        self.report_offsets = report_offsets

    # ------------------------------------------------------------------
    @property
    def arity(self):
        """Number of sub-symbols this state consumes per cycle."""
        return len(self.symbols)

    @property
    def bits(self):
        """Width in bits of each sub-symbol."""
        return self.symbols[0].bits

    @property
    def is_start(self):
        """True for either start kind."""
        return self.start is not StartKind.NONE

    def matches(self, vector):
        """True when the input ``vector`` (tuple of ints) matches this state."""
        if len(vector) != len(self.symbols):
            raise AutomatonError(
                "arity mismatch: state %r expects %d sub-symbols, got %d"
                % (self.id, len(self.symbols), len(vector))
            )
        return all(value in sset for sset, value in zip(self.symbols, vector))

    def behavior_key(self):
        """Hashable key of everything except identity and connectivity.

        Two states with equal behaviour keys *and* equal successor (or
        predecessor) sets are mergeable; see
        :func:`repro.automata.ops.merge_equivalent_states`.
        """
        return (self.symbols, self.start, self.report, self.report_code,
                self.report_offsets)

    def clone(self, state_id=None):
        """Copy this STE, optionally renaming it.

        Every field of an existing STE is already canonical (validated
        at construction), so the copy skips ``__init__`` validation —
        cloning is the inner loop of ``Automaton.copy`` and the
        transform cache's put path, where re-validating hundreds of
        thousands of states per pipeline run was pure overhead.
        """
        return ste_from_canonical(
            state_id if state_id is not None else self.id,
            self.symbols, self.start, self.report,
            self.report_code, self.report_offsets,
        )

    def __repr__(self):
        flags = []
        if self.start is not StartKind.NONE:
            flags.append(self.start.value)
        if self.report:
            flags.append("report")
        label = "x".join(s.to_charclass() for s in self.symbols)
        suffix = (" " + ",".join(flags)) if flags else ""
        return "Ste(%r, %s%s)" % (self.id, label, suffix)


def ste_from_canonical(state_id, symbols, start, report, report_code,
                       report_offsets):
    """Build an :class:`Ste` from already-canonical fields, skipping
    ``__init__`` validation.

    Callers must guarantee the invariants ``__init__`` enforces:
    ``symbols`` is a non-empty uniform-width tuple, ``start`` is a
    :class:`StartKind`, ``report_offsets`` is a sorted deduplicated
    in-range tuple that is non-empty exactly when ``report`` is true,
    and ``report_code`` is ``None`` when ``report`` is false.  The
    indexed transform kernels and :meth:`Ste.clone` satisfy this by
    construction (their inputs come from validated STEs).
    """
    ste = object.__new__(Ste)
    ste.id = state_id
    ste.symbols = symbols
    ste.start = start
    ste.report = report
    ste.report_code = report_code
    ste.report_offsets = report_offsets
    return ste
