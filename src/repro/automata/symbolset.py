"""Symbol sets (character classes) over power-of-two alphabets.

A :class:`SymbolSet` is an immutable set of symbols drawn from the alphabet
``[0, 2**bits)``.  Membership is stored as a Python-int bitmask, which keeps
the set operations used throughout the transformation pipeline (union,
intersection, complement) cheap even for the 256-symbol byte alphabet.

Automata in this library label each state with one symbol set per stride
position, so symbol sets are the vocabulary shared by the regex compiler,
the nibble transformation, and the hardware mapping (a symbol set over a
4-bit alphabet is exactly one one-hot column segment in a Sunder subarray).
"""

from ..errors import SymbolError

_PRINTABLE_ESCAPES = {
    ord("\n"): "\\n",
    ord("\r"): "\\r",
    ord("\t"): "\\t",
    ord("\\"): "\\\\",
    ord("]"): "\\]",
    ord("-"): "\\-",
    ord("["): "\\[",
}


def _symbol_repr(value):
    """Render one symbol the way ANML character classes do."""
    if value in _PRINTABLE_ESCAPES:
        return _PRINTABLE_ESCAPES[value]
    if 0x20 <= value <= 0x7E:
        return chr(value)
    return "\\x%02x" % value


class SymbolSet:
    """An immutable set of symbols over the alphabet ``[0, 2**bits)``.

    Parameters
    ----------
    bits:
        Width of a symbol in bits; the alphabet has ``2**bits`` symbols.
        Sunder's native alphabet is 4 bits (a nibble); byte-oriented
        benchmarks use 8 bits.
    mask:
        Bitmask of members; bit ``i`` set means symbol ``i`` is in the set.
    """

    __slots__ = ("bits", "mask", "_hash")

    def __init__(self, bits, mask=0):
        if bits < 1 or bits > 24:
            raise SymbolError("symbol width must be in [1, 24] bits, got %r" % bits)
        size = 1 << bits
        full = (1 << size) - 1
        if mask < 0 or mask > full:
            raise SymbolError("mask out of range for a %d-bit alphabet" % bits)
        object.__setattr__(self, "bits", bits)
        object.__setattr__(self, "mask", mask)

    def __setattr__(self, name, value):
        raise AttributeError("SymbolSet is immutable")

    def __reduce__(self):
        # Pickle through the constructor: the default slots-state protocol
        # restores attributes with setattr, which immutability blocks —
        # and stage-graph jobs carry symbol sets across process pools.
        return (SymbolSet, (self.bits, self.mask))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, bits):
        """The empty set over a ``bits``-wide alphabet."""
        return cls(bits, 0)

    @classmethod
    def full(cls, bits):
        """The set containing every symbol of a ``bits``-wide alphabet."""
        return cls(bits, (1 << (1 << bits)) - 1)

    @classmethod
    def of(cls, bits, symbols):
        """Build a set from an iterable of symbol values."""
        mask = 0
        size = 1 << bits
        for value in symbols:
            if not 0 <= value < size:
                raise SymbolError(
                    "symbol %r out of range for a %d-bit alphabet" % (value, bits)
                )
            mask |= 1 << value
        return cls(bits, mask)

    @classmethod
    def single(cls, bits, value):
        """The singleton set ``{value}``."""
        return cls.of(bits, (value,))

    @classmethod
    def from_ranges(cls, bits, ranges):
        """Build a set from ``(low, high)`` inclusive ranges."""
        mask = 0
        size = 1 << bits
        for low, high in ranges:
            if low > high:
                raise SymbolError("range low %d exceeds high %d" % (low, high))
            if low < 0 or high >= size:
                raise SymbolError(
                    "range [%d, %d] out of bounds for a %d-bit alphabet"
                    % (low, high, bits)
                )
            mask |= ((1 << (high - low + 1)) - 1) << low
        return cls(bits, mask)

    @classmethod
    def from_bytes_literal(cls, data):
        """An 8-bit set containing each byte of ``data``."""
        return cls.of(8, data)

    # ------------------------------------------------------------------
    # Set algebra
    # ------------------------------------------------------------------
    def _check_compatible(self, other):
        if not isinstance(other, SymbolSet):
            raise SymbolError("expected a SymbolSet, got %r" % (other,))
        if other.bits != self.bits:
            raise SymbolError(
                "alphabet mismatch: %d-bit vs %d-bit" % (self.bits, other.bits)
            )

    def union(self, other):
        """Return ``self | other``."""
        self._check_compatible(other)
        return SymbolSet(self.bits, self.mask | other.mask)

    def intersect(self, other):
        """Return ``self & other``."""
        self._check_compatible(other)
        return SymbolSet(self.bits, self.mask & other.mask)

    def difference(self, other):
        """Return ``self - other``."""
        self._check_compatible(other)
        return SymbolSet(self.bits, self.mask & ~other.mask)

    def complement(self):
        """Return the complement within the alphabet."""
        full = (1 << (1 << self.bits)) - 1
        return SymbolSet(self.bits, full ^ self.mask)

    __or__ = union
    __and__ = intersect
    __sub__ = difference
    __invert__ = complement

    def is_empty(self):
        """True when the set has no members."""
        return self.mask == 0

    def is_full(self):
        """True when the set contains the whole alphabet."""
        return self.mask == (1 << (1 << self.bits)) - 1

    def is_subset(self, other):
        """True when every member of ``self`` is in ``other``."""
        self._check_compatible(other)
        return self.mask & ~other.mask == 0

    def overlaps(self, other):
        """True when the intersection is non-empty."""
        self._check_compatible(other)
        return self.mask & other.mask != 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, value):
        return 0 <= value < (1 << self.bits) and (self.mask >> value) & 1 == 1

    def __iter__(self):
        mask = self.mask
        while mask:
            low = mask & -mask
            yield low.bit_length() - 1
            mask ^= low

    def __len__(self):
        return bin(self.mask).count("1")

    def __bool__(self):
        return self.mask != 0

    def min(self):
        """Smallest member; raises :class:`SymbolError` on an empty set."""
        if not self.mask:
            raise SymbolError("min() of an empty symbol set")
        return (self.mask & -self.mask).bit_length() - 1

    def max(self):
        """Largest member; raises :class:`SymbolError` on an empty set."""
        if not self.mask:
            raise SymbolError("max() of an empty symbol set")
        return self.mask.bit_length() - 1

    def density(self):
        """Fraction of the alphabet covered, in ``[0, 1]``."""
        return len(self) / float(1 << self.bits)

    def ranges(self):
        """Yield maximal ``(low, high)`` inclusive runs of members."""
        run_start = None
        previous = None
        for value in self:
            if run_start is None:
                run_start = value
            elif value != previous + 1:
                yield (run_start, previous)
                run_start = value
            previous = value
        if run_start is not None:
            yield (run_start, previous)

    # ------------------------------------------------------------------
    # Nibble decomposition helpers (used by the 8-bit -> 4-bit transform)
    # ------------------------------------------------------------------
    def split_nibbles(self):
        """Decompose an 8-bit set into high-nibble groups.

        Returns a list of ``(high_set, low_set)`` pairs of 4-bit
        :class:`SymbolSet` such that the original set is exactly the union
        of ``{(h << 4) | l : h in high_set, l in low_set}`` over the pairs,
        the pairs are disjoint, and the number of pairs is minimal among
        groupings that partition by high nibble (the FlexAmata row-group
        decomposition).
        """
        if self.bits != 8:
            raise SymbolError("split_nibbles() requires an 8-bit set")
        lows_by_high = {}
        for high in range(16):
            low_mask = (self.mask >> (high << 4)) & 0xFFFF
            if low_mask:
                lows_by_high.setdefault(low_mask, 0)
                lows_by_high[low_mask] |= 1 << high
        return [
            (SymbolSet(4, high_mask), SymbolSet(4, low_mask))
            for low_mask, high_mask in sorted(lows_by_high.items())
        ]

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other):
        return (
            isinstance(other, SymbolSet)
            and other.bits == self.bits
            and other.mask == self.mask
        )

    def __hash__(self):
        # Sets are immutable, and transform interning hashes the same
        # instances over and over — cache on first use.  (Slot assignment
        # goes through object.__setattr__; __setattr__ blocks everything.)
        try:
            return self._hash
        except AttributeError:
            value = hash((self.bits, self.mask))
            object.__setattr__(self, "_hash", value)
            return value

    def __repr__(self):
        return "SymbolSet(bits=%d, %s)" % (self.bits, self.to_charclass())

    def to_charclass(self):
        """Render as a bracketed character class, e.g. ``[a-f0-3]``.

        Follows ANML conventions: ``[*]`` denotes the full alphabet and
        symbols outside printable ASCII are hex-escaped.
        """
        if self.is_full():
            return "[*]"
        parts = []
        for low, high in self.ranges():
            if high == low:
                parts.append(_symbol_repr(low))
            elif high == low + 1:
                parts.append(_symbol_repr(low) + _symbol_repr(high))
            else:
                parts.append("%s-%s" % (_symbol_repr(low), _symbol_repr(high)))
        return "[%s]" % "".join(parts)
