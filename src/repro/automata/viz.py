"""Automaton visualization: Graphviz DOT export and text outlines.

VASim-style debugging aids.  ``to_dot`` renders a homogeneous NFA with
ANML conventions (double circles for reporting states, bold border for
starts, the symbol-set character class as the label).
"""

from .ste import StartKind


def _dot_escape(text):
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(automaton, name=None, max_states=2000):
    """Render an automaton as a Graphviz DOT string.

    ``max_states`` guards against accidentally dumping a 100k-state
    machine; raise it explicitly for big graphs.
    """
    if len(automaton) > max_states:
        raise ValueError(
            "automaton has %d states; raise max_states to render it"
            % len(automaton)
        )
    lines = [
        'digraph "%s" {' % _dot_escape(name or automaton.name),
        "  rankdir=LR;",
        '  node [fontname="monospace" fontsize=10];',
    ]
    for state in automaton:
        label = "x".join(s.to_charclass() for s in state.symbols)
        attributes = ['label="%s\\n%s"' % (_dot_escape(str(state.id)),
                                           _dot_escape(label))]
        if state.report:
            attributes.append("shape=doublecircle")
        else:
            attributes.append("shape=circle")
        if state.start is StartKind.ALL_INPUT:
            attributes.append('style=bold color=blue')
        elif state.start is StartKind.START_OF_DATA:
            attributes.append('style=bold color=darkgreen')
        lines.append('  "%s" [%s];' % (_dot_escape(str(state.id)),
                                       " ".join(attributes)))
    for src, dst in sorted(automaton.transitions()):
        lines.append('  "%s" -> "%s";' % (_dot_escape(str(src)),
                                          _dot_escape(str(dst))))
    lines.append("}")
    return "\n".join(lines)


def write_dot(automaton, path, **kwargs):
    """Write the DOT rendering to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(automaton, **kwargs))


def outline(automaton, max_states=50):
    """Human-readable text outline: one line per state.

    Format: ``[S]/[R] id  charclass  -> successors``; truncates after
    ``max_states`` lines.
    """
    lines = ["%s (%d states, %d transitions, %d-bit x%d)" % (
        automaton.name, len(automaton), automaton.num_transitions(),
        automaton.bits, automaton.arity,
    )]
    for index, state in enumerate(automaton):
        if index >= max_states:
            lines.append("  ... %d more states" % (len(automaton) - index))
            break
        flags = ""
        if state.start is not StartKind.NONE:
            flags += "S"
        if state.report:
            flags += "R"
        label = "x".join(s.to_charclass() for s in state.symbols)
        successors = ",".join(sorted(map(str, automaton.successors(state.id))))
        lines.append("  [%-2s] %-16s %-20s -> %s" % (
            flags, state.id, label, successors or "-"))
    return "\n".join(lines)
