"""Baseline architecture models: AP, AP+RAD, Cache Automaton, Impala."""

from .ap import (
    EXPORT_BITS_PER_CYCLE,
    RAD_CHUNK_BITS,
    REGION_SIZE,
    ApPerfResult,
    ApReportingModel,
)
from .software import Dfa, DfaMatcher, determinize, software_cost_model
from .throughput import (
    ALL_THROUGHPUT_MODELS,
    AP_14NM_THROUGHPUT,
    AP_50NM_THROUGHPUT,
    CA_THROUGHPUT,
    IMPALA_THROUGHPUT,
    SUNDER_THROUGHPUT,
    ThroughputModel,
    figure8_rows,
)

__all__ = [
    "ALL_THROUGHPUT_MODELS",
    "AP_14NM_THROUGHPUT",
    "AP_50NM_THROUGHPUT",
    "ApPerfResult",
    "ApReportingModel",
    "CA_THROUGHPUT",
    "Dfa",
    "DfaMatcher",
    "determinize",
    "software_cost_model",
    "EXPORT_BITS_PER_CYCLE",
    "IMPALA_THROUGHPUT",
    "RAD_CHUNK_BITS",
    "REGION_SIZE",
    "SUNDER_THROUGHPUT",
    "ThroughputModel",
    "figure8_rows",
]
