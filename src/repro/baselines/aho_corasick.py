"""Aho-Corasick multi-literal matching — the software baseline for
signature sets.

ClamAV/ExactMatch-style benchmarks are pure literal sets, for which
software uses Aho-Corasick: a trie with failure links giving one state
transition per input byte.  This module provides:

- :class:`AhoCorasick` — classic construction (goto/fail/output) and a
  byte-at-a-time matcher;
- :meth:`AhoCorasick.to_automaton` — conversion of the *trie* (without
  failure links) into a homogeneous NFA, which is exactly how literal
  sets are deployed on the spatial accelerators: the NFA needs no failure
  function because all prefixes run in parallel.

Both paths are differential-tested against each other and against the
regex pipeline, anchoring three independent implementations.
"""

from collections import deque

from ..automata.automaton import Automaton
from ..automata.ste import StartKind
from ..automata.symbolset import SymbolSet
from ..errors import WorkloadError


class AhoCorasick:
    """Aho-Corasick automaton over byte patterns."""

    def __init__(self, patterns):
        """``patterns``: iterable of bytes or (bytes, code) pairs."""
        self.patterns = []
        for entry in patterns:
            if isinstance(entry, tuple):
                pattern, code = entry
            else:
                pattern, code = entry, entry
            if not pattern:
                raise WorkloadError("empty pattern in Aho-Corasick set")
            self.patterns.append((bytes(pattern), code))
        if not self.patterns:
            raise WorkloadError("Aho-Corasick needs at least one pattern")
        self._build()

    def _build(self):
        # goto graph (trie)
        self.goto = [{}]       # state -> byte -> state
        self.output = [set()]  # state -> set of codes ending here
        self.depth = [0]
        for pattern, code in self.patterns:
            state = 0
            for byte in pattern:
                if byte not in self.goto[state]:
                    self.goto.append({})
                    self.output.append(set())
                    self.depth.append(self.depth[state] + 1)
                    self.goto[state][byte] = len(self.goto) - 1
                state = self.goto[state][byte]
            self.output[state].add(code)

        # failure links (BFS)
        self.fail = [0] * len(self.goto)
        queue = deque()
        for byte, state in self.goto[0].items():
            queue.append(state)
        while queue:
            state = queue.popleft()
            for byte, target in self.goto[state].items():
                queue.append(target)
                fallback = self.fail[state]
                while fallback and byte not in self.goto[fallback]:
                    fallback = self.fail[fallback]
                self.fail[target] = self.goto[fallback].get(byte, 0)
                if self.fail[target] == target:
                    self.fail[target] = 0
                self.output[target] |= self.output[self.fail[target]]

    @property
    def num_states(self):
        return len(self.goto)

    def _step(self, state, byte):
        while state and byte not in self.goto[state]:
            state = self.fail[state]
        return self.goto[state].get(byte, 0)

    def find(self, data):
        """All matches: set of ``(end_position, code)`` pairs."""
        state = 0
        hits = set()
        for position, byte in enumerate(data):
            state = self._step(state, byte)
            for code in self.output[state]:
                hits.add((position, code))
        return hits

    def memory_bytes(self, pointer_bytes=4):
        """Sparse-table footprint: goto edges + fail links + outputs."""
        edges = sum(len(table) for table in self.goto)
        outputs = sum(len(codes) for codes in self.output)
        return (edges * (1 + pointer_bytes)
                + self.num_states * pointer_bytes
                + outputs * pointer_bytes)

    # ------------------------------------------------------------------
    def to_automaton(self, name="aho-corasick", bits=8):
        """Deploy the literal set as a homogeneous NFA.

        One STE per trie node (minus the root): depth-1 nodes are
        ``ALL_INPUT`` starts, an STE reports the codes of the patterns
        ending at its node.  Failure links vanish: parallel prefix
        tracking is free in an NFA.

        Multiple codes on one node (duplicate patterns) are joined with
        '+' in the report code, mirroring how rulesets dedupe literals.
        """
        automaton = Automaton(name=name, bits=bits)
        ids = {}
        for state, table in enumerate(self.goto):
            for byte, target in table.items():
                codes = self.output[target]
                code = None
                if codes:
                    code = "+".join(sorted(str(c) for c in codes))
                ids[target] = "n%d" % target
                automaton.new_state(
                    ids[target],
                    SymbolSet.single(bits, byte),
                    start=(StartKind.ALL_INPUT if state == 0
                           else StartKind.NONE),
                    report=bool(codes),
                    report_code=code,
                )
        for state, table in enumerate(self.goto):
            if state == 0:
                continue
            for target in table.values():
                automaton.add_transition(ids[state], ids[target])
        return automaton.validate()
