"""Micron Automata Processor reporting-architecture model (Section 2.2).

The AP routes every reporting STE to a *report region* of up to 1024
reporting STEs.  When any STE of a region fires, the full 1024-bit report
vector plus 64-bit metadata is offloaded to the region's L1 buffer; L1
buffers spill to shared L2 buffers, which export off-chip.  The design
cannot push and pop simultaneously, so once the buffers saturate the
device stalls at the export bandwidth.

This model replays the exact per-cycle report sets from the functional
simulator: each report cycle enqueues ``1088 * (#regions hit)`` bits into
a finite queue drained continuously at ``export_bits_per_cycle``; when
the queue is full the device stalls until space exists.  The export
bandwidth is the single calibration constant, set so the model's Snort
overhead lands at the published 46x (EXPERIMENTS.md records the value).

The RAD variant (Wadden et al., HPCA'18) divides the report vector into
small chunks, offloading only chunks that contain a set bit — helping
sparse reporters and doing nothing for dense ones (Table 4's last
column).
"""

from ..errors import ArchitectureError

#: Reporting STEs per AP report region.
REGION_SIZE = 1024
#: Offload size per triggered region: 1024-bit vector + 64-bit metadata.
REGION_VECTOR_BITS = 1024
REGION_METADATA_BITS = 64
#: L1 storage per region (481 Kb) and number of regions modelled; the
#: queue capacity is their product (the paper's "11.3MB L1 + 4MB L2"
#: scaled per active region).
L1_BITS_PER_REGION = 481 * 1024
#: Export bandwidth in bits per device cycle (calibration constant).
EXPORT_BITS_PER_CYCLE = 40.0

#: RAD parameters: chunk width plus per-chunk metadata.
RAD_CHUNK_BITS = 128
RAD_CHUNK_METADATA_BITS = 64


class ApPerfResult:
    """Outcome of an AP reporting-model evaluation."""

    def __init__(self, cycles, stall_cycles, offloaded_bits, regions):
        self.cycles = cycles
        self.stall_cycles = stall_cycles
        self.offloaded_bits = offloaded_bits
        self.regions = regions

    @property
    def slowdown(self):
        """Reporting overhead over the nominal kernel time."""
        if self.cycles == 0:
            return 1.0
        return (self.cycles + self.stall_cycles) / self.cycles

    def __repr__(self):
        return "ApPerfResult(cycles=%d, stalls=%d, slowdown=%.2fx)" % (
            self.cycles, self.stall_cycles, self.slowdown,
        )


class ApReportingModel:
    """AP (or AP+RAD) reporting-overhead model.

    Parameters
    ----------
    rad:
        Use the Report Aggregator Division chunked offload instead of
        whole-region vectors.
    export_bits_per_cycle:
        Off-chip export bandwidth (see module docstring).
    """

    def __init__(self, rad=False, export_bits_per_cycle=EXPORT_BITS_PER_CYCLE,
                 scale=1.0):
        self.rad = rad
        self.export_bits_per_cycle = export_bits_per_cycle
        if scale <= 0:
            raise ArchitectureError("scale must be positive")
        #: Workload scale factor.  Our synthetic benchmarks shrink the
        #: paper's automata and inputs by ``scale``; the AP's *fixed*
        #: hardware geometry (region size, buffer capacity) must shrink
        #: with them so saturation behaviour is preserved.
        self.scale = scale

    # ------------------------------------------------------------------
    @property
    def region_size(self):
        """Reporting STEs per region, at the configured scale."""
        return max(1, round(REGION_SIZE * self.scale))

    @property
    def chunk_size(self):
        """RAD chunk width in reporting STEs, at the configured scale."""
        return max(1, round(RAD_CHUNK_BITS * self.scale))

    def assign_regions(self, report_state_ids):
        """Assign reporting states to regions round-robin.

        The AP routes report STEs across its (6 per chip) regions, so
        co-firing rules typically land in *different* regions — the
        pessimistic routing that makes sparse reporting expensive.
        """
        count = len(report_state_ids)
        n_regions = max(1, -(-count // self.region_size))
        return {
            state_id: index % n_regions
            for index, state_id in enumerate(report_state_ids)
        }

    def _chunks(self, report_state_ids):
        """RAD: chunk index of each reporting state (contiguous ranges)."""
        return {
            state_id: index // self.chunk_size
            for index, state_id in enumerate(report_state_ids)
        }

    def offload_bits_per_cycle_map(self, events, report_state_ids):
        """Bits offloaded at each report cycle, from raw report events."""
        if not report_state_ids:
            raise ArchitectureError("no reporting states")
        groups = (
            self._chunks(report_state_ids) if self.rad
            else self.assign_regions(report_state_ids)
        )
        payload = (
            RAD_CHUNK_BITS + RAD_CHUNK_METADATA_BITS if self.rad
            else REGION_VECTOR_BITS + REGION_METADATA_BITS
        )
        hits = {}
        for event in events:
            hits.setdefault(event.cycle, set()).add(groups[event.state_id])
        n_regions = max(groups.values()) + 1
        return (
            {cycle: len(groups_hit) * payload for cycle, groups_hit in hits.items()},
            n_regions,
        )

    def evaluate(self, events, report_state_ids, total_cycles):
        """Replay the report stream through the buffer queue.

        ``events`` is the functional simulator's report-event list;
        ``report_state_ids`` fixes the STE-to-region assignment order.
        Returns an :class:`ApPerfResult`.
        """
        offloads, n_regions = self.offload_bits_per_cycle_map(
            events, report_state_ids
        )
        queue_capacity = max(1.0, n_regions * L1_BITS_PER_REGION * self.scale)
        bandwidth = self.export_bits_per_cycle

        queue_bits = 0.0
        stall_cycles = 0.0
        previous = 0
        total_offloaded = 0
        for cycle in sorted(offloads):
            gap = cycle - previous
            previous = cycle
            queue_bits = max(0.0, queue_bits - bandwidth * gap)
            queue_bits += offloads[cycle]
            total_offloaded += offloads[cycle]
            if queue_bits > queue_capacity:
                overflow = queue_bits - queue_capacity
                stall_cycles += overflow / bandwidth
                queue_bits = queue_capacity
        return ApPerfResult(
            total_cycles, stall_cycles, total_offloaded, n_regions
        )
