"""Software pattern-matching baseline: DFA determinization and costs.

The paper's motivation (Section 1, Related Work): software matchers on
von-Neumann machines either run NFAs (slow: every active state touches
memory per byte) or DFAs (fast but subject to exponential state blowup —
the reason Dotstar-style rulesets defeat them).  This module makes that
argument concrete:

- :func:`determinize` — subset construction over a homogeneous NFA, with
  a state limit so blowup is observable rather than fatal;
- :class:`DfaMatcher` — table-driven matcher equivalent to the NFA
  (differential-tested), with memory-footprint accounting;
- :func:`software_cost_model` — per-byte operation counts for NFA vs DFA
  execution, the crossover the accelerators sidestep.
"""

from ..automata.ste import StartKind
from ..errors import CapacityError
from ..sim.engine import BitsetEngine


class Dfa:
    """A determinized automaton (subset construction result).

    States are integers; state 0 is the start subset.  ``accepts`` maps a
    DFA state to the frozenset of report codes of the NFA reporting
    states inside its subset.
    """

    def __init__(self, alphabet_size):
        self.alphabet_size = alphabet_size
        self.transitions = []  # list of lists: state -> symbol -> state
        self.accepts = []      # state -> frozenset of report codes

    @property
    def num_states(self):
        return len(self.transitions)

    def table_bytes(self, entry_bytes=4):
        """Memory footprint of the flat transition table."""
        return self.num_states * self.alphabet_size * entry_bytes

    def step(self, state, symbol):
        return self.transitions[state][symbol]


def determinize(automaton, max_states=100_000):
    """Subset construction for a *streaming* homogeneous NFA.

    The subset always re-includes the ALL_INPUT start states (matches can
    begin at every offset), which is the streaming semantics the
    benchmarks use.  Raises :class:`CapacityError` past ``max_states`` —
    the observable "DFA blowup" outcome.
    """
    if automaton.arity != 1:
        raise CapacityError("determinization modelled for arity-1 automata")
    alphabet = 1 << automaton.bits
    engine = BitsetEngine(automaton)  # reuse its precomputed masks
    all_input = engine._all_input_mask
    start_of_data = engine._start_of_data_mask
    succ = engine._succ_mask
    report_info = engine._report_info
    match_masks = engine._match_masks[0]

    def successors_of(subset_mask):
        enabled = all_input
        mask = subset_mask
        while mask:
            low = mask & -mask
            enabled |= succ[low.bit_length() - 1]
            mask ^= low
        return enabled

    def codes_of(subset_mask):
        codes = set()
        mask = subset_mask
        while mask:
            low = mask & -mask
            index = low.bit_length() - 1
            if index in report_info:
                codes.add(report_info[index][1])
            mask ^= low
        return frozenset(codes)

    dfa = Dfa(alphabet)
    index_of = {}   # active-mask key -> DFA state index
    enabled_of = [] # DFA state index -> enabled mask for the next symbol
    worklist = []

    def intern(key, enabled_mask, accept_codes):
        if key in index_of:
            return index_of[key]
        if len(enabled_of) >= max_states:
            raise CapacityError(
                "DFA blowup: more than %d subset states" % max_states
            )
        index = len(enabled_of)
        index_of[key] = index
        dfa.transitions.append([0] * alphabet)
        dfa.accepts.append(accept_codes)
        enabled_of.append(enabled_mask)
        worklist.append(index)
        return index

    # State 0: before any input.  Its enabled set additionally contains
    # the start-of-data states, so it gets a distinguished key.
    intern(("init",), all_input | start_of_data, frozenset())
    while worklist:
        state_index = worklist.pop()
        enabled = enabled_of[state_index]
        for symbol in range(alphabet):
            next_active = enabled & match_masks[symbol]
            target = intern(
                next_active,
                successors_of(next_active),
                codes_of(next_active),
            )
            dfa.transitions[state_index][symbol] = target
    return dfa


class DfaMatcher:
    """Table-driven execution of a determinized automaton."""

    def __init__(self, dfa):
        self.dfa = dfa

    def run(self, data):
        """Return the set of (position, report_code) pairs."""
        state = 0
        hits = set()
        for position, symbol in enumerate(data):
            state = self.dfa.step(state, symbol)
            for code in self.dfa.accepts[state]:
                hits.add((position, code))
        return hits


def software_cost_model(automaton, avg_active_states, dfa=None):
    """Per-byte memory-operation counts for software execution.

    - NFA execution touches one successor list per active state per byte
      plus one match lookup: ``1 + avg_active_states`` random accesses.
    - DFA execution is exactly one table access per byte — *if* the
      table fits (``dfa.table_bytes()``); blowup is reported as None.
    """
    result = {
        "nfa_accesses_per_byte": 1.0 + avg_active_states,
        "nfa_memory_bytes": (
            len(automaton) * (1 << automaton.bits) // 8
            + automaton.num_transitions() * 8
        ),
        "dfa_accesses_per_byte": None,
        "dfa_memory_bytes": None,
    }
    if dfa is not None:
        result["dfa_accesses_per_byte"] = 1.0
        result["dfa_memory_bytes"] = dfa.table_bytes()
    return result
