"""Throughput models for Figure 8.

Overall throughput of an in-memory automata accelerator is

    frequency x bits-per-cycle / reporting-overhead

(paper Section 7.4) — *including* the reporting denominator that prior
work dropped.  Sunder's reporting overhead is ~1.0; CA and Impala are
evaluated with an AP-style (or AP+RAD) reporting architecture bolted on,
as the paper does for an apples-to-apples comparison.
"""

from ..hwmodel.pipeline import (
    CA_PIPELINE,
    IMPALA_PIPELINE,
    SUNDER_PIPELINE,
    ap_frequency_ghz,
)


class ThroughputModel:
    """One architecture's throughput law."""

    def __init__(self, name, frequency_ghz, bits_per_cycle):
        self.name = name
        self.frequency_ghz = frequency_ghz
        self.bits_per_cycle = bits_per_cycle

    def kernel_gbps(self):
        """Reporting-free (nominal) throughput in Gbit/s."""
        return self.frequency_ghz * self.bits_per_cycle

    def effective_gbps(self, reporting_overhead):
        """Throughput after dividing by the reporting slowdown."""
        if reporting_overhead < 1.0:
            raise ValueError("reporting overhead cannot be below 1.0x")
        return self.kernel_gbps() / reporting_overhead


#: The five architectures of Figure 8 at their native rates.
SUNDER_THROUGHPUT = ThroughputModel(
    "Sunder", SUNDER_PIPELINE.operating_frequency_ghz, 16
)
IMPALA_THROUGHPUT = ThroughputModel(
    "Impala", IMPALA_PIPELINE.operating_frequency_ghz, 16
)
CA_THROUGHPUT = ThroughputModel(
    "CA", CA_PIPELINE.operating_frequency_ghz, 8
)
AP_50NM_THROUGHPUT = ThroughputModel("AP (50nm)", ap_frequency_ghz(50), 8)
AP_14NM_THROUGHPUT = ThroughputModel("AP (14nm)", ap_frequency_ghz(14), 8)

ALL_THROUGHPUT_MODELS = (
    SUNDER_THROUGHPUT,
    IMPALA_THROUGHPUT,
    CA_THROUGHPUT,
    AP_14NM_THROUGHPUT,
    AP_50NM_THROUGHPUT,
)


def figure8_rows(sunder_overhead, ap_style_overhead, rad_overhead):
    """Figure 8's bars: throughput under both reporting architectures.

    ``sunder_overhead`` is Sunder's measured average reporting overhead
    (~1.0); ``ap_style_overhead`` / ``rad_overhead`` are the averages
    measured for the AP reporting architecture with and without RAD
    (Table 4's last row — the paper's 4.69x and 2.23x).
    """
    rows = []
    sunder_gbps = SUNDER_THROUGHPUT.effective_gbps(sunder_overhead)
    for model in ALL_THROUGHPUT_MODELS:
        if model is SUNDER_THROUGHPUT:
            ap_gbps = rad_gbps = sunder_gbps
        else:
            ap_gbps = model.effective_gbps(ap_style_overhead)
            rad_gbps = model.effective_gbps(rad_overhead)
        rows.append({
            "architecture": model.name,
            "kernel_gbps": model.kernel_gbps(),
            "ap_reporting_gbps": ap_gbps,
            "rad_reporting_gbps": rad_gbps,
            "sunder_speedup_ap": sunder_gbps / ap_gbps,
            "sunder_speedup_rad": sunder_gbps / rad_gbps,
        })
    return rows
