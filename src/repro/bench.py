"""Unified benchmark envelope and perf-regression gate (``repro bench``).

The six benchmark suites (``scripts/bench_{engine,transform,runtime,
device,batch,prefilter}.py``) each write their own versioned trajectory
payload.  This module gives them one front door:

- **run** — execute any subset of suites and wrap the per-suite payloads
  (still validated by each script's own ``validate_payload``) in a
  ``repro-bench/v2`` envelope;
- **compare** — diff two envelopes on each suite's *figures of merit*
  (the scale-insensitive speedup ratios exposed by the scripts'
  ``extract_metrics``), gating on the geomean of current/baseline
  ratios with a configurable tolerance;
- **check** — run fresh suites (``--quick`` by default runs each at its
  committed baseline's scale with fewer repeats/workloads) and compare
  against the committed ``BENCH_*.json`` baselines, exiting nonzero on
  regression.

Noise handling, in order of application:

1. figures of merit are speedups (optimized path vs in-run baseline),
   so machine speed and load cancel to first order;
2. the primary gate is the **geomean** of per-metric ratios, so one
   noisy figure cannot fail the suite on its own;
3. an individual metric only counts as a regression below the
   ``metric_floor`` (default :data:`DEFAULT_METRIC_FLOOR`), and even
   then a repeat-based ``[lo, hi]`` band (``extract_bands``, recorded
   from the min/max repeat timings) can clear it: if the most
   favourable repeat still reaches the floor the miss is tagged
   ``noisy`` instead;
4. suites whose payloads were recorded at a different workload scale
   are reported ``incomparable`` and skipped rather than gated —
   speedups are scale-sensitive, so the ratio would be meaningless.
"""

import importlib.util
import json
import math
import pathlib

from .errors import BenchError

#: Envelope schema identifier (wraps the per-suite payload schemas).
SCHEMA = "repro-bench/v2"
SCHEMA_VERSION = 2

#: Every known suite, in the order run/compare/check process them.
SUITE_NAMES = ("engine", "transform", "runtime", "device", "batch",
               "prefilter", "exec", "scale")

#: Fail a suite when the geomean current/baseline ratio drops below this.
DEFAULT_TOLERANCE = 0.75
#: Flag an individual metric only below this ratio (see module docstring).
DEFAULT_METRIC_FLOOR = 0.5

_modules = {}


def repo_root():
    """The checkout root (``scripts/`` and ``BENCH_*.json`` live there)."""
    return pathlib.Path(__file__).resolve().parents[2]


def load_suite(name):
    """Import (and cache) ``scripts/bench_<name>.py`` as a module."""
    if name not in SUITE_NAMES:
        raise BenchError("unknown bench suite %r (choose from %s)"
                         % (name, ", ".join(SUITE_NAMES)))
    module = _modules.get(name)
    if module is None:
        path = repo_root() / "scripts" / ("bench_%s.py" % name)
        if not path.is_file():
            raise BenchError("bench suite script missing: %s" % path)
        spec = importlib.util.spec_from_file_location(
            "repro_bench_%s" % name, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        _modules[name] = module
    return module


def build_envelope(suites, quick=False):
    """Wrap validated per-suite payloads in a v2 envelope dict."""
    return {
        "schema": SCHEMA,
        "version": SCHEMA_VERSION,
        "quick": bool(quick),
        "suites": dict(suites),
    }


def validate_envelope(envelope):
    """Check the envelope wrapper and every wrapped payload.

    Raises :class:`BenchError`; returns the envelope unchanged.
    """
    if not isinstance(envelope, dict):
        raise BenchError("bench envelope must be an object")
    if envelope.get("schema") != SCHEMA:
        raise BenchError("bench envelope schema %r != %r"
                         % (envelope.get("schema"), SCHEMA))
    if envelope.get("version") != SCHEMA_VERSION:
        raise BenchError("bench envelope version %r != %d"
                         % (envelope.get("version"), SCHEMA_VERSION))
    suites = envelope.get("suites")
    if not isinstance(suites, dict) or not suites:
        raise BenchError("bench envelope has no suites")
    for name, payload in suites.items():
        module = load_suite(name)
        try:
            module.validate_payload(payload)
        except ValueError as error:
            raise BenchError("suite %r: %s" % (name, error)) from error
    return envelope


def run_suites(names=None, quick=False, progress=None):
    """Execute the named suites; returns a validated v2 envelope.

    ``quick`` applies each script's ``QUICK_PARAMS`` (same scale as the
    committed baseline, fewer repeats/workloads).  ``progress`` is an
    optional callable fed one status line per suite.
    """
    payloads = {}
    for name in names or SUITE_NAMES:
        module = load_suite(name)
        params = dict(getattr(module, "QUICK_PARAMS", {})) if quick else {}
        if progress is not None:
            progress("running bench suite %r%s ..."
                     % (name, " (quick)" if quick else ""))
        payload = module.run_suite(**params)
        module.validate_payload(payload)
        payloads[name] = payload
    return build_envelope(payloads, quick=quick)


def load_envelope(path):
    """Read an envelope (or a bare per-suite payload) from a JSON file.

    A single-suite ``BENCH_*.json`` payload is wrapped on the fly so
    ``compare`` accepts both shapes.
    """
    path = pathlib.Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise BenchError("cannot read bench file %s: %s"
                         % (path, error)) from error
    if isinstance(document, dict) and document.get("schema") == SCHEMA:
        return validate_envelope(document)
    schema = document.get("schema", "") if isinstance(document, dict) else ""
    for name in SUITE_NAMES:
        if schema == getattr(load_suite(name), "SCHEMA", None):
            return validate_envelope(build_envelope({name: document}))
    raise BenchError("%s is neither a %s envelope nor a known suite payload"
                     % (path, SCHEMA))


def load_baseline(root=None, names=None):
    """Assemble the committed ``BENCH_*.json`` files into an envelope.

    ``root`` defaults to the checkout root.  Suites without a committed
    baseline are simply absent (compare reports them as skipped).
    """
    root = pathlib.Path(root) if root is not None else repo_root()
    if root.is_file():
        return load_envelope(root)
    payloads = {}
    for name in names or SUITE_NAMES:
        path = root / ("BENCH_%s.json" % name)
        if path.is_file():
            payloads[name] = json.loads(path.read_text(encoding="utf-8"))
    if not payloads:
        raise BenchError("no BENCH_*.json baselines found under %s" % root)
    return validate_envelope(build_envelope(payloads))


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _compare_suite(name, current, baseline, tolerance, metric_floor):
    """Comparison record for one suite present in both envelopes."""
    module = load_suite(name)
    if current.get("scale") != baseline.get("scale"):
        return {
            "status": "incomparable",
            "reason": "scale %r != baseline scale %r (speedups are "
                      "scale-sensitive)" % (current.get("scale"),
                                            baseline.get("scale")),
        }
    current_metrics = module.extract_metrics(current)
    baseline_metrics = module.extract_metrics(baseline)
    bands = getattr(module, "extract_bands", lambda payload: {})(current)
    shared = sorted(set(current_metrics) & set(baseline_metrics))
    if not shared:
        return {"status": "incomparable",
                "reason": "no shared figures of merit"}
    metrics = {}
    regressions = []
    for metric in shared:
        ratio = current_metrics[metric] / baseline_metrics[metric]
        status = "ok"
        if ratio < metric_floor:
            band = bands.get(metric)
            best_case = (band[1] / baseline_metrics[metric]
                         if band else ratio)
            if best_case >= metric_floor:
                status = "noisy"
            else:
                status = "regression"
                regressions.append(metric)
        metrics[metric] = {
            "current": current_metrics[metric],
            "baseline": baseline_metrics[metric],
            "ratio": ratio,
            "status": status,
        }
    geomean = _geomean([entry["ratio"] for entry in metrics.values()])
    passed = geomean >= tolerance and not regressions
    return {
        "status": "pass" if passed else "regression",
        "geomean_ratio": geomean,
        "metrics": metrics,
        "regressions": regressions,
    }


def compare_envelopes(current, baseline, tolerance=DEFAULT_TOLERANCE,
                      metric_floor=DEFAULT_METRIC_FLOOR):
    """Diff two envelopes; returns the comparison report dict.

    ``report["passed"]`` is the gate verdict: False when any shared
    suite regressed.  Suites present in only one envelope are listed in
    ``report["skipped"]`` and do not affect the verdict.
    """
    validate_envelope(current)
    validate_envelope(baseline)
    shared = sorted(set(current["suites"]) & set(baseline["suites"]))
    skipped = sorted(set(current["suites"]) ^ set(baseline["suites"]))
    if not shared:
        raise BenchError("the two envelopes share no suites")
    suites = {
        name: _compare_suite(name, current["suites"][name],
                             baseline["suites"][name], tolerance,
                             metric_floor)
        for name in shared
    }
    return {
        "schema": "repro-bench-compare",
        "version": 1,
        "tolerance": tolerance,
        "metric_floor": metric_floor,
        "suites": suites,
        "skipped": skipped,
        "passed": all(entry["status"] != "regression"
                      for entry in suites.values()),
    }


def render_report(report):
    """Human-readable multi-line text for one comparison report."""
    lines = []
    for name, entry in sorted(report["suites"].items()):
        if entry["status"] == "incomparable":
            lines.append("%-10s SKIP  %s" % (name, entry["reason"]))
            continue
        lines.append("%-10s %s  geomean ratio %.3f (tolerance %.2f)" % (
            name, "PASS" if entry["status"] == "pass" else "FAIL",
            entry["geomean_ratio"], report["tolerance"]))
        for metric, row in sorted(entry["metrics"].items()):
            marker = {"ok": " ", "noisy": "~", "regression": "!"}[
                row["status"]]
            lines.append("  %s %-28s %8.2f -> %8.2f  (%.3fx)%s" % (
                marker, metric, row["baseline"], row["current"],
                row["ratio"],
                "  [within noise band]" if row["status"] == "noisy" else
                "  [below metric floor %.2f]" % report["metric_floor"]
                if row["status"] == "regression" else ""))
    for name in report["skipped"]:
        lines.append("%-10s SKIP  present in only one envelope" % name)
    lines.append("bench gate: %s"
                 % ("PASS" if report["passed"] else "REGRESSION"))
    return "\n".join(lines)
