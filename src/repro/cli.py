"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compile``      compile regexes to an automaton, print a summary or dump
                 ANML/MNRL/DOT
``match``        compile regexes, stream a file (or --text) through the
                 bit-faithful Sunder device, print reports
``transform``    show the nibble/striding overhead for given regexes
``experiment``   run one paper experiment (table1..table5, figure8..10)
``workload``     generate a synthetic benchmark and print its Table-1 row
``trace``        cycle-by-cycle execution trace for debugging
``profile``      run any other command with telemetry collection on
``cache``        inspect or clear the content-addressed transform cache
``runtime``      inspect or clear the stage-graph artifact store
``bench``        run the benchmark suites into one envelope, compare
                 envelopes, or gate fresh runs against the committed
                 ``BENCH_*.json`` baselines (``run``/``compare``/``check``)

``match``, ``experiment``, and ``workload`` additionally accept
``--metrics-out metrics.json`` / ``--trace-out trace.json`` to export the
telemetry gathered during the run (see docs/observability.md).  The
workload-driven experiments accept ``--workers N`` to fan benchmark
evaluations across processes (see docs/performance.md).

The global ``--transform-cache DIR`` flag (or the
``REPRO_TRANSFORM_CACHE`` environment variable) adds an on-disk tier to
the transform cache, persisting compiled nibble/strided automata across
runs and sharing them between ``--workers`` processes.

The global ``--artifact-dir DIR`` flag (or the ``REPRO_ARTIFACT_DIR``
environment variable) does the same for the stage-graph runtime's
artifact store: generated workloads, simulation report streams, and
result rows persist across runs, so a warm directory re-renders every
table without re-executing the expensive stages.  Unless
``--transform-cache`` names its own directory, the transform cache
piggybacks on ``DIR/transforms``.

The global ``--device-fidelity {auto,literal,packed}`` flag selects the
:class:`~repro.core.device.SunderDevice` execution path for ``match``
and the device-bearing experiments (table4, figure10): ``packed`` runs
the bitmask-compiled kernel, ``literal`` the bit-level oracle (see
docs/performance.md).

The global ``--plan {auto,<json>}`` flag names the whole execution
strategy for the stage-graph experiments (table1, table4) as one
:class:`~repro.exec.ExecutionPlan` value: ``auto`` (the default) maps
the legacy ``--batch``/``--shards``/``--prefilter``/
``--hotcold-coverage``/``--device-fidelity`` flags onto a plan, an
inline JSON document pins one exactly (and then conflicts with the
legacy flags).  ``repro plan explain <patterns>`` shows the plan the
auto-planner would pick and why (see docs/architecture.md).
"""

import argparse
import os
import sys

from . import experiments, obs
from .automata import anml, mnrl
from .automata.viz import outline, to_dot
from .core import SunderConfig, SunderDevice
from .errors import ReproError
from .regex import compile_ruleset
from .runtime import store as runtime_store
from .sim import stream_for
from .sim.trace import Tracer
from .transform import cache as transform_cache
from .transform import to_rate, transform_overhead
from .workloads import BENCHMARK_NAMES, generate


def _build_ruleset(patterns):
    return compile_ruleset([(pattern, pattern) for pattern in patterns])


def cmd_compile(args):
    machine = _build_ruleset(args.patterns)
    if args.format == "summary":
        print(outline(machine, max_states=args.max_states))
    elif args.format == "anml":
        print(anml.dumps(machine))
    elif args.format == "mnrl":
        print(mnrl.dumps(machine, indent=2))
    elif args.format == "dot":
        print(to_dot(machine, max_states=args.max_states))
    return 0


def cmd_match(args):
    source = _build_ruleset(args.patterns)
    machine = to_rate(source, args.rate)
    device = SunderDevice(SunderConfig(rate_nibbles=args.rate,
                                       report_bits=args.report_bits),
                          fidelity=args.device_fidelity)
    device.configure(machine)
    if args.text is not None:
        data = args.text.encode()
    else:
        with open(args.file, "rb") as handle:
            data = handle.read()
    # Report positions are in the machine's sub-symbol units (nibbles for
    # the 4-bit machines every rate produces); derive the per-byte
    # divisor from the configured geometry instead of hardcoding it.
    positions_per_byte = 8 // machine.bits
    if args.prefilter:
        from .prefilter import build_prefilter, gated_device_run
        prefilter = build_prefilter(source)
        recorder = gated_device_run(device, machine, data, source=source,
                                    prefilter=prefilter,
                                    hotcold_coverage=args.hotcold_coverage)
        events = sorted(recorder.events, key=lambda e: e.position)
        for event in events:
            print("%d\t%s" % (event.position // positions_per_byte,
                              event.report_code))
        print("-- %d matches (prefilter: %s)" % (
            len(events),
            "gated, %d literals" % len(prefilter.literals)
            if prefilter.filterable else "bypassed, unfilterable"),
            file=sys.stderr)
        return 0
    vectors, limit = stream_for(machine, data)
    result = device.run(vectors, position_limit=limit)
    events = sorted(result.reports().events, key=lambda e: e.position)
    for event in events:
        print("%d\t%s" % (event.position // positions_per_byte,
                          event.report_code))
    print("-- %d matches, %d cycles, %.3fx reporting overhead" % (
        len(events), result.cycles, result.slowdown), file=sys.stderr)
    return 0


def cmd_transform(args):
    machine = _build_ruleset(args.patterns)
    overhead = transform_overhead(machine)
    print("base: %(states)d states, %(transitions)d transitions"
          % overhead["base"])
    for rate in (1, 2, 4):
        row = overhead[rate]
        print("%d nibble(s): %5d states (%.2fx)  %5d transitions (%.2fx)" % (
            rate, row["states"], row["state_ratio"],
            row["transitions"], row["transition_ratio"],
        ))
    return 0


#: Experiments whose entry points take workload scale/seed parameters.
_SCALED_EXPERIMENTS = ("table1", "table3", "table4", "figure8", "scorecard")
#: Experiments whose entry points fan out through ParallelRunner.
_PARALLEL_EXPERIMENTS = ("table1", "table3", "table4",
                         "figure8", "figure9", "figure10", "scorecard")
#: Experiments whose stage graphs carry the device-fidelity knob.
_FIDELITY_EXPERIMENTS = ("table4", "figure10")
#: Experiments whose simulate stages accept --batch/--shards.
_BATCH_EXPERIMENTS = ("table1", "table4")
#: Experiments whose simulate stages accept --prefilter/--hotcold-coverage.
_PREFILTER_EXPERIMENTS = ("table1", "table4")
#: Experiments whose entry points take one ExecutionPlan value.
_PLAN_EXPERIMENTS = ("table1", "table4")


def _experiment_plan(args):
    """One :class:`~repro.exec.ExecutionPlan` from the strategy flags.

    ``--plan auto`` (the default) maps the legacy knobs onto a plan via
    :meth:`ExecutionPlan.from_flags`, so contradictory flags fail with
    the plan-level messages; an explicit ``--plan <json>`` pins the plan
    exactly and conflicts with any non-default legacy knob.
    """
    from .exec import ExecutionPlan, resolve_plan
    try:
        explicit = resolve_plan(args.plan)
    except ValueError as error:
        raise SystemExit("--plan: %s" % error)
    legacy = (args.batch != 1 or args.shards != 1 or args.prefilter
              or args.hotcold_coverage is not None
              or args.device_fidelity != "auto")
    if explicit is not None:
        if legacy:
            raise SystemExit(
                "--plan conflicts with --batch/--shards/--prefilter/"
                "--hotcold-coverage/--device-fidelity; encode the "
                "strategy in the plan document instead")
        return explicit
    return ExecutionPlan.from_flags(
        batch=args.batch, shards=args.shards, prefilter=args.prefilter,
        hotcold=args.hotcold_coverage, fidelity=args.device_fidelity)


def cmd_experiment(args):
    module = experiments.ALL_EXPERIMENTS[args.name]
    kwargs = {}
    if args.name in _SCALED_EXPERIMENTS:
        kwargs["scale"] = args.scale
        kwargs["seed"] = args.seed
    if args.name in _PARALLEL_EXPERIMENTS:
        kwargs["workers"] = args.workers
    if args.name in _PLAN_EXPERIMENTS:
        # The whole strategy surface (batch/shards/prefilter/hotcold/
        # fidelity) rides on one plan value for these experiments.
        kwargs["plan"] = _experiment_plan(args)
        module.main(**kwargs)
        return 0
    if args.plan != "auto":
        raise SystemExit(
            "--plan applies only to: %s" % ", ".join(_PLAN_EXPERIMENTS))
    if args.name in _FIDELITY_EXPERIMENTS:
        kwargs["fidelity"] = args.device_fidelity
    if args.batch != 1 or args.shards != 1:
        raise SystemExit(
            "--batch/--shards apply only to: %s"
            % ", ".join(_BATCH_EXPERIMENTS))
    if args.prefilter or args.hotcold_coverage is not None:
        raise SystemExit(
            "--prefilter/--hotcold-coverage apply only to: %s"
            % ", ".join(_PREFILTER_EXPERIMENTS))
    module.main(**kwargs)
    return 0


def cmd_workload(args):
    instance = generate(args.name, scale=args.scale, seed=args.seed)
    row = instance.measured_behavior()
    row.pop("recorder", None)
    width = max(len(key) for key in row)
    for key, value in row.items():
        print("%-*s  %s" % (width, key, value))
    return 0


def cmd_plan(args):
    if args.patterns and args.patterns[0] == "explain":
        return _plan_explain(args)
    machine = _build_ruleset(args.patterns)
    from .core.capacity import recommend_rate
    best, plans = recommend_rate(machine, args.clusters)
    print("%-6s %-8s %-9s %-7s %-14s %s" % (
        "rate", "states", "clusters", "rounds", "effective Gbps", ""))
    for rate in sorted(plans):
        plan = plans[rate]
        marker = "  <- recommended" if plan is best else ""
        print("%-6d %-8d %-9d %-7d %-14.1f%s" % (
            plan.rate, plan.states, plan.clusters, plan.rounds,
            plan.effective_gbps, marker))
    return 0


def _plan_explain(args):
    """``repro plan explain <patterns>``: the auto-selected execution
    plan for a ruleset plus one reason line per decision."""
    patterns = args.patterns[1:]
    if not patterns:
        print("error: plan explain requires at least one pattern",
              file=sys.stderr)
        return 2
    from .exec import Planner
    machine = _build_ruleset(patterns)
    planner = Planner(target=args.target)
    plan, choices = planner.explain(machine, stream_count=args.streams,
                                    stream_cycles=args.stream_bytes)
    print("plan: %s" % plan.dumps())
    for choice in choices:
        print("  %-12s %-10s %s" % (choice["choice"],
                                    str(choice["value"]), choice["reason"]))
    return 0


def cmd_compare(args):
    """Sunder vs AP vs AP+RAD reporting overhead on user patterns+input."""
    from .baselines import ApReportingModel
    from .core import ReportingPerfModel, place, pu_fill_cycles_from_events
    from .sim import BitsetEngine, ReportRecorder

    machine = _build_ruleset(args.patterns)
    if args.text is not None:
        data = args.text.encode()
    else:
        with open(args.file, "rb") as handle:
            data = handle.read()

    recorder = ReportRecorder(keep_events=True)
    BitsetEngine(machine).run(list(data), recorder)
    report_ids = [s.id for s in machine.report_states()]
    scale = max(1e-4, len(data) / 1_000_000.0)
    ap = ApReportingModel(scale=scale).evaluate(
        recorder.events, report_ids, len(data))
    rad = ApReportingModel(rad=True, scale=scale).evaluate(
        recorder.events, report_ids, len(data))

    strided = to_rate(machine, 4)
    vectors, limit = stream_for(strided, data)
    strided_recorder = ReportRecorder(keep_events=True, position_limit=limit)
    BitsetEngine(strided).run(vectors, strided_recorder)
    config = SunderConfig(rate_nibbles=4, report_bits=args.report_bits)
    placement = place(strided, config)
    fills = pu_fill_cycles_from_events(strided_recorder.events, placement)
    sunder = ReportingPerfModel(config).evaluate(
        fills, len(vectors), capacity_scale=scale)

    print("input: %d bytes, %d reports (%.2f%% of cycles)" % (
        len(data), recorder.total_reports,
        100.0 * recorder.report_cycles / max(1, len(data))))
    print("reporting overhead:")
    print("  Sunder (16-bit)  %6.2fx  (%d flushes)" % (
        sunder.slowdown, sunder.flushes))
    print("  AP (8-bit)       %6.2fx" % ap.slowdown)
    print("  AP+RAD (8-bit)   %6.2fx" % rad.slowdown)
    return 0


def cmd_cache(args):
    """Inspect or clear the content-addressed transform cache."""
    cache = transform_cache.get_cache()
    if args.action == "clear":
        removed = cache.clear()
        print("removed %d cached entries" % removed)
        return 0
    _print_store_info(cache.info())
    return 0


def _print_store_info(info):
    stats = info.pop("stats")
    width = max(len(key) for key in info)
    for key, value in info.items():
        print("%-*s  %s" % (width, key,
                            value if value is not None else "(memory only)"))
    print("%-*s  %s" % (width, "stats", ", ".join(
        "%s=%d" % (key, stats[key]) for key in sorted(stats))))


def cmd_runtime(args):
    """Inspect or clear the stage-graph artifact store."""
    store = runtime_store.get_store()
    if args.action == "clear":
        removed = store.clear()
        print("removed %d cached artifacts" % removed)
        return 0
    _print_store_info(store.info())
    return 0


def cmd_bench(args):
    """Run/compare benchmark envelopes; gate against committed baselines."""
    import json as _json

    from . import bench

    if args.action == "run":
        envelope = bench.run_suites(args.suites, quick=args.quick,
                                    progress=lambda line: print(
                                        line, file=sys.stderr))
        with open(args.out, "w", encoding="utf-8") as handle:
            _json.dump(envelope, handle, indent=2)
            handle.write("\n")
        for name, payload in sorted(envelope["suites"].items()):
            metrics = bench.load_suite(name).extract_metrics(payload)
            for metric, value in sorted(metrics.items()):
                print("%-10s %-28s %8.2f" % (name, metric, value))
        print("wrote %s" % args.out)
        return 0

    if args.action == "compare":
        current = bench.load_envelope(args.current)
        baseline = bench.load_baseline(args.baseline)
        report = bench.compare_envelopes(current, baseline,
                                         tolerance=args.tolerance,
                                         metric_floor=args.metric_floor)
        print(bench.render_report(report))
        return 0 if report["passed"] else 1

    # check: fresh runs vs the committed BENCH_*.json baselines.  Only
    # suites with a committed baseline are run — a fresh measurement
    # with nothing to compare against cannot gate anything.
    baseline = bench.load_baseline(args.baseline, names=args.suites)
    names = sorted(baseline["suites"])
    current = bench.run_suites(names, quick=args.quick,
                               progress=lambda line: print(
                                   line, file=sys.stderr))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            _json.dump(current, handle, indent=2)
            handle.write("\n")
    report = bench.compare_envelopes(current, baseline,
                                     tolerance=args.tolerance,
                                     metric_floor=args.metric_floor)
    print(bench.render_report(report))
    return 0 if report["passed"] else 1


def cmd_trace(args):
    machine = _build_ruleset(args.patterns)
    tracer = Tracer(machine)
    tracer.run(list(args.text.encode()))
    print(tracer.render(max_cycles=args.max_cycles))
    return 0


def _run_observed(func, args, metrics_out, trace_out, summarize):
    """Run one command with a telemetry collector attached.

    Metrics go to a fresh registry (so the snapshot covers exactly this
    run) and spans to a fresh trace collector.  ``summarize`` prints the
    text exposition to stderr when no --metrics-out was given (the
    ``profile`` wrapper's default behaviour).
    """
    registry = obs.MetricsRegistry()
    trace = obs.TraceCollector()
    with obs.collecting(registry=registry, trace=trace):
        with obs.trace_span("cli.%s" % args.command):
            code = func(args)
    if metrics_out:
        with open(metrics_out, "w", encoding="utf-8") as handle:
            handle.write(registry.render_json())
            handle.write("\n")
    if trace_out:
        trace.write_chrome_trace(trace_out)
    if summarize:
        if not metrics_out:
            print(registry.render_text(), file=sys.stderr)
        print("profile: %d metrics, %d spans%s%s" % (
            len(registry), len(trace.finished()),
            ", metrics -> %s" % metrics_out if metrics_out else "",
            ", trace -> %s" % trace_out if trace_out else "",
        ), file=sys.stderr)
    return code


#: Root-parser flags (and their defaults) that ``profile`` forwards to
#: the wrapped command: the wrapped argv starts at the subcommand, so
#: flags given before ``profile`` only exist on the outer namespace.
_ROOT_FLAG_DEFAULTS = {
    "transform_cache": None,
    "artifact_dir": None,
    "device_fidelity": "auto",
    "prefilter": False,
    "hotcold_coverage": None,
    "plan": "auto",
}


def cmd_profile(args):
    """Re-parse the wrapped command and run it under a collector."""
    argv = list(args.argv)
    if argv and argv[0] == "--":
        argv = argv[1:]
    if not argv:
        print("error: profile requires a command to run, e.g. "
              "'repro profile experiment table4'", file=sys.stderr)
        return 2
    inner = build_parser().parse_args(argv)
    if inner.func is cmd_profile:
        print("error: profile cannot wrap itself", file=sys.stderr)
        return 2
    for name, default in _ROOT_FLAG_DEFAULTS.items():
        if getattr(inner, name) == default:
            setattr(inner, name, getattr(args, name))
    _apply_store_flags(inner)
    return _run_observed(
        inner.func, inner,
        getattr(inner, "metrics_out", None),
        getattr(inner, "trace_out", None),
        summarize=True,
    )


def _apply_store_flags(args):
    """Honor ``--transform-cache`` / ``--artifact-dir`` by reconfiguring
    the process-wide stores.

    With ``--artifact-dir`` alone, the transform cache defaults to a
    ``transforms/`` subdirectory so one flag persists every artifact
    kind; an explicit ``--transform-cache`` wins.
    """
    cache_directory = getattr(args, "transform_cache", None)
    artifact_directory = getattr(args, "artifact_dir", None)
    if artifact_directory:
        runtime_store.configure(directory=artifact_directory)
        if not cache_directory:
            cache_directory = os.path.join(artifact_directory, "transforms")
    if cache_directory:
        transform_cache.configure(directory=cache_directory)


def _add_observability_flags(parser):
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="collect metrics and write a JSON snapshot")
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="collect spans and write a Chrome trace file")


def _shard_count(text):
    """argparse type for ``--shards``: a positive int or ``auto``."""
    if text == "auto":
        return text
    return int(text)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sunder (MICRO'21) reproduction toolkit",
    )
    parser.add_argument(
        "--transform-cache", metavar="DIR", default=None,
        help="persist compiled transform artifacts in DIR (also: "
             "REPRO_TRANSFORM_CACHE)")
    parser.add_argument(
        "--artifact-dir", metavar="DIR", default=None,
        help="persist stage-graph artifacts (workloads, simulation "
             "runs, result rows) in DIR (also: REPRO_ARTIFACT_DIR); "
             "the transform cache defaults to DIR/transforms")
    parser.add_argument(
        "--device-fidelity", default="auto",
        choices=["auto", "literal", "packed"],
        help="SunderDevice execution path: 'packed' compiles the "
             "programmed subarrays into integer bitmasks (fast), "
             "'literal' keeps the bit-level oracle; 'auto' picks packed")
    parser.add_argument(
        "--prefilter", action="store_true",
        help="gate execution behind the two-stage literal prefilter "
             "(DFC-style direct filter; bit-exact reports, unfilterable "
             "rulesets bypass — see docs/performance.md)")
    parser.add_argument(
        "--hotcold-coverage", type=float, default=None, metavar="FRAC",
        help="with --prefilter, also record the hot/cold state split at "
             "the given activity coverage (e.g. 0.9)")
    parser.add_argument(
        "--plan", default="auto", metavar="PLAN",
        help="execution plan for the stage-graph experiments: 'auto' "
             "maps the legacy strategy flags onto one, or an inline "
             "repro-exec-plan JSON document (table1/table4 only; see "
             "'repro plan explain')")
    commands = parser.add_subparsers(dest="command", required=True)

    compile_parser = commands.add_parser(
        "compile", help="compile regexes to an automaton")
    compile_parser.add_argument("patterns", nargs="+")
    compile_parser.add_argument("--format", default="summary",
                                choices=["summary", "anml", "mnrl", "dot"])
    compile_parser.add_argument("--max-states", type=int, default=200)
    compile_parser.set_defaults(func=cmd_compile)

    match_parser = commands.add_parser(
        "match", help="run patterns over input on the Sunder device")
    match_parser.add_argument("patterns", nargs="+")
    source = match_parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--file")
    source.add_argument("--text")
    match_parser.add_argument("--rate", type=int, default=4,
                              choices=[1, 2, 4])
    match_parser.add_argument("--report-bits", type=int, default=16)
    _add_observability_flags(match_parser)
    match_parser.set_defaults(func=cmd_match)

    transform_parser = commands.add_parser(
        "transform", help="show nibble/striding overhead")
    transform_parser.add_argument("patterns", nargs="+")
    transform_parser.set_defaults(func=cmd_transform)

    experiment_parser = commands.add_parser(
        "experiment", help="run one paper experiment")
    experiment_parser.add_argument(
        "name", choices=sorted(experiments.ALL_EXPERIMENTS))
    experiment_parser.add_argument("--scale", type=float, default=0.01)
    experiment_parser.add_argument("--seed", type=int, default=0)
    experiment_parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="fan benchmark evaluations across N processes "
             "(0 = all cores; default: serial)")
    experiment_parser.add_argument(
        "--batch", type=int, default=1, metavar="N",
        help="run the simulate stages as N interleaved lanes of one "
             "engine pass (bit-exact; table1/table4 only)")
    experiment_parser.add_argument(
        "--shards", type=_shard_count, default=1, metavar="K",
        help="split each simulate stage's stream into K overlap-replayed "
             "blocks, or 'auto' to size by stream length with a serial "
             "fallback below the threshold (bit-exact; table1/table4 only)")
    _add_observability_flags(experiment_parser)
    experiment_parser.set_defaults(func=cmd_experiment)

    workload_parser = commands.add_parser(
        "workload", help="generate a benchmark and print its statistics")
    workload_parser.add_argument("name", choices=list(BENCHMARK_NAMES))
    workload_parser.add_argument("--scale", type=float, default=0.01)
    workload_parser.add_argument("--seed", type=int, default=0)
    _add_observability_flags(workload_parser)
    workload_parser.set_defaults(func=cmd_workload)

    plan_parser = commands.add_parser(
        "plan", help="recommend a processing rate for a ruleset, or "
                     "'plan explain <patterns>' for the auto-selected "
                     "execution plan")
    plan_parser.add_argument("patterns", nargs="+")
    plan_parser.add_argument("--clusters", type=int, default=8)
    plan_parser.add_argument(
        "--streams", type=int, default=1, metavar="N",
        help="(explain) plan for N independent input streams")
    plan_parser.add_argument(
        "--stream-bytes", type=int, default=0, metavar="N",
        help="(explain) plan for streams of N bytes (drives the "
             "auto-shard threshold)")
    plan_parser.add_argument(
        "--target", default="engine", choices=["engine", "device"],
        help="(explain) plan for the functional engine or the device")
    plan_parser.set_defaults(func=cmd_plan)

    compare_parser = commands.add_parser(
        "compare", help="Sunder vs AP reporting overhead on your input")
    compare_parser.add_argument("patterns", nargs="+")
    compare_source = compare_parser.add_mutually_exclusive_group(required=True)
    compare_source.add_argument("--file")
    compare_source.add_argument("--text")
    compare_parser.add_argument("--report-bits", type=int, default=16)
    compare_parser.set_defaults(func=cmd_compare)

    trace_parser = commands.add_parser(
        "trace", help="cycle-by-cycle execution trace")
    trace_parser.add_argument("patterns", nargs="+")
    trace_parser.add_argument("--text", required=True)
    trace_parser.add_argument("--max-cycles", type=int, default=100)
    trace_parser.set_defaults(func=cmd_trace)

    cache_parser = commands.add_parser(
        "cache", help="inspect or clear the transform cache")
    cache_parser.add_argument("action", choices=["info", "clear"])
    cache_parser.set_defaults(func=cmd_cache)

    runtime_parser = commands.add_parser(
        "runtime", help="inspect or clear the stage-graph artifact store")
    runtime_parser.add_argument("action", choices=["info", "clear"])
    runtime_parser.set_defaults(func=cmd_runtime)

    bench_parser = commands.add_parser(
        "bench", help="benchmark envelopes and the perf-regression gate")
    bench_actions = bench_parser.add_subparsers(dest="action", required=True)
    from .bench import (DEFAULT_METRIC_FLOOR, DEFAULT_TOLERANCE,
                        SUITE_NAMES)

    def _bench_common(sub, with_thresholds):
        sub.add_argument("--suites", nargs="+", choices=SUITE_NAMES,
                         default=None,
                         help="suites to include (default: all)")
        if with_thresholds:
            sub.add_argument(
                "--tolerance", type=float, default=DEFAULT_TOLERANCE,
                help="fail a suite when the geomean current/baseline "
                     "speedup ratio drops below this (default %.2f)"
                     % DEFAULT_TOLERANCE)
            sub.add_argument(
                "--metric-floor", type=float, default=DEFAULT_METRIC_FLOOR,
                help="flag an individual figure of merit only below this "
                     "ratio (default %.2f)" % DEFAULT_METRIC_FLOOR)

    bench_run = bench_actions.add_parser(
        "run", help="execute suites into one repro-bench/v2 envelope")
    _bench_common(bench_run, with_thresholds=False)
    bench_run.add_argument("--quick", action="store_true",
                           help="each suite's QUICK_PARAMS: baseline "
                                "scale, fewer repeats/workloads")
    bench_run.add_argument("--out", default="BENCH_envelope.json")
    bench_run.set_defaults(func=cmd_bench)

    bench_compare = bench_actions.add_parser(
        "compare", help="diff an envelope against a baseline")
    bench_compare.add_argument("current",
                               help="repro-bench/v2 envelope (or a single "
                                    "BENCH_*.json payload) to evaluate")
    bench_compare.add_argument("--baseline", default=None,
                               help="baseline envelope file or directory "
                                    "of BENCH_*.json files (default: the "
                                    "checkout root)")
    _bench_common(bench_compare, with_thresholds=True)
    bench_compare.set_defaults(func=cmd_bench)

    bench_check = bench_actions.add_parser(
        "check", help="run fresh suites and gate against committed "
                      "BENCH_*.json baselines (nonzero exit on regression)")
    _bench_common(bench_check, with_thresholds=True)
    bench_check.add_argument("--quick", action="store_true",
                             help="quick measurement parameters (see run)")
    bench_check.add_argument("--baseline", default=None,
                             help="baseline directory or envelope file "
                                  "(default: the checkout root)")
    bench_check.add_argument("--out", default=None,
                             help="also write the fresh envelope here")
    bench_check.set_defaults(func=cmd_bench)

    profile_parser = commands.add_parser(
        "profile",
        help="run another command with metrics + span collection enabled")
    profile_parser.add_argument(
        "argv", nargs=argparse.REMAINDER, metavar="command",
        help="the command to profile, with its own arguments")
    profile_parser.set_defaults(func=cmd_profile)

    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        _apply_store_flags(args)
        metrics_out = getattr(args, "metrics_out", None)
        trace_out = getattr(args, "trace_out", None)
        if metrics_out or trace_out:
            return _run_observed(args.func, args, metrics_out, trace_out,
                                 summarize=False)
        return args.func(args)
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output was piped into a consumer (head, less) that exited early.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
