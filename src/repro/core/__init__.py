"""The Sunder architecture model — the paper's primary contribution."""

from .capacity import RatePlan, plan_rates, recommend_rate
from .config import (
    PUS_PER_CLUSTER,
    ROWS_PER_NIBBLE,
    SUBARRAY_COLS,
    SUBARRAY_ROWS,
    SunderConfig,
)
from .device import HostArchive, RunResult, SunderDevice
from .host import AddressMap, HostInterface
from .interconnect import CrossbarSwitch, GlobalSwitch
from .mapping import Placement, StateSlot, place
from .match_array import MatchArray
from .packed import (
    DEFAULT_DEVICE_STEP_CACHE,
    FIDELITIES,
    PackedKernel,
    pack_bits,
    resolve_fidelity,
    unpack_bits,
)
from .perfmodel import (
    HOST_BITS_PER_CYCLE,
    PerfResult,
    ReportingPerfModel,
    pu_fill_cycles_from_events,
    sensitivity_slowdown,
)
from .pu import ProcessingUnit
from .reconfigure import (
    MultiRoundResult,
    configuration_write_cycles,
    partition_rounds,
    run_multi_round,
)
from .reporting import ReportEntry, ReportingRegion
from .slice_hash import SliceHash
from .snapshot import load_device, save_device
from .subarray import MAX_ACTIVATED_ROWS, SramSubarray

__all__ = [
    "AddressMap",
    "CrossbarSwitch",
    "DEFAULT_DEVICE_STEP_CACHE",
    "FIDELITIES",
    "GlobalSwitch",
    "PackedKernel",
    "pack_bits",
    "resolve_fidelity",
    "unpack_bits",
    "HOST_BITS_PER_CYCLE",
    "HostArchive",
    "HostInterface",
    "MAX_ACTIVATED_ROWS",
    "MatchArray",
    "MultiRoundResult",
    "configuration_write_cycles",
    "partition_rounds",
    "run_multi_round",
    "PUS_PER_CLUSTER",
    "PerfResult",
    "Placement",
    "ProcessingUnit",
    "RatePlan",
    "plan_rates",
    "recommend_rate",
    "ROWS_PER_NIBBLE",
    "ReportEntry",
    "ReportingPerfModel",
    "ReportingRegion",
    "RunResult",
    "SUBARRAY_COLS",
    "SUBARRAY_ROWS",
    "SliceHash",
    "SramSubarray",
    "StateSlot",
    "SunderConfig",
    "SunderDevice",
    "pu_fill_cycles_from_events",
    "place",
    "load_device",
    "save_device",
    "sensitivity_slowdown",
]
