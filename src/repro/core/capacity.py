"""Deployment planning: from a ruleset to a device configuration.

Ties the whole library together for a downstream user: given an 8-bit
automaton and a device size, pick a processing rate, predict state
overheads, clusters, reconfiguration rounds, throughput, and reporting
headroom — the sizing exercise Section 5.1.1 describes qualitatively
("the processing rate can be determined by the user based on the
application size and requested throughput").
"""

from ..errors import CapacityError
from ..hwmodel.pipeline import SUNDER_PIPELINE
from ..transform.pipeline import SUPPORTED_RATES, to_rate
from .config import PUS_PER_CLUSTER, SunderConfig
from .mapping import place
from .reconfigure import partition_rounds


class RatePlan:
    """Deployment consequences of one processing rate."""

    def __init__(self, rate, states, clusters, rounds, gbps_nominal,
                 report_rows, report_capacity):
        self.rate = rate
        self.states = states
        self.clusters = clusters
        self.rounds = rounds
        self.gbps_nominal = gbps_nominal
        self.report_rows = report_rows
        self.report_capacity = report_capacity

    @property
    def effective_gbps(self):
        """Nominal throughput divided by the round count (input re-runs)."""
        return self.gbps_nominal / self.rounds

    def as_dict(self):
        return {
            "rate": self.rate,
            "states": self.states,
            "clusters": self.clusters,
            "rounds": self.rounds,
            "gbps_nominal": self.gbps_nominal,
            "effective_gbps": self.effective_gbps,
            "report_rows": self.report_rows,
            "report_capacity": self.report_capacity,
        }

    def __repr__(self):
        return ("RatePlan(rate=%d, states=%d, clusters=%d, rounds=%d, "
                "%.1f Gbps effective)" % (
                    self.rate, self.states, self.clusters, self.rounds,
                    self.effective_gbps))


def plan_rates(automaton, device_clusters, config_kwargs=None,
               rates=SUPPORTED_RATES):
    """Evaluate every processing rate for an 8-bit automaton.

    Returns ``{rate: RatePlan}``.  Rates whose transformed automaton has
    a component too large even for a dedicated cluster are omitted.
    """
    plans = {}
    for rate in rates:
        kwargs = dict(config_kwargs or {})
        kwargs["rate_nibbles"] = rate
        config = SunderConfig(**kwargs)
        machine = to_rate(automaton, rate)
        try:
            placement = place(machine, config)
        except CapacityError:
            continue
        try:
            rounds = partition_rounds(machine, config, device_clusters)
        except CapacityError:
            continue
        plans[rate] = RatePlan(
            rate=rate,
            states=len(machine),
            clusters=placement.clusters_used,
            rounds=len(rounds),
            gbps_nominal=SUNDER_PIPELINE.operating_frequency_ghz * 4 * rate,
            report_rows=config.report_rows,
            report_capacity=config.report_capacity,
        )
    if not plans:
        raise CapacityError("no processing rate fits this automaton")
    return plans


def recommend_rate(automaton, device_clusters, config_kwargs=None):
    """Pick the rate with the highest effective throughput.

    Ties break toward the lower rate (more reporting rows, fewer states)
    — the paper's guidance: large applications favour lower rates to
    avoid extra-state overhead and reconfiguration rounds.
    """
    plans = plan_rates(automaton, device_clusters,
                       config_kwargs=config_kwargs)
    best = max(
        plans.values(),
        key=lambda plan: (plan.effective_gbps, -plan.rate),
    )
    return best, plans
