"""Sunder device configuration (paper Sections 5 & 7.1 parameters)."""

import math

from ..errors import ArchitectureError

#: One-hot rows consumed per nibble position.
ROWS_PER_NIBBLE = 16
#: Subarray geometry (matches a Xeon L3 slice subarray).
SUBARRAY_ROWS = 256
SUBARRAY_COLS = 256
#: Processing units ganged by one global switch (up to 1024 states).
PUS_PER_CLUSTER = 4


class SunderConfig:
    """All knobs of one Sunder device.

    Parameters mirror the paper's "parameter selection" paragraph:
    ``report_bits`` (m) is 12 because on average 3.9% of 256 states are
    reporting states; ``metadata_bits`` (n) is 20, enough to count the
    cycles of a 1MB input.

    Performance-model knobs (documented in EXPERIMENTS.md):

    - ``flush_rows_per_cycle``: rows the host drains per stalled cycle
      during a stop-and-flush (wide on-chip path, Section 6's ``clflush``
      route).
    - ``fifo_drain_rows_per_cycle``: Port-1 background drain rate of the
      FIFO strategy (fractional: 0.25 means one row every 4 cycles).
    - ``summarize_batch_rows``: rows NORed per multi-row activation when
      summarizing (16 in the paper), each batch stalling matching
      ``summarize_stall_cycles``.
    """

    def __init__(
        self,
        rate_nibbles=4,
        report_bits=12,
        metadata_bits=20,
        fifo=True,
        flush_rows_per_cycle=64,
        fifo_drain_rows_per_cycle=0.25,
        summarize_batch_rows=16,
        summarize_stall_cycles=2,
        subarray_rows=SUBARRAY_ROWS,
        subarray_cols=SUBARRAY_COLS,
    ):
        if rate_nibbles not in (1, 2, 4):
            raise ArchitectureError(
                "processing rate must be 1, 2, or 4 nibbles, got %r" % rate_nibbles
            )
        if report_bits < 1 or report_bits > subarray_cols:
            raise ArchitectureError("report_bits out of range")
        if metadata_bits < 1:
            raise ArchitectureError("metadata_bits must be positive")
        if report_bits + metadata_bits > subarray_cols:
            raise ArchitectureError(
                "a report entry (%d bits) does not fit in a %d-bit row"
                % (report_bits + metadata_bits, subarray_cols)
            )
        self.rate_nibbles = rate_nibbles
        self.report_bits = report_bits
        self.metadata_bits = metadata_bits
        self.fifo = fifo
        self.flush_rows_per_cycle = flush_rows_per_cycle
        self.fifo_drain_rows_per_cycle = fifo_drain_rows_per_cycle
        self.summarize_batch_rows = summarize_batch_rows
        self.summarize_stall_cycles = summarize_stall_cycles
        self.subarray_rows = subarray_rows
        self.subarray_cols = subarray_cols

    # ------------------------------------------------------------------
    @property
    def bits_per_cycle(self):
        """Input bits consumed per cycle (4, 8, or 16)."""
        return 4 * self.rate_nibbles

    @property
    def matching_rows(self):
        """Rows reserved for one-hot nibble encodings (16 per nibble)."""
        return ROWS_PER_NIBBLE * self.rate_nibbles

    @property
    def report_rows(self):
        """Rows left over for the reporting region."""
        return self.subarray_rows - self.matching_rows

    @property
    def entry_bits(self):
        """Bits of one report entry (report data + cycle metadata)."""
        return self.report_bits + self.metadata_bits

    @property
    def entries_per_row(self):
        """Report entries packed into one 256-bit row."""
        return self.subarray_cols // self.entry_bits

    @property
    def report_capacity(self):
        """Total report entries one subarray can hold before flushing."""
        return self.report_rows * self.entries_per_row

    def local_counter_bits(self):
        """Equation (1): bits of the per-subarray write-pointer counter."""
        row_bits = math.ceil(math.log2(self.report_rows))
        slot_bits = math.ceil(math.log2(self.subarray_cols / self.entry_bits))
        return row_bits + slot_bits

    def __repr__(self):
        return (
            "SunderConfig(rate=%d nibbles, m=%d, n=%d, fifo=%s, "
            "capacity=%d entries)" % (
                self.rate_nibbles, self.report_bits, self.metadata_bits,
                self.fifo, self.report_capacity,
            )
        )
