"""The Sunder device: clusters of processing units executing an automaton.

This is the hardware-faithful execution path — every match goes through a
bit-level subarray model, every report is physically written into (and
later decoded back out of) the reporting rows.  It is differential-tested
against :class:`~repro.sim.engine.BitsetEngine`, which is the point: the
architecture provably computes the same language as the abstract NFA.

Two execution fidelities share this interface (the ``fidelity`` knob):

- ``"literal"`` — the original bit-level loop, kept as the differential
  oracle: numpy wired-NORs, crossbar row activations, the works.
- ``"packed"`` (what ``"auto"`` selects) — the programmed subarrays are
  compiled once into integer bitmasks (:mod:`repro.core.packed`) and
  cycles execute as int arithmetic with an LRU step cache and idle-PU
  skipping.  Reporting stays literal; matching-side access counters are
  derived analytically, so results, statistics, and energy are
  bit-identical across fidelities.

For large parameter sweeps use :mod:`repro.core.perfmodel`, which
reproduces only the timing behaviour from a report profile.
"""

from time import perf_counter

from ..errors import ArchitectureError
from ..obs import OBS, trace_span
from ..sim.reports import ReportRecorder
from .config import PUS_PER_CLUSTER, SunderConfig
from .interconnect import GlobalSwitch
from .mapping import place
from .packed import DEFAULT_DEVICE_STEP_CACHE, PackedKernel, resolve_fidelity
from .pu import ProcessingUnit


class HostArchive:
    """Host-side store of report entries shipped off a PU's region."""

    def __init__(self):
        self.batches = []

    def __call__(self, entries):
        self.batches.append(entries)

    def entries(self):
        """All received entries in arrival order."""
        return [entry for batch in self.batches for entry in batch]


class _Cluster:
    """Four PUs plus their global switch."""

    def __init__(self, config):
        self.pus = []
        self.archives = []
        for _ in range(PUS_PER_CLUSTER):
            archive = HostArchive()
            self.pus.append(ProcessingUnit(config, sink=archive))
            self.archives.append(archive)
        self.global_switch = GlobalSwitch(PUS_PER_CLUSTER, config.subarray_cols)


class SunderDevice:
    """A configured Sunder device ready to stream input.

    Typical use::

        device = SunderDevice(config)
        device.configure(strided_automaton)
        result = device.run(vectors, position_limit=...)
    """

    def __init__(self, config=None, max_clusters=None, fidelity="auto",
                 step_cache=DEFAULT_DEVICE_STEP_CACHE):
        self.config = config if config is not None else SunderConfig()
        self.max_clusters = max_clusters
        self.clusters = []
        self.placement = None
        self.automaton = None
        self.global_cycle = 0
        #: "automata" (AM) or "normal" (NM) — paper Section 5.1: in NM the
        #: subarrays behave as ordinary cache storage and matching halts.
        self.mode = "automata"
        #: Resolved execution fidelity ("literal" or "packed").
        self.fidelity = resolve_fidelity(fidelity)
        self._step_cache_limit = step_cache
        self._kernel = None
        self._regions = []
        # FIFO-drain accounting: the cycle loops accumulate a plain int
        # and the run boundaries flush the delta to the instrument, so
        # the per-cycle paths never touch OBS (run-setup hoist; see
        # docs/performance.md).
        self._fifo_drained_total = 0
        self._fifo_drained_reported = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def configure(self, automaton):
        """Place and program ``automaton``; returns the placement."""
        if automaton.bits != 4:
            raise ArchitectureError(
                "Sunder matches 4-bit nibbles; transform the automaton first "
                "(repro.transform.to_rate)"
            )
        with trace_span("device.configure", automaton=automaton.name,
                        states=len(automaton)):
            placement = self._configure(automaton)
        if OBS.active:
            self._record_configure_metrics(placement)
        return placement

    def _configure(self, automaton):
        placement = place(automaton, self.config, max_clusters=self.max_clusters)
        self.clusters = [_Cluster(self.config) for _ in range(placement.clusters_used)]
        for state in automaton:
            slot = placement.slot_of(state.id)
            self.clusters[slot.cluster].pus[slot.pu].configure_state(
                slot.column, state
            )
        for src, dst in automaton.transitions():
            src_slot = placement.slot_of(src)
            dst_slot = placement.slot_of(dst)
            if src_slot.cluster != dst_slot.cluster:
                raise ArchitectureError(
                    "placement split a component across clusters"
                )
            cluster = self.clusters[src_slot.cluster]
            if src_slot.pu == dst_slot.pu:
                cluster.pus[src_slot.pu].program_edge(
                    src_slot.column, dst_slot.column
                )
            else:
                cluster.global_switch.program_edge(
                    src_slot.pu, src_slot.column, dst_slot.pu, dst_slot.column
                )
        self.placement = placement
        self.automaton = automaton
        self.global_cycle = 0
        self._kernel = None
        self._regions = [pu.reporting for _, _, pu in self.iter_pus()]
        return placement

    def _record_configure_metrics(self, placement):
        instruments = OBS.instruments
        instruments.device_reconfigurations.inc()
        columns_per_cluster = PUS_PER_CLUSTER * self.config.subarray_cols
        per_cluster = [0] * placement.clusters_used
        for slot in placement.slots.values():
            per_cluster[slot.cluster] += 1
        for cluster_index, states in enumerate(per_cluster):
            label = str(cluster_index)
            instruments.device_configured_states.labels(
                cluster=label).set(states)
            instruments.device_cluster_utilization.labels(
                cluster=label).set(states / columns_per_cluster)

    # ------------------------------------------------------------------
    # Runtime
    # ------------------------------------------------------------------
    def set_mode(self, mode):
        """Switch between Automata Mode and Normal (cache) Mode."""
        if mode not in ("automata", "normal"):
            raise ArchitectureError("mode must be 'automata' or 'normal'")
        self.mode = mode

    def step(self, vector):
        """Execute one vector cycle; returns stall cycles charged."""
        self._check_runnable()
        if isinstance(vector, int):
            vector = (vector,)
        else:
            vector = tuple(vector)
        if self.fidelity == "packed":
            stall = self._packed_step(vector)
            # Single-step callers may read pu.enable/pu.active between
            # cycles, so packed state is materialized eagerly here; the
            # bulk run() path syncs once at the end instead.
            self._sync_kernel()
        else:
            stall = self._literal_step(vector)
        self._flush_fifo_drained()
        return stall

    def _check_runnable(self):
        if self.placement is None:
            raise ArchitectureError("configure() must run before step()")
        if self.mode != "automata":
            raise ArchitectureError(
                "device is in Normal Mode; call set_mode('automata') first"
            )

    def _literal_step(self, vector):
        cycle = self.global_cycle
        start_boundary = cycle % self.automaton.start_period == 0
        stall = 0
        for cluster in self.clusters:
            actives = []
            for pu in cluster.pus:
                _, pu_stall = pu.match_cycle(vector, cycle, start_boundary)
                stall += pu_stall
            for pu in cluster.pus:
                actives.append(pu.active)
            remote = cluster.global_switch.propagate(actives)
            for index, pu in enumerate(cluster.pus):
                pu.set_enable(pu.propagate() | remote[index])
        self._fifo_drain(self._regions)
        self.global_cycle += 1
        return stall

    def _packed_step(self, vector):
        kernel = self._kernel
        if kernel is None:
            kernel = self._compile_kernel()
        cycle = self.global_cycle
        stall = kernel.step(
            vector, cycle, cycle % self.automaton.start_period == 0
        )
        self._fifo_drain(self._regions)
        self.global_cycle += 1
        return stall

    def _compile_kernel(self):
        """Compile the programmed subarrays into the packed kernel."""
        with trace_span("device.compile_kernel"):
            kernel = PackedKernel(self, step_cache=self._step_cache_limit)
        self._kernel = kernel
        if OBS.active:
            OBS.instruments.device_kernel_compile_seconds.observe(
                kernel.compile_seconds)
        return kernel

    def _sync_kernel(self):
        kernel = self._kernel
        if kernel is not None:
            kernel.sync()

    def sync_dynamic_state(self):
        """Materialize packed state into the literal arrays and counters.

        A no-op under the literal fidelity (and when no kernel has been
        compiled yet).  Called by anything that reads ``pu.enable`` /
        ``pu.active`` or the matching-side subarray access counters
        directly — snapshots, the energy model, host-side inspection.
        """
        self._sync_kernel()

    def invalidate_kernel(self):
        """Drop the compiled kernel after out-of-band subarray writes.

        Host stores (:meth:`~repro.core.host.HostInterface.store_row`)
        can rewrite matching rows or crossbar cells behind the compiled
        masks; the next packed step recompiles from the subarrays.
        """
        self._sync_kernel()
        self._kernel = None

    def step_cache_info(self):
        """Device step-cache statistics (all zero before the first
        packed step, and under the literal fidelity)."""
        kernel = self._kernel
        if kernel is None:
            return {"hits": 0, "misses": 0, "hit_rate": 0.0, "size": 0,
                    "limit": self._step_cache_limit}
        return kernel.cache_info()

    def _fifo_drain(self, regions):
        """Share the host's drain bandwidth across non-empty regions."""
        if not self.config.fifo:
            return
        if not hasattr(self, "_drain_credit"):
            self._drain_credit = 0.0
        self._drain_credit += (
            self.config.fifo_drain_rows_per_cycle * self.config.entries_per_row
        )
        budget = int(self._drain_credit)
        if budget <= 0:
            return
        pending = [region for region in regions if region.count > 0]
        drained_total = 0
        for region in pending:
            if budget <= 0:
                break
            drained = region.tick(max_entries=budget)
            budget -= drained
            drained_total += drained
        self._drain_credit -= int(self._drain_credit) - budget
        self._fifo_drained_total += drained_total

    def _flush_fifo_drained(self):
        """Ship accumulated FIFO-drain counts to the instrument."""
        if not OBS.active:
            return
        pending = self._fifo_drained_total - self._fifo_drained_reported
        if pending:
            OBS.instruments.device_fifo_drained.inc(pending)
            self._fifo_drained_reported = self._fifo_drained_total

    def run(self, vectors, position_limit=None):
        """Stream a whole input; returns a :class:`RunResult`."""
        # Normalize the stream to tuples once at ingestion; the cycle
        # loop and the step cache then reuse them without per-cycle
        # re-conversion (same micro-fix BitsetEngine.run got).
        vectors = [(vector,) if isinstance(vector, int) else tuple(vector)
                   for vector in vectors]
        if OBS.active:  # single attribute check when no collector attached
            return self._run_observed(vectors, position_limit)
        total_stall = self._execute(vectors)
        return RunResult(self, len(vectors), total_stall, position_limit)

    def _execute(self, vectors):
        """The fidelity-dispatched cycle loop over a normalized stream."""
        self._check_runnable()
        total_stall = 0
        if self.fidelity == "packed":
            kernel = self._kernel
            if kernel is None:
                kernel = self._compile_kernel()
            step = kernel.step
            drain = self._fifo_drain
            regions = self._regions
            period = self.automaton.start_period
            cycle = self.global_cycle
            for vector in vectors:
                total_stall += step(vector, cycle, cycle % period == 0)
                drain(regions)
                cycle += 1
            self.global_cycle = cycle
            self._sync_kernel()
            self._flush_fifo_drained()
            return total_stall
        step = self._literal_step
        for vector in vectors:
            total_stall += step(vector)
        self._flush_fifo_drained()
        return total_stall

    def _run_observed(self, vectors, position_limit):
        """`run` with the telemetry hooks live (collector attached)."""
        instruments = OBS.instruments
        flushes_before = sum(pu.reporting.flushes for _, _, pu in self.iter_pus())
        kernel_before = self._kernel_counters()
        with trace_span("device.run", cycles=len(vectors)) as span:
            start = perf_counter()
            total_stall = self._execute(vectors)
            elapsed = perf_counter() - start
            span.set_attr(stall_cycles=total_stall)
        instruments.device_cycles.inc(len(vectors))
        instruments.device_stall_cycles.inc(total_stall)
        instruments.device_flushes.inc(
            sum(pu.reporting.flushes for _, _, pu in self.iter_pus())
            - flushes_before)
        instruments.device_run_seconds.observe(elapsed)
        self._record_kernel_metrics(instruments, kernel_before)
        return RunResult(self, len(vectors), total_stall, position_limit)

    # ------------------------------------------------------------------
    # Batched multi-stream execution
    # ------------------------------------------------------------------
    def run_batch(self, streams, position_limit=None, recorders=None):
        """Drive N independent streams through the configured automaton.

        The aggregate-throughput fast path: every lane behaves as a
        fresh stream over the programmed machine (reset dynamic state,
        cycle 0 start semantics) and all lanes share the packed kernel's
        step cache, so identical transitions are computed once per
        batch.  Reports decode straight into per-lane recorders — the
        reporting-region hardware model (row writes, stalls, flushes,
        FIFO drains) is bypassed, and the device's own streaming state
        (``global_cycle``, enables, access counters, regions) is left
        untouched; use :meth:`run` when those figures matter.  Returns
        the list of per-lane :class:`ReportRecorder`\\ s — callers with
        per-lane position limits pass their own via ``recorders``.

        Packed fidelity only: the literal oracle has no lane-sharable
        compiled form.
        """
        self._check_runnable()
        if self.fidelity != "packed":
            raise ArchitectureError(
                "run_batch requires the packed fidelity (the literal "
                "oracle executes one stream at a time)")
        lane_vectors = [
            [(vector,) if isinstance(vector, int) else tuple(vector)
             for vector in stream]
            for stream in streams]
        if recorders is None:
            recorders = [ReportRecorder(position_limit=position_limit)
                         for _ in lane_vectors]
        elif len(recorders) != len(lane_vectors):
            raise ArchitectureError(
                "run_batch got %d recorders for %d streams"
                % (len(recorders), len(lane_vectors)))
        kernel = self._kernel
        if kernel is None:
            kernel = self._compile_kernel()
        period = self.automaton.start_period
        if OBS.active:
            self._run_batch_observed(kernel, lane_vectors, period, recorders)
        else:
            kernel.run_batch(lane_vectors, period, recorders)
        return recorders

    def _run_batch_observed(self, kernel, lane_vectors, period, recorders):
        """`run_batch` with the telemetry hooks live."""
        instruments = OBS.instruments
        before = self._kernel_counters()
        total_cycles = sum(len(vectors) for vectors in lane_vectors)
        with trace_span("device.run_batch", lanes=len(lane_vectors),
                        cycles=total_cycles):
            start = perf_counter()
            lane_hits, lane_misses = kernel.run_batch(
                lane_vectors, period, recorders)
            elapsed = perf_counter() - start
        instruments.device_cycles.inc(total_cycles)
        instruments.device_run_seconds.observe(elapsed)
        self._record_kernel_metrics(instruments, before)
        handles = instruments.engine_handles("device")
        handles.batch_lanes.observe(len(lane_vectors))
        handles.batch_lane_cache_hits.inc(sum(lane_hits))
        handles.batch_lane_cache_misses.inc(sum(lane_misses))

    # ------------------------------------------------------------------
    # Prefilter-gated execution
    # ------------------------------------------------------------------
    def run_gated(self, vectors, windows, position_limit=None):
        """Execute only the prefilter's replay windows of one stream.

        ``windows`` are the ascending ``(start, record_from, end)``
        cycle triples from :func:`repro.prefilter.gate.plan_windows`;
        ``None`` means the gate was bypassed (unfilterable or cyclic
        machine) and the full stream runs as a one-lane
        :meth:`run_batch`.  Either way the result is one stitched
        :class:`ReportRecorder` with ``run_batch``'s direct-decode
        report semantics (reporting-region hardware bypassed, device
        streaming state untouched) — events are bit-exact with the
        ungated run's reports.  Packed fidelity only.
        """
        if windows is None:
            self._check_runnable()
            if self.fidelity != "packed":
                raise ArchitectureError(
                    "run_gated requires the packed fidelity (the literal "
                    "oracle has no window-replay form)")
            return self.run_batch([vectors], position_limit=position_limit)[0]
        if not windows:
            return ReportRecorder(position_limit=position_limit)
        vectors = [(vector,) if isinstance(vector, int) else tuple(vector)
                   for vector in vectors]
        lane_vectors = [vectors[start:end] for start, _, end in windows]
        starts = [start for start, _, _ in windows]
        record_from = [record for _, record, _ in windows]
        return self.run_gated_lanes(lane_vectors, starts, record_from,
                                    position_limit=position_limit,
                                    total_cycles=len(vectors))

    def run_gated_lanes(self, lane_vectors, start_cycles, record_from,
                        position_limit=None, total_cycles=None):
        """The lane-level form of :meth:`run_gated`.

        The gate calls this directly with window slices built by
        :func:`~repro.sim.inputs.stream_slice`, so a gated device run
        never materializes the full vector stream.
        """
        self._check_runnable()
        if self.fidelity != "packed":
            raise ArchitectureError(
                "run_gated requires the packed fidelity (the literal "
                "oracle has no window-replay form)")
        recorder = ReportRecorder(position_limit=position_limit)
        if not lane_vectors:
            return recorder
        lane_vectors = [
            [(vector,) if isinstance(vector, int) else tuple(vector)
             for vector in lane]
            for lane in lane_vectors]
        parts = [ReportRecorder(position_limit=position_limit)
                 for _ in lane_vectors]
        kernel = self._kernel
        if kernel is None:
            kernel = self._compile_kernel()
        period = self.automaton.start_period
        if OBS.active:
            self._run_gated_observed(kernel, lane_vectors, period, parts,
                                     start_cycles, record_from,
                                     total_cycles)
        else:
            kernel.run_windows(lane_vectors, period, parts, start_cycles,
                               record_from)
        for part in parts:
            recorder.absorb(part)
        return recorder

    def _run_gated_observed(self, kernel, lane_vectors, period, parts,
                            starts, record_from, total_cycles):
        """`run_gated` with the telemetry hooks live."""
        instruments = OBS.instruments
        before = self._kernel_counters()
        executed = sum(len(vectors) for vectors in lane_vectors)
        with trace_span("device.run_gated", windows=len(lane_vectors),
                        cycles=executed, total_cycles=total_cycles):
            start = perf_counter()
            kernel.run_windows(lane_vectors, period, parts, starts,
                               record_from)
        instruments.device_cycles.inc(executed)
        instruments.device_run_seconds.observe(perf_counter() - start)
        self._record_kernel_metrics(instruments, before)

    def _kernel_counters(self):
        kernel = self._kernel
        if kernel is None:
            return (0, 0, 0)
        return (kernel.cache_hits, kernel.cache_misses, kernel.pus_skipped)

    def _record_kernel_metrics(self, instruments, before):
        kernel = self._kernel
        if kernel is None:
            return
        hits, misses, skipped = before
        instruments.device_kernel_step_cache_hits.inc(
            kernel.cache_hits - hits)
        instruments.device_kernel_step_cache_misses.inc(
            kernel.cache_misses - misses)
        instruments.device_kernel_pus_skipped.inc(
            kernel.pus_skipped - skipped)

    # ------------------------------------------------------------------
    # Host interface (Section 5.1.2's access mechanisms)
    # ------------------------------------------------------------------
    def iter_pus(self):
        """Yield ``(cluster_index, pu_index, pu)`` for every PU."""
        for cluster_index, cluster in enumerate(self.clusters):
            for pu_index, pu in enumerate(cluster.pus):
                yield cluster_index, pu_index, pu

    def report_events(self, position_limit=None):
        """Reconstruct every report as a recorder, from the hardware state.

        Combines entries the host already received (flushes + FIFO drains)
        with entries still resident in the reporting regions, then decodes
        report bits back to state identities.  Cycle metadata is unwrapped
        modulo ``2**metadata_bits`` assuming in-order arrival.
        """
        with trace_span("device.report_drain"):
            return self._report_events(position_limit)

    def _report_events(self, position_limit):
        recorder = ReportRecorder(position_limit=position_limit)
        modulus = 1 << self.config.metadata_bits
        arity = self.config.rate_nibbles
        for cluster_index, cluster in enumerate(self.clusters):
            for pu_index, pu in enumerate(cluster.pus):
                archive = cluster.archives[pu_index]
                entries = archive.entries() + pu.reporting.read_entries()
                last_cycle = 0
                for entry in entries:
                    cycle = _unwrap(entry.cycle, last_cycle, modulus)
                    last_cycle = cycle
                    for state_id in pu.decode_report_columns(entry.report_vector):
                        state = self.automaton.state(state_id)
                        for offset in state.report_offsets:
                            recorder.record(
                                cycle * arity + offset, cycle, state_id,
                                state.report_code,
                            )
        return recorder

    def save_context(self):
        """Snapshot the dynamic matching state (per-flow context switch).

        Network processing interleaves flows; each flow needs its own
        automata state.  The dynamic state is tiny — one enable vector and
        the cycle counter per PU — so contexts swap in O(PUs) row writes.
        Report-region contents stay put (reports already belong to the
        flow that generated them and carry cycle metadata).
        """
        self._sync_kernel()
        return {
            "global_cycle": self.global_cycle,
            "enables": [
                (cluster_index, pu_index, pu.enable.copy(), pu.active.copy())
                for cluster_index, pu_index, pu in self.iter_pus()
            ],
        }

    def load_context(self, context):
        """Restore a snapshot taken by :meth:`save_context`."""
        if self.placement is None:
            raise ArchitectureError("configure() must run before load_context()")
        self.global_cycle = context["global_cycle"]
        for cluster_index, pu_index, enable, active in context["enables"]:
            pu = self.clusters[cluster_index].pus[pu_index]
            pu.enable = enable.copy()
            pu.active = active.copy()
        if self._kernel is not None:
            self._kernel.reload_dynamic()

    def reset_matching_state(self):
        """Clear all dynamic matching state (start a fresh stream)."""
        for _, _, pu in self.iter_pus():
            pu.enable = pu.enable & False
            pu.active = pu.active & False
        self.global_cycle = 0
        if self._kernel is not None:
            self._kernel.reload_dynamic()

    def describe(self):
        """Text description of the configured layout (debug aid)."""
        if self.placement is None:
            return "SunderDevice (unconfigured)"
        lines = [
            "SunderDevice: rate=%d nibbles (%d bits/cycle), %d cluster(s)" % (
                self.config.rate_nibbles, self.config.bits_per_cycle,
                len(self.clusters),
            ),
            "subarray: rows 0-%d matching, rows %d-%d reporting "
            "(%d entries of %db+%db)" % (
                self.config.matching_rows - 1, self.config.matching_rows,
                self.config.subarray_rows - 1, self.config.report_capacity,
                self.config.report_bits, self.config.metadata_bits,
            ),
        ]
        for cluster_index, pu_index, pu in self.iter_pus():
            configured = sum(
                1 for state in pu.state_of_column if state is not None
            )
            if configured == 0:
                continue
            reporting = int(pu.report_column_mask.sum())
            lines.append(
                "  cluster %d PU %d: %d states (%d reporting), "
                "%d report entries buffered" % (
                    cluster_index, pu_index, configured, reporting,
                    pu.reporting.count,
                )
            )
        return "\n".join(lines)

    def live_report_status(self):
        """Selective reporting: which reporting states are active *now*.

        The paper's Section 5.1.2 highlight — the host can read any
        state's report status at any cycle in constant time, because the
        reporting-enabled columns of the active-state vector are directly
        addressable.  Returns ``{state_id: True}`` for currently-active
        reporting states.
        """
        self._sync_kernel()
        status = {}
        for _, _, pu in self.iter_pus():
            active_reports = pu.active & pu.report_column_mask
            for state_id in pu.decode_report_columns(
                active_reports[pu.report_column_base:]
            ):
                status[state_id] = True
        return status

    def summarize_all(self):
        """Report summarization across every PU.

        Returns ``(summary, stall_cycles)`` where ``summary`` maps state
        ids to True if that state reported since the last flush.
        """
        summary = {}
        stall = 0
        for _, _, pu in self.iter_pus():
            bits, pu_stall = pu.reporting.summarize()
            stall += pu_stall
            for state_id in pu.decode_report_columns(bits):
                summary[state_id] = True
        return summary, stall

    # ------------------------------------------------------------------
    def statistics(self):
        """Aggregate device counters."""
        self._sync_kernel()
        flushes = 0
        stall_cycles = 0
        buffered = 0
        for _, _, pu in self.iter_pus():
            flushes += pu.reporting.flushes
            stall_cycles += pu.reporting.stall_cycles
            buffered += pu.reporting.count
        return {
            "cycles": self.global_cycle,
            "flushes": flushes,
            "stall_cycles": stall_cycles,
            "buffered_entries": buffered,
            "pus": sum(1 for _ in self.iter_pus()),
        }


class RunResult:
    """Outcome of :meth:`SunderDevice.run`."""

    def __init__(self, device, cycles, stall_cycles, position_limit):
        self.device = device
        self.cycles = cycles
        self.stall_cycles = stall_cycles
        self.position_limit = position_limit

    @property
    def slowdown(self):
        """(kernel + stall cycles) / kernel cycles — Table 4's overhead."""
        if self.cycles == 0:
            return 1.0
        return (self.cycles + self.stall_cycles) / self.cycles

    def reports(self):
        """Reconstructed report recorder (see ``report_events``)."""
        return self.device.report_events(position_limit=self.position_limit)


def _unwrap(value, last, modulus):
    """Unwrap a truncated counter to the epoch nearest the previous value.

    Entries are *usually* monotone (one stream), but context switching
    interleaves flows whose flow-local cycles may step backward by small
    amounts; choosing the non-negative candidate closest to ``last``
    handles both that and genuine wraparound.
    """
    base = (last // modulus) * modulus
    candidates = [base - modulus + value, base + value, base + modulus + value]
    feasible = [c for c in candidates if c >= 0]
    return min(feasible, key=lambda c: abs(c - last))
