"""Host integration model — Section 6's memory-mapped access sketch.

Sunder repurposes LLC slices; the host reaches a subarray row through a
physical address that survives the slice-hash and way-restriction games
(reverse-engineered hash + Intel CAT).  This module models the *visible*
interface: a flat address map over (cluster, pu, row), plus the three
host verbs — configuration writes, report loads, and ``clflush``-style
report eviction.  It exists so the examples and tests can exercise an
end-to-end "host reads its reports back by address" flow.
"""

from ..errors import ArchitectureError

#: Bytes per subarray row (256 bits).
ROW_BYTES = 32


class AddressMap:
    """Flat physical address layout of a Sunder device.

    Layout (row-granular): ``cluster -> pu -> row``.  Addresses are byte
    addresses aligned to :data:`ROW_BYTES`.
    """

    def __init__(self, device, base_address=0x1_0000_0000):
        self.device = device
        self.base_address = base_address
        self.rows_per_pu = device.config.subarray_rows
        self.pus_per_cluster = len(device.clusters[0].pus) if device.clusters else 0

    def address_of(self, cluster, pu, row):
        """Physical byte address of one subarray row."""
        self._check(cluster, pu, row)
        rows_per_cluster = self.pus_per_cluster * self.rows_per_pu
        row_index = (
            cluster * rows_per_cluster + pu * self.rows_per_pu + row
        )
        return self.base_address + row_index * ROW_BYTES

    def locate(self, address):
        """Inverse of :meth:`address_of`; returns ``(cluster, pu, row)``."""
        offset = address - self.base_address
        if offset < 0 or offset % ROW_BYTES:
            raise ArchitectureError("address 0x%x not row-aligned" % address)
        row_index = offset // ROW_BYTES
        rows_per_cluster = self.pus_per_cluster * self.rows_per_pu
        cluster, remainder = divmod(row_index, rows_per_cluster)
        pu, row = divmod(remainder, self.rows_per_pu)
        self._check(cluster, pu, row)
        return cluster, pu, row

    def _check(self, cluster, pu, row):
        if not 0 <= cluster < len(self.device.clusters):
            raise ArchitectureError("cluster %d out of range" % cluster)
        if not 0 <= pu < self.pus_per_cluster:
            raise ArchitectureError("pu %d out of range" % pu)
        if not 0 <= row < self.rows_per_pu:
            raise ArchitectureError("row %d out of range" % row)


class HostInterface:
    """The three host verbs over an :class:`AddressMap`."""

    def __init__(self, device):
        self.device = device
        self.address_map = AddressMap(device)
        self.flushed_rows = []

    def _pu(self, cluster, pu):
        return self.device.clusters[cluster].pus[pu]

    def load_row(self, address):
        """Host load: read one subarray row (Port 1) by address."""
        cluster, pu, row = self.address_map.locate(address)
        return self._pu(cluster, pu).subarray.read_row(row)

    def store_row(self, address, bits):
        """Host store: configuration write of one row by address."""
        cluster, pu, row = self.address_map.locate(address)
        self._pu(cluster, pu).subarray.write_row(row, bits)
        # The write may land in matching rows the packed kernel compiled
        # into bitmasks; drop the kernel so the next step recompiles.
        self.device.invalidate_kernel()

    def clflush_report_region(self, cluster, pu):
        """Evict a PU's used report rows to DRAM for post-processing.

        Returns the number of rows captured into :attr:`flushed_rows`.
        """
        unit = self._pu(cluster, pu)
        region = unit.reporting
        captured = 0
        for row in range(region.first_row, region.first_row + region.used_rows):
            self.flushed_rows.append(
                (self.address_map.address_of(cluster, pu, row),
                 unit.subarray.read_row(row))
            )
            captured += 1
        return captured

    def read_report_entries(self, cluster, pu):
        """Selective reporting: decode one PU's live entries by load."""
        return self._pu(cluster, pu).reporting.read_entries()
