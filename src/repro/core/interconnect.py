"""Memory-mapped full-crossbar interconnect (paper Section 5.2).

The state-transition stage is an 8T SRAM subarray used as a crossbar:
row ``r``, column ``c`` holds '1' when state ``r`` activates state ``c``.
At runtime the *active state vector* drives the row activators, and each
column's BL2 wired-NOR (inverted) computes "does any active predecessor
point at me" — the OR-functionality the paper highlights.  Because every
column intersects every row, any 256-state connectivity pattern routes
without congestion.

A :class:`GlobalSwitch` is the same structure one level up, connecting
the processing units of a cluster so automata up to 1024 states span PUs.
"""

import numpy as np

from ..errors import ArchitectureError
from .subarray import SramSubarray


class CrossbarSwitch:
    """A ``size x size`` full crossbar over one PU's states."""

    def __init__(self, size=256):
        self.size = size
        self.subarray = SramSubarray(size, size)

    def program_edge(self, src, dst, connected=True):
        """Write one connectivity bit (configuration time, Port 1)."""
        if not (0 <= src < self.size and 0 <= dst < self.size):
            raise ArchitectureError(
                "edge (%d, %d) out of range for a %d-state crossbar"
                % (src, dst, self.size)
            )
        self.subarray.cells[src, dst] = connected

    def program_adjacency(self, adjacency):
        """Program a full boolean adjacency matrix at once."""
        adjacency = np.asarray(adjacency, dtype=bool)
        if adjacency.shape != (self.size, self.size):
            raise ArchitectureError(
                "adjacency must be %dx%d" % (self.size, self.size)
            )
        self.subarray.cells[:, :] = adjacency

    def propagate(self, active_vector):
        """One state-transition step.

        ``active_vector`` drives the activator wordlines; the result is
        the *potential next states* vector (per column: OR over active
        predecessors).  An all-inactive input simply returns all-False
        without touching the array, matching the circuit (no activated
        wordline leaves BL2 precharged).
        """
        active_vector = np.asarray(active_vector, dtype=bool)
        if active_vector.shape != (self.size,):
            raise ArchitectureError(
                "active vector must have %d bits" % self.size
            )
        rows = np.flatnonzero(active_vector)
        if rows.size == 0:
            return np.zeros(self.size, dtype=bool)
        # The wired-NOR hardware activates all driven rows simultaneously;
        # numpy's any() over the selected rows models the same evaluation
        # without the 64-row stability cap (activators are driven
        # full-swing here, unlike lowered-voltage multi-row *reads*).
        self.subarray.port2_reads += 1
        return np.any(self.subarray.cells[rows, :], axis=0)

    def packed_successors(self):
        """Per-source successor masks as ints (entry ``r`` packs row ``r``).

        Compiled form for the packed device kernel: propagation OR-folds
        the entries of the set bits of the active vector, which computes
        the same column-wise OR as :meth:`propagate`.
        """
        packed = np.packbits(self.subarray.cells, axis=1, bitorder="little")
        return [int.from_bytes(row.tobytes(), "little") for row in packed]


class GlobalSwitch:
    """Cluster-level crossbar: routes activations between PUs.

    Indexed by *global* state slots: PU ``p``'s column ``c`` is slot
    ``p * 256 + c``.  Only inter-PU edges are programmed here; intra-PU
    edges stay in the local crossbars (they are evaluated in parallel,
    Section 7.4).
    """

    def __init__(self, num_pus=4, pu_size=256):
        self.num_pus = num_pus
        self.pu_size = pu_size
        self.size = num_pus * pu_size
        self.crossbar = CrossbarSwitch(self.size)

    def slot(self, pu_index, column):
        """Global slot of ``(pu, column)``."""
        if not (0 <= pu_index < self.num_pus and 0 <= column < self.pu_size):
            raise ArchitectureError(
                "slot (%d, %d) out of range" % (pu_index, column)
            )
        return pu_index * self.pu_size + column

    def program_edge(self, src_pu, src_col, dst_pu, dst_col):
        """Program one inter-PU activation wire."""
        if src_pu == dst_pu:
            raise ArchitectureError(
                "intra-PU edges belong in the local crossbar"
            )
        self.crossbar.program_edge(
            self.slot(src_pu, src_col), self.slot(dst_pu, dst_col)
        )

    def propagate(self, active_by_pu):
        """Cluster-wide transition step.

        ``active_by_pu`` is a list of per-PU active vectors; returns the
        per-PU *remote* enable vectors (to OR with each PU's local
        propagation result).
        """
        if len(active_by_pu) != self.num_pus:
            raise ArchitectureError(
                "expected %d PU vectors, got %d"
                % (self.num_pus, len(active_by_pu))
            )
        stacked = np.concatenate([
            np.asarray(vector, dtype=bool) for vector in active_by_pu
        ])
        enabled = self.crossbar.propagate(stacked)
        return [
            enabled[index * self.pu_size:(index + 1) * self.pu_size]
            for index in range(self.num_pus)
        ]

    def packed_successors(self):
        """Successor masks of *programmed* global slots only.

        Returns ``{slot: mask}`` where ``slot`` is ``pu * pu_size + col``
        and ``mask`` is a cluster-wide (``size``-bit) int.  Inter-PU
        edges are sparse, so the packed kernel probes this dict instead
        of walking a dense table.
        """
        cells = self.crossbar.subarray.cells
        programmed = np.flatnonzero(cells.any(axis=1))
        packed = np.packbits(cells, axis=1, bitorder="little")
        return {int(row): int.from_bytes(packed[row].tobytes(), "little")
                for row in programmed}
