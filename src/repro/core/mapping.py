"""Placement of automata onto Sunder processing units.

A processing unit (PU) is one 256-column match/report subarray plus its
local crossbar; four PUs share a global switch, so a weakly-connected
automaton component may span at most one 1024-state cluster.  Reporting
states must land in the last ``m`` (``config.report_bits``) columns of
their PU — the *reporting-enabled* columns whose activity feeds the OR
tree and the reporting region (paper Figure 5).

Placement is greedy first-fit-decreasing over components, which is the
classic spatial-architecture flow (components are indivisible, clusters
are bins).
"""

from ..automata.ops import connected_components
from ..errors import ArchitectureError, CapacityError
from .config import PUS_PER_CLUSTER


class StateSlot:
    """Physical location of one state: (cluster, pu, column)."""

    __slots__ = ("cluster", "pu", "column")

    def __init__(self, cluster, pu, column):
        self.cluster = cluster
        self.pu = pu
        self.column = column

    def __repr__(self):
        return "StateSlot(cluster=%d, pu=%d, col=%d)" % (
            self.cluster, self.pu, self.column,
        )

    def __eq__(self, other):
        return (
            isinstance(other, StateSlot)
            and (self.cluster, self.pu, self.column)
            == (other.cluster, other.pu, other.column)
        )


class Placement:
    """Result of mapping one automaton onto a device."""

    def __init__(self, automaton, config):
        self.automaton = automaton
        self.config = config
        self.slots = {}
        self.clusters_used = 0

    def slot_of(self, state_id):
        """Physical slot of a state."""
        try:
            return self.slots[state_id]
        except KeyError:
            raise ArchitectureError("state %r was not placed" % (state_id,)) from None

    def pus_used(self):
        """Distinct (cluster, pu) pairs that hold at least one state."""
        return sorted({(slot.cluster, slot.pu) for slot in self.slots.values()})

    def states_in_pu(self, cluster, pu):
        """State ids mapped to one PU."""
        return [
            state_id for state_id, slot in self.slots.items()
            if slot.cluster == cluster and slot.pu == pu
        ]

    def report_pu_of(self, state_id):
        """(cluster, pu) of a reporting state — used by the perf model."""
        slot = self.slot_of(state_id)
        return (slot.cluster, slot.pu)

    def summary(self):
        """Utilization statistics."""
        pus = self.pus_used()
        return {
            "states": len(self.slots),
            "clusters": self.clusters_used,
            "pus": len(pus),
            "avg_states_per_pu": len(self.slots) / len(pus) if pus else 0.0,
        }


class _PuBudget:
    """Free normal/report column slots of one PU during placement."""

    def __init__(self, config):
        self.normal_free = config.subarray_cols - config.report_bits
        self.report_free = config.report_bits
        self.next_normal = 0
        self.next_report = config.subarray_cols - config.report_bits

    def take_normal(self):
        if self.normal_free == 0:
            raise CapacityError("PU out of normal columns")
        column = self.next_normal
        self.next_normal += 1
        self.normal_free -= 1
        return column

    def take_report(self):
        if self.report_free == 0:
            raise CapacityError("PU out of reporting columns")
        column = self.next_report
        self.next_report += 1
        self.report_free -= 1
        return column


def place(automaton, config, max_clusters=None):
    """Map ``automaton`` onto PUs; returns a :class:`Placement`.

    Raises :class:`CapacityError` when a single component exceeds one
    cluster's capacity, or when ``max_clusters`` is given and the whole
    automaton does not fit (the multi-round reconfiguration case, which
    this model does not execute).
    """
    if automaton.arity != config.rate_nibbles:
        raise ArchitectureError(
            "automaton arity %d does not match configured rate %d"
            % (automaton.arity, config.rate_nibbles)
        )
    placement = Placement(automaton, config)
    components = connected_components(automaton)
    normal_per_cluster = PUS_PER_CLUSTER * (config.subarray_cols - config.report_bits)
    report_per_cluster = PUS_PER_CLUSTER * config.report_bits

    clusters = []  # list of lists of _PuBudget

    def cluster_free(budgets):
        normal = sum(b.normal_free for b in budgets)
        report = sum(b.report_free for b in budgets)
        return normal, report

    for component in components:
        report_ids = [s for s in component if automaton.state(s).report]
        normal_ids = [s for s in component if not automaton.state(s).report]
        if len(normal_ids) > normal_per_cluster or len(report_ids) > report_per_cluster:
            raise CapacityError(
                "component with %d states (%d reporting) exceeds one cluster "
                "(%d normal + %d reporting columns); split the automaton or "
                "raise report_bits" % (
                    len(component), len(report_ids),
                    normal_per_cluster, report_per_cluster,
                )
            )
        target = None
        for budgets in clusters:
            normal, report = cluster_free(budgets)
            if normal >= len(normal_ids) and report >= len(report_ids):
                target = budgets
                break
        if target is None:
            if max_clusters is not None and len(clusters) >= max_clusters:
                raise CapacityError(
                    "automaton does not fit in %d clusters; multi-round "
                    "reconfiguration required" % max_clusters
                )
            target = [_PuBudget(config) for _ in range(PUS_PER_CLUSTER)]
            clusters.append(target)
        cluster_index = clusters.index(target)
        for state_id in normal_ids:
            pu_index, column = _take(target, "normal")
            placement.slots[state_id] = StateSlot(cluster_index, pu_index, column)
        for state_id in report_ids:
            pu_index, column = _take(target, "report")
            placement.slots[state_id] = StateSlot(cluster_index, pu_index, column)

    placement.clusters_used = len(clusters)
    return placement


def _take(budgets, kind):
    """Allocate one column of ``kind`` from the least-loaded feasible PU."""
    for pu_index, budget in enumerate(budgets):
        try:
            if kind == "normal":
                return pu_index, budget.take_normal()
            return pu_index, budget.take_report()
        except CapacityError:
            continue
    raise CapacityError("cluster unexpectedly out of %s columns" % kind)
