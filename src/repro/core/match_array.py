"""The state-matching half of a Sunder match/report subarray.

Up to four 4-bit nibbles are one-hot encoded in the top rows of a 256x256
subarray (16 rows per nibble).  Matching a vector of nibbles activates one
row per nibble through the 4:16 decoders; BL2's wired-NOR then produces
the per-state match vector in a single access.

Because BL2 computes NOR (not AND), the acceptance data is stored
*complemented*: ``cell[row(i, v), state] = 1`` iff the state does **not**
accept nibble value ``v`` at position ``i``.  A state's column then pulls
BL2 low exactly when some activated position rejects, so BL2-high ==
"every position accepted" — the AND-of-nibbles the paper describes.
"""

import numpy as np

from ..errors import ArchitectureError, CapacityError
from .config import ROWS_PER_NIBBLE
from .subarray import SramSubarray


class MatchArray:
    """State matching over the top ``16 * rate`` rows of a subarray.

    Parameters
    ----------
    subarray:
        The shared :class:`SramSubarray` (the reporting region uses its
        lower rows).
    rate_nibbles:
        Configured processing rate (1, 2, or 4 nibbles per cycle).
    """

    def __init__(self, subarray, rate_nibbles):
        self.subarray = subarray
        self.rate_nibbles = rate_nibbles
        self.capacity = subarray.cols
        self._configured = 0
        # Complemented storage: an unprogrammed column must reject every
        # nibble value, i.e. hold all-ones in the matching rows.
        subarray.cells[: self.matching_rows, :] = True

    @property
    def matching_rows(self):
        """Rows claimed by the one-hot encodings."""
        return ROWS_PER_NIBBLE * self.rate_nibbles

    def row_of(self, position, value):
        """Physical row holding nibble ``value`` of nibble ``position``."""
        if not 0 <= position < self.rate_nibbles:
            raise ArchitectureError(
                "nibble position %d out of range for rate %d"
                % (position, self.rate_nibbles)
            )
        if not 0 <= value < ROWS_PER_NIBBLE:
            raise ArchitectureError("nibble value %d out of range" % value)
        return position * ROWS_PER_NIBBLE + value

    # ------------------------------------------------------------------
    # Configuration (Automata Mode writes through Port 1).
    # ------------------------------------------------------------------
    def configure_state(self, column, symbols):
        """Program one state's symbol sets into ``column``.

        ``symbols`` is the STE's tuple of 4-bit symbol sets (length ==
        rate).  Stored complemented, per the module docstring.
        """
        if not 0 <= column < self.capacity:
            raise CapacityError(
                "column %d out of range (%d columns)" % (column, self.capacity)
            )
        if len(symbols) != self.rate_nibbles:
            raise ArchitectureError(
                "state arity %d does not match configured rate %d"
                % (len(symbols), self.rate_nibbles)
            )
        for position, symbol_set in enumerate(symbols):
            if symbol_set.bits != 4:
                raise ArchitectureError("match array stores 4-bit symbols only")
            for value in range(ROWS_PER_NIBBLE):
                accepts = value in symbol_set
                self.subarray.cells[self.row_of(position, value), column] = not accepts
        self._configured = max(self._configured, column + 1)

    def clear_column(self, column):
        """Erase a state column (mark every value as rejecting)."""
        for row in range(self.matching_rows):
            self.subarray.cells[row, column] = True

    # ------------------------------------------------------------------
    # Runtime (Automata Mode matches through Port 2).
    # ------------------------------------------------------------------
    def match(self, vector):
        """Match one input vector; returns a bool array over columns.

        Activates one row per nibble position and senses the wired-NOR —
        exactly one Port-2 access per cycle regardless of rate.
        """
        if len(vector) != self.rate_nibbles:
            raise ArchitectureError(
                "input vector arity %d does not match rate %d"
                % (len(vector), self.rate_nibbles)
            )
        rows = [self.row_of(position, value) for position, value in enumerate(vector)]
        return self.subarray.wired_nor(rows)

    def match_columns(self, vector):
        """Match restricted to configured columns (ignores unused ones)."""
        return self.match(vector)[: self._configured]

    def packed_match_tables(self):
        """Per-(position, value) acceptance masks as column-bitmask ints.

        ``tables[position][value]`` has bit ``c`` set iff the state in
        column ``c`` accepts nibble ``value`` at ``position`` — the
        un-complemented view of the stored matching rows, compiled for
        the packed device kernel (a cycle's match vector is the AND of
        one entry per position).
        """
        from .packed import pack_bits

        tables = []
        for position in range(self.rate_nibbles):
            row_masks = []
            for value in range(ROWS_PER_NIBBLE):
                accepts = ~self.subarray.cells[self.row_of(position, value), :]
                row_masks.append(pack_bits(accepts))
            tables.append(row_masks)
        return tables


def match_vector_reference(states, vector):
    """Oracle used in tests: per-state match bits straight from symbol sets."""
    return np.array(
        [all(value in sset for sset, value in zip(state.symbols, vector))
         for state in states],
        dtype=bool,
    )
