"""Packed execution kernel: the bitmask-compiled SunderDevice fast path.

The literal device model pays numpy-array work per PU per cycle (a
wired-NOR in :class:`~repro.core.match_array.MatchArray`, fancy indexing
in every crossbar ``propagate``).  This module compiles the *programmed
subarray contents* into plain Python integers once, at first use, and
then executes cycles as integer arithmetic:

- per-(position, nibble-value) **match masks** — bit ``c`` set iff the
  state in column ``c`` accepts that value at that position, so a cycle's
  match vector is one table lookup + AND per position;
- per-column **local-crossbar successor masks** — propagation OR-folds
  the masks of the set bits of the active vector;
- **global-switch successor masks** for programmed slots only (a sparse
  dict keyed by ``pu * cols + column``);
- start/report column masks, so enables and report bits are single ORs
  and shifts.

The reporting region stays fully literal — report writes, drains,
flushes, and stalls are the paper's contribution and keep their
row-level behaviour.  Matching-side access counters are instead derived
analytically (they are a pure function of how many cycles ran and which
PUs were active) and flushed back into the :class:`SramSubarray`
counters on :meth:`PackedKernel.sync`, so ``statistics()``, energy, and
stall figures are identical in both fidelities.

A device-level LRU step cache keyed ``(enables, vector, phase)`` mirrors
:class:`~repro.sim.engine.BitsetEngine`'s step memoization; idle PUs
(zero enable bits and no start boundary) are skipped entirely.
"""

from time import perf_counter

import numpy as np

from ..errors import ArchitectureError
from .config import PUS_PER_CLUSTER

#: Accepted values for the device's ``fidelity`` knob.
FIDELITIES = ("auto", "literal", "packed")
#: Default LRU capacity of the device step cache (mirrors the engine's).
DEFAULT_DEVICE_STEP_CACHE = 1 << 16


def resolve_fidelity(fidelity):
    """Normalize a fidelity knob value; ``"auto"`` picks the packed path."""
    if fidelity not in FIDELITIES:
        raise ArchitectureError(
            "fidelity must be one of %r, got %r" % (FIDELITIES, fidelity)
        )
    return "packed" if fidelity == "auto" else fidelity


def pack_bits(array):
    """Bool array -> int with bit ``i`` mirroring element ``i``."""
    packed = np.packbits(np.asarray(array, dtype=bool), bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


def unpack_bits(value, length):
    """Inverse of :func:`pack_bits` (lowest ``length`` bits)."""
    raw = np.frombuffer(value.to_bytes((length + 7) // 8, "little"),
                        dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:length].astype(bool)


class PackedKernel:
    """Compiled form of one configured :class:`SunderDevice`.

    Owns the packed dynamic state (per-PU enable/active integers) while
    it is live; :meth:`sync` materializes it back into the literal
    ``ProcessingUnit`` arrays and flushes the analytically-derived
    access counters.
    """

    def __init__(self, device, step_cache=DEFAULT_DEVICE_STEP_CACHE):
        config = device.config
        self.config = config
        self.arity = config.rate_nibbles
        cols = config.subarray_cols
        self.cols = cols
        self.report_base = cols - config.report_bits
        self.pu_mask = (1 << cols) - 1
        self.clusters = device.clusters
        self.pus = [pu for _, _, pu in device.iter_pus()]
        self.regions = [pu.reporting for pu in self.pus]

        started = perf_counter()
        self.match_tables = []
        self.local_succ = []
        self.all_input = []
        self.start_all = []  # cycle-0 mask: start-of-data | all-input
        for pu in self.pus:
            self.match_tables.append(pu.match_array.packed_match_tables())
            self.local_succ.append(pu.crossbar.packed_successors())
            all_input = pack_bits(pu.all_input_vector)
            self.all_input.append(all_input)
            self.start_all.append(
                all_input | pack_bits(pu.start_of_data_vector)
            )
        self.gs_succ = [cluster.global_switch.packed_successors()
                        for cluster in self.clusters]
        self.compile_seconds = perf_counter() - started

        # Packed dynamic state, seeded from the literal arrays.
        self.enables = tuple(pack_bits(pu.enable) for pu in self.pus)
        self.actives = tuple(pack_bits(pu.active) for pu in self.pus)
        self.dirty = False

        self._cache = {}
        self._cache_limit = int(step_cache)
        # Lazy LRU: skip the move-to-end churn until the cache is at
        # least half full (same policy as the engine's step cache).
        self._touch_floor = self._cache_limit >> 1
        self.cache_hits = 0
        self.cache_misses = 0
        self.pus_skipped = 0

        # Analytic access counters, flushed on sync():
        # - matching Port-2 reads accrue once per PU per cycle (the
        #   literal loop matches every PU unconditionally),
        # - a local crossbar counts one Port-2 read per cycle its PU's
        #   active vector is non-zero (propagate early-outs otherwise),
        # - a global switch counts one per cycle any PU in its cluster
        #   is active.
        self._pending_cycles = 0
        self._pending_crossbar = [0] * len(self.pus)
        self._pending_gs = [0] * len(self.clusters)
        self._report_arrays = {}
        self._batch_plans = {}

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self, vector, cycle, start_boundary):
        """One packed cycle; returns the stall cycles charged.

        The caller (the device) owns the cycle counter and the FIFO
        drain; this method owns matching, propagation, and the literal
        report append.
        """
        phase = 2 if cycle == 0 else (1 if start_boundary else 0)
        cache = self._cache
        key = (self.enables, vector, phase)
        value = cache.get(key)
        if value is None:
            self.cache_misses += 1
            value = self._compute(key)
            if self._cache_limit:
                cache[key] = value
                if len(cache) > self._cache_limit:
                    del cache[next(iter(cache))]
        else:
            self.cache_hits += 1
            if len(cache) > self._touch_floor:
                del cache[key]
                cache[key] = value
        next_enables, actives, plan, crossbar_pus, gs_clusters, skipped = value
        stall = 0
        regions = self.regions
        for index, _, bits in plan:
            stall += regions[index].append(bits, cycle)
        self.enables = next_enables
        self.actives = actives
        self.dirty = True
        self._pending_cycles += 1
        pending_crossbar = self._pending_crossbar
        for index in crossbar_pus:
            pending_crossbar[index] += 1
        pending_gs = self._pending_gs
        for index in gs_clusters:
            pending_gs[index] += 1
        self.pus_skipped += skipped
        return stall

    def _compute(self, key):
        """The uncached transition for one ``(enables, vector, phase)``."""
        enables, vector, phase = key
        if len(vector) != self.arity:
            raise ArchitectureError(
                "input vector arity %d does not match rate %d"
                % (len(vector), self.arity)
            )
        for value in vector:
            if not 0 <= value < 16:
                raise ArchitectureError(
                    "nibble value %r out of range" % (value,)
                )
        cols = self.cols
        arity = self.arity
        report_base = self.report_base
        pu_mask = self.pu_mask
        next_enables = []
        actives = []
        plan = []
        crossbar_pus = []
        gs_clusters = []
        skipped = 0
        for cluster_index in range(len(self.clusters)):
            base = cluster_index * PUS_PER_CLUSTER
            gdict = self.gs_succ[cluster_index]
            remote = 0
            local_out = [0] * PUS_PER_CLUSTER
            cluster_active = False
            for pu_index in range(PUS_PER_CLUSTER):
                index = base + pu_index
                enabled = enables[index]
                if phase == 2:
                    enabled |= self.start_all[index]
                elif phase == 1:
                    enabled |= self.all_input[index]
                if not enabled:
                    skipped += 1
                    actives.append(0)
                    continue
                tables = self.match_tables[index]
                match = tables[0][vector[0]]
                for position in range(1, arity):
                    match &= tables[position][vector[position]]
                active = enabled & match
                actives.append(active)
                if not active:
                    continue
                crossbar_pus.append(index)
                cluster_active = True
                report = active >> report_base
                if report:
                    # Plan entries carry both forms of the report bits:
                    # the bool array feeds the literal region append on
                    # the step() path, the packed int keys the decoded
                    # per-lane plan on the run_batch path.
                    plan.append((index, report, self._report_array(report)))
                succ = self.local_succ[index]
                slot_base = pu_index * cols
                out = 0
                bits = active
                while bits:
                    low = bits & -bits
                    column = low.bit_length() - 1
                    out |= succ[column]
                    hop = gdict.get(slot_base + column)
                    if hop is not None:
                        remote |= hop
                    bits ^= low
                local_out[pu_index] = out
            if cluster_active:
                gs_clusters.append(cluster_index)
            for pu_index in range(PUS_PER_CLUSTER):
                next_enables.append(
                    local_out[pu_index]
                    | ((remote >> (pu_index * cols)) & pu_mask)
                )
        return (tuple(next_enables), tuple(actives), tuple(plan),
                tuple(crossbar_pus), tuple(gs_clusters), skipped)

    def _report_array(self, report):
        """Memoized bool-array form of one packed report-bit pattern."""
        array = self._report_arrays.get(report)
        if array is None:
            array = unpack_bits(report, self.config.report_bits)
            array.setflags(write=False)
            self._report_arrays[report] = array
        return array

    # ------------------------------------------------------------------
    # Batched multi-stream execution
    # ------------------------------------------------------------------
    def _batch_report_plan(self, index, report):
        """Memoized decode of one PU's packed report pattern.

        Maps the report bits straight to ``(offset, state_id, code)``
        triples — the same decode :meth:`ProcessingUnit.
        decode_report_columns` performs entry-by-entry on the literal
        path, hoisted to once per distinct pattern so batched lanes
        skip the reporting region and its numpy row writes entirely.
        """
        key = (index, report)
        plan = self._batch_plans.get(key)
        if plan is None:
            pu = self.pus[index]
            base = self.report_base
            entries = []
            bits = report
            while bits:
                low = bits & -bits
                state = pu.state_of_column[base + low.bit_length() - 1]
                if state is None:
                    raise ArchitectureError(
                        "report bit set for an unconfigured column")
                for offset in state.report_offsets:
                    entries.append((offset, state.id, state.report_code))
                bits ^= low
            plan = tuple(entries)
            self._batch_plans[key] = plan
        return plan

    def run_lanes(self, lane_vectors, period, recorders, start_cycles=None,
                  record_from=None):
        """The shared lane executor: N lanes, one step cache.

        Each lane is an independent normalized stream (or a replay
        window of one stream) starting from the reset dynamic state
        (zero enables).  ``start_cycles`` gives each lane's absolute
        first cycle (window replays start mid-stream; phases derive
        from absolute cycles so ``ALL_INPUT`` start-period boundaries
        line up with the serial run) and ``record_from`` suppresses
        reports before a lane's true block start — warm-up cycles exist
        only to rebuild the enable state (the shard-replay warm-up
        argument).  Omitting both runs every lane as a fresh stream
        from cycle 0 with nothing suppressed.

        Lanes share the step cache, so identical ``(enables, vector,
        phase)`` transitions are computed once per call.  Reports
        decode straight into the per-lane recorders via
        :meth:`_batch_report_plan` — the reporting-region hardware
        model (row writes, stalls, flushes, FIFO drains) is bypassed,
        and the kernel's own dynamic state, pending access counters,
        and regions are untouched.  Returns per-lane ``(hits, misses)``
        lists.
        """
        cache = self._cache
        cache_limit = self._cache_limit
        touch_floor = self._touch_floor
        compute = self._compute
        batch_plan = self._batch_report_plan
        arity = self.arity
        lanes = len(lane_vectors)
        if start_cycles is None:
            start_cycles = (0,) * lanes
        if record_from is None:
            record_from = start_cycles
        reset_enables = (0,) * len(self.pus)
        enables = [reset_enables] * lanes
        lane_hits = [0] * lanes
        lane_misses = [0] * lanes
        lane_lengths = [len(vectors) for vectors in lane_vectors]
        skipped = 0
        for index in range(max(lane_lengths, default=0)):
            for lane in range(lanes):
                if index >= lane_lengths[lane]:
                    continue
                cycle = start_cycles[lane] + index
                phase = 2 if cycle == 0 else (
                    1 if cycle % period == 0 else 0)
                key = (enables[lane], lane_vectors[lane][index], phase)
                value = cache.get(key)
                if value is None:
                    lane_misses[lane] += 1
                    value = compute(key)
                    if cache_limit:
                        cache[key] = value
                        if len(cache) > cache_limit:
                            del cache[next(iter(cache))]
                else:
                    lane_hits[lane] += 1
                    if len(cache) > touch_floor:
                        del cache[key]
                        cache[key] = value
                enables[lane] = value[0]
                if cycle >= record_from[lane]:
                    plan = value[2]
                    if plan:
                        record = recorders[lane].record
                        base = cycle * arity
                        for pu_index, report, _ in plan:
                            for offset, state_id, code in batch_plan(
                                    pu_index, report):
                                record(base + offset, cycle, state_id, code)
                skipped += value[5]
        self.pus_skipped += skipped
        self.cache_hits += sum(lane_hits)
        self.cache_misses += sum(lane_misses)
        return lane_hits, lane_misses

    def run_batch(self, lane_vectors, period, recorders):
        """Drive N independent normalized streams through the kernel.

        Thin delegate over :meth:`run_lanes` with every lane a fresh
        stream from cycle 0 and nothing suppressed.
        """
        return self.run_lanes(lane_vectors, period, recorders)

    # ------------------------------------------------------------------
    # Prefilter-gated window execution
    # ------------------------------------------------------------------
    def run_windows(self, lane_vectors, period, recorders, start_cycles,
                    record_from):
        """Replay windows of one stream at absolute cycle offsets.

        Thin delegate over :meth:`run_lanes`; see there for the
        warm-up-replay and suppression semantics.
        """
        return self.run_lanes(lane_vectors, period, recorders,
                              start_cycles=start_cycles,
                              record_from=record_from)

    # ------------------------------------------------------------------
    # Synchronization with the literal model
    # ------------------------------------------------------------------
    def sync(self):
        """Write packed dynamic state + pending counters back out."""
        if not self.dirty:
            return
        cols = self.cols
        for index, pu in enumerate(self.pus):
            pu.enable = unpack_bits(self.enables[index], cols)
            pu.active = unpack_bits(self.actives[index], cols)
        self._flush_counters()
        self.dirty = False

    def reload_dynamic(self):
        """Re-seed packed state from the literal arrays (host mutation)."""
        self._flush_counters()
        self.enables = tuple(pack_bits(pu.enable) for pu in self.pus)
        self.actives = tuple(pack_bits(pu.active) for pu in self.pus)
        self.dirty = False

    def _flush_counters(self):
        cycles = self._pending_cycles
        if cycles:
            for pu in self.pus:
                pu.subarray.port2_reads += cycles
            self._pending_cycles = 0
        pending_crossbar = self._pending_crossbar
        for index, count in enumerate(pending_crossbar):
            if count:
                self.pus[index].crossbar.subarray.port2_reads += count
                pending_crossbar[index] = 0
        pending_gs = self._pending_gs
        for index, count in enumerate(pending_gs):
            if count:
                self.clusters[index].global_switch.crossbar.subarray \
                    .port2_reads += count
                pending_gs[index] = 0

    # ------------------------------------------------------------------
    def cache_info(self):
        """Step-cache statistics (same shape as the engine's)."""
        total = self.cache_hits + self.cache_misses
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "hit_rate": self.cache_hits / total if total else 0.0,
            "size": len(self._cache),
            "limit": self._cache_limit,
        }
