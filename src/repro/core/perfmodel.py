"""Analytic reporting-performance models (Table 4 and Figure 10).

The bit-faithful :class:`~repro.core.device.SunderDevice` is too slow for
million-cycle parameter sweeps, so the timing behaviour is factored out:

- :class:`ReportingPerfModel` replays a *report profile* — for each PU,
  the cycles in which it generated at least one report — against the
  reporting-region counters only (capacity, FIFO drain, flush stalls).
  The profile comes from the functional simulator plus a placement, so
  the inputs are exact; only the buffer timing is abstracted.
- :func:`sensitivity_slowdown` is the closed-form worst-case model behind
  Figure 10: a single subarray with ``m`` reporting states whose report
  probability per cycle is swept from 0 to 1, drained by a host reading
  ``host_bits_per_cycle`` (load-instruction path, Section 6).  The
  bandwidth default is calibrated so the paper's two published anchor
  points (7x at 100% without summarization, 1.4x with) are reproduced;
  see EXPERIMENTS.md.
"""

import numpy as np

from ..errors import ArchitectureError
from ..obs import trace_span

#: Host load-path bandwidth for the Figure 10 model, in bits per device
#: cycle.  Calibrated from the paper's anchor points (see module docs).
HOST_BITS_PER_CYCLE = 4.6
#: Row width of the report region in bits.
ROW_BITS = 256


class PerfResult:
    """Outcome of a reporting-performance evaluation."""

    def __init__(self, cycles, stall_cycles, flushes, fills):
        self.cycles = cycles
        self.stall_cycles = stall_cycles
        self.flushes = flushes
        self.fills = fills

    @property
    def slowdown(self):
        """Reporting overhead: (kernel + stalls) / kernel."""
        if self.cycles == 0:
            return 1.0
        return (self.cycles + self.stall_cycles) / self.cycles

    def __repr__(self):
        return "PerfResult(cycles=%d, stalls=%d, flushes=%d, slowdown=%.3fx)" % (
            self.cycles, self.stall_cycles, self.flushes, self.slowdown,
        )


class ReportingPerfModel:
    """Event-driven model of all reporting regions of a device.

    Parameters
    ----------
    config:
        The :class:`~repro.core.config.SunderConfig`; ``fifo`` selects the
        Table 4 column (with or without the FIFO strategy).
    """

    def __init__(self, config):
        self.config = config

    def evaluate(self, pu_fill_cycles, total_cycles, capacity_scale=1.0):
        """Replay per-PU fill events.

        ``pu_fill_cycles`` maps a PU key to the (sorted or unsorted)
        iterable of cycles in which that PU wrote a report entry.  Returns
        a :class:`PerfResult`.

        FIFO draining is modelled as a fluid: the host's global drain
        bandwidth (``fifo_drain_rows_per_cycle`` rows/cycle) is shared
        proportionally among non-empty regions between fill events.

        ``capacity_scale`` shrinks the fixed region geometry (capacity,
        per-flush cost, drain bandwidth) to match workloads generated at
        a reduced scale, preserving the fill/flush dynamics of a
        full-size 1MB run.
        """
        with trace_span("reporting.drain_model", fifo=self.config.fifo,
                        pus=len(pu_fill_cycles), cycles=total_cycles):
            return self._evaluate(pu_fill_cycles, total_cycles, capacity_scale)

    def _evaluate(self, pu_fill_cycles, total_cycles, capacity_scale):
        config = self.config
        if capacity_scale <= 0:
            raise ArchitectureError("capacity_scale must be positive")
        keys = sorted(pu_fill_cycles)
        if not keys:
            return PerfResult(total_cycles, 0, 0, 0)
        index_of = {key: i for i, key in enumerate(keys)}
        events = {}
        fills = 0
        for key, cycles in pu_fill_cycles.items():
            for cycle in cycles:
                if cycle >= total_cycles:
                    raise ArchitectureError(
                        "fill at cycle %d beyond stream of %d cycles"
                        % (cycle, total_cycles)
                    )
                events.setdefault(cycle, []).append(index_of[key])
                fills += 1

        # Capacity is storage: it shrinks with the workload scale so the
        # fill/flush dynamics of a full-size run are preserved.  The
        # drain bandwidth is a physical per-cycle rate and stays fixed;
        # the per-flush stall is the full-size cost expressed in scaled
        # cycles (fractional), so slowdown figures remain comparable to
        # the paper's 1M-cycle runs.
        capacity = max(2, round(config.report_capacity * capacity_scale))
        full_flush_stall = max(
            1, -(-config.report_rows // config.flush_rows_per_cycle)
        )
        flush_stall = full_flush_stall * capacity_scale
        drain_rate = (
            config.fifo_drain_rows_per_cycle * config.entries_per_row
            if config.fifo else 0.0
        )

        counts = np.zeros(len(keys))
        stall_cycles = 0.0
        flushes = 0
        previous_cycle = 0
        for cycle in sorted(events):
            gap = cycle - previous_cycle
            previous_cycle = cycle
            if drain_rate > 0.0 and gap > 0:
                total = counts.sum()
                if total > 0.0:
                    drained = min(total, drain_rate * gap)
                    counts -= drained * counts / total
                    np.clip(counts, 0.0, None, out=counts)
            for pu_index in events[cycle]:
                counts[pu_index] += 1.0
            over = counts > capacity
            if over.any():
                n_over = int(over.sum())
                flushes += n_over
                stall_cycles += n_over * flush_stall
                counts[over] = 1.0
        return PerfResult(total_cycles, stall_cycles, flushes, fills)


def pu_fill_cycles_from_events(events, placement):
    """Group report events by the PU their state is placed in.

    ``events`` is an iterable of :class:`~repro.sim.reports.ReportEvent`;
    returns ``{(cluster, pu): set(cycles)}`` — one region write per PU per
    report cycle, which is exactly the hardware's behaviour (one entry
    captures all of a PU's report bits for that cycle).
    """
    fills = {}
    for event in events:
        key = placement.report_pu_of(event.state_id)
        fills.setdefault(key, set()).add(event.cycle)
    return {key: sorted(cycles) for key, cycles in fills.items()}


def sensitivity_slowdown(
    report_cycle_fraction,
    summarize=False,
    config=None,
    host_bits_per_cycle=HOST_BITS_PER_CYCLE,
):
    """Closed-form Figure 10 model for one subarray.

    The subarray accumulates one entry per reporting cycle; the host
    concurrently drains at ``host_bits_per_cycle``.  When accumulation
    outruns the drain, each region fill costs a stop-and-read of the used
    rows over the same host path.  With summarization the host reads one
    NOR-summary row per 16-row batch instead of the raw region.
    """
    from .config import SunderConfig

    if not 0.0 <= report_cycle_fraction <= 1.0:
        raise ArchitectureError("report-cycle fraction must be within [0, 1]")
    if config is None:
        config = SunderConfig()
    rate = report_cycle_fraction
    drain_entries_per_cycle = host_bits_per_cycle / config.entry_bits
    net_fill = max(0.0, rate - drain_entries_per_cycle)
    if net_fill == 0.0:
        return 1.0
    if summarize:
        rows_read = -(-config.report_rows // config.summarize_batch_rows)
        batches = rows_read
        extra_stall = batches * config.summarize_stall_cycles
    else:
        rows_read = config.report_rows
        extra_stall = 0
    flush_cost = rows_read * ROW_BITS / host_bits_per_cycle + extra_stall
    return 1.0 + net_fill * flush_cost / config.report_capacity
