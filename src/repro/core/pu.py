"""One Sunder processing unit: match/report subarray + local crossbar.

A PU hosts up to 256 states (one per column).  Each cycle it

1. matches the broadcast input vector against every column (Port 2,
   multi-row wired-NOR),
2. ANDs the match vector with the enable vector computed last cycle,
3. ORs the reporting-enabled columns of the active vector; if any fired,
   appends an entry to the in-subarray reporting region (Port 1 — the
   dual ports are what let matching and report writing pipeline), and
4. propagates the active vector through the local crossbar.

The device layer combines step-4 results with the cluster's global
switch and the start-state vectors to produce next cycle's enables.
"""

import numpy as np

from ..automata.ste import StartKind
from ..errors import ArchitectureError
from .config import SunderConfig
from .interconnect import CrossbarSwitch
from .match_array import MatchArray
from .reporting import ReportingRegion
from .subarray import SramSubarray


class ProcessingUnit:
    """One 256-state processing unit."""

    def __init__(self, config=None, sink=None):
        self.config = config if config is not None else SunderConfig()
        self.subarray = SramSubarray(
            self.config.subarray_rows, self.config.subarray_cols
        )
        self.match_array = MatchArray(self.subarray, self.config.rate_nibbles)
        self.reporting = ReportingRegion(self.subarray, self.config, sink=sink)
        self.crossbar = CrossbarSwitch(self.config.subarray_cols)

        cols = self.config.subarray_cols
        self.state_of_column = [None] * cols
        self.all_input_vector = np.zeros(cols, dtype=bool)
        self.start_of_data_vector = np.zeros(cols, dtype=bool)
        self.report_column_mask = np.zeros(cols, dtype=bool)
        self.enable = np.zeros(cols, dtype=bool)
        self.active = np.zeros(cols, dtype=bool)

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    @property
    def report_column_base(self):
        """First reporting-enabled column (the last m columns report)."""
        return self.config.subarray_cols - self.config.report_bits

    def configure_state(self, column, state):
        """Program one STE into ``column`` and remember its identity."""
        if state.report and column < self.report_column_base:
            raise ArchitectureError(
                "reporting state %r must occupy a reporting-enabled column "
                "(>= %d), got %d" % (state.id, self.report_column_base, column)
            )
        if not state.report and column >= self.report_column_base:
            raise ArchitectureError(
                "non-reporting state %r may not occupy reporting column %d"
                % (state.id, column)
            )
        self.match_array.configure_state(column, state.symbols)
        self.state_of_column[column] = state
        if state.start is StartKind.ALL_INPUT:
            self.all_input_vector[column] = True
        elif state.start is StartKind.START_OF_DATA:
            self.start_of_data_vector[column] = True
        if state.report:
            self.report_column_mask[column] = True

    def program_edge(self, src_column, dst_column):
        """Program one intra-PU transition."""
        self.crossbar.program_edge(src_column, dst_column)

    # ------------------------------------------------------------------
    # Runtime
    # ------------------------------------------------------------------
    def match_cycle(self, vector, cycle, start_boundary):
        """Steps 1-3; returns ``(active_vector, report_stall_cycles)``."""
        enabled = self.enable.copy()
        if cycle == 0:
            enabled |= self.start_of_data_vector
        if start_boundary:
            enabled |= self.all_input_vector
        match = self.match_array.match(vector)
        active = enabled & match
        self.active = active
        stall = 0
        # The reporting columns are the last m; unconfigured columns can
        # never match and non-reporting states cannot occupy them
        # (configure_state enforces both), so the slice alone decides
        # whether anything reported — no full-width mask AND needed.
        report_bits = active[self.report_column_base:]
        if report_bits.any():
            stall = self.reporting.append(report_bits, cycle)
        return active, stall

    def propagate(self):
        """Step 4: local crossbar propagation of the active vector."""
        return self.crossbar.propagate(self.active)

    def set_enable(self, enable_vector):
        """Install next cycle's enable vector (device layer)."""
        self.enable = np.asarray(enable_vector, dtype=bool)

    def decode_report_columns(self, report_vector):
        """Map an m-bit report vector back to reporting state ids."""
        base = self.report_column_base
        ids = []
        for offset, bit in enumerate(report_vector):
            if bit:
                state = self.state_of_column[base + offset]
                if state is None:
                    raise ArchitectureError(
                        "report bit %d set for an unconfigured column" % offset
                    )
                ids.append(state.id)
        return ids
