"""Multi-round reconfiguration for automata exceeding device capacity.

When an application's automata do not fit on the device, spatial automata
processors re-run the input once per *round* of configurations (paper
Sections 1 and 5.1.1: "if device capacity is not enough ... multiple
rounds of reconfigurations are required").  This module partitions an
automaton's connected components into device-sized rounds, executes each
round, merges the report streams, and accounts the cost:

    total cycles = rounds x (configure + stream) + stalls

Configuration cost is the Port-1 writes needed to program the matching
rows and both crossbars of every used PU.
"""

from ..automata.automaton import Automaton
from ..automata.ops import connected_components
from ..errors import CapacityError
from ..sim.reports import ReportRecorder
from .config import PUS_PER_CLUSTER
from .device import SunderDevice
from .mapping import place


def partition_rounds(automaton, config, max_clusters):
    """Split an automaton into per-round automata that each fit.

    Components are packed first-fit-decreasing into rounds of at most
    ``max_clusters`` clusters.  Returns a list of Automaton objects.
    Raises :class:`CapacityError` if a single component cannot fit even
    alone (placement's per-cluster rule).
    """
    components = connected_components(automaton)
    rounds = []

    def new_round():
        machine = Automaton(
            name="%s.round%d" % (automaton.name, len(rounds)),
            bits=automaton.bits,
            arity=automaton.arity,
            start_period=automaton.start_period,
        )
        rounds.append(machine)
        return machine

    def fits(machine):
        try:
            place(machine, config, max_clusters=max_clusters)
        except CapacityError:
            return False
        return True

    for component in components:
        piece = _subautomaton(automaton, component)
        placed = False
        for machine in rounds:
            candidate = machine.copy()
            candidate.merge_in(piece, "")
            if fits(candidate):
                machine.merge_in(piece, "")
                placed = True
                break
        if not placed:
            machine = new_round()
            machine.merge_in(piece, "")
            if not fits(machine):
                raise CapacityError(
                    "a single component (%d states) exceeds the device "
                    "(%d clusters)" % (len(component), max_clusters)
                )
    return rounds


def _subautomaton(automaton, state_ids):
    """Extract the induced sub-automaton over ``state_ids``."""
    piece = Automaton(
        name=automaton.name + ".part",
        bits=automaton.bits,
        arity=automaton.arity,
        start_period=automaton.start_period,
    )
    chosen = set(state_ids)
    for state_id in state_ids:
        piece.add_state(automaton.state(state_id).clone())
    for state_id in state_ids:
        for successor in automaton.successors(state_id):
            if successor in chosen:
                piece.add_transition(state_id, successor)
    return piece


def configuration_write_cycles(placement, config):
    """Port-1 writes to program one round's PUs.

    Each used PU needs its matching rows (16 x rate), its 256-row local
    crossbar, and the cluster's global switch rows written once.
    """
    pus = len(placement.pus_used())
    matching_rows = config.matching_rows
    crossbar_rows = config.subarray_cols
    global_rows = placement.clusters_used * PUS_PER_CLUSTER * config.subarray_cols
    return pus * (matching_rows + crossbar_rows) + global_rows


class MultiRoundResult:
    """Outcome of a multi-round execution."""

    def __init__(self, rounds, stream_cycles, configure_cycles, stall_cycles,
                 recorder):
        self.rounds = rounds
        self.stream_cycles = stream_cycles
        self.configure_cycles = configure_cycles
        self.stall_cycles = stall_cycles
        self.recorder = recorder

    @property
    def total_cycles(self):
        """End-to-end cycles including reconfiguration and stalls."""
        return (self.rounds * self.stream_cycles
                + self.configure_cycles + self.stall_cycles)

    @property
    def slowdown_vs_single_round(self):
        """Cost relative to an infinitely large device."""
        if self.stream_cycles == 0:
            return 1.0
        return self.total_cycles / self.stream_cycles

    def __repr__(self):
        return ("MultiRoundResult(rounds=%d, total=%d cycles, %.2fx vs "
                "single round)" % (self.rounds, self.total_cycles,
                                   self.slowdown_vs_single_round))


def run_multi_round(automaton, vectors, config, max_clusters,
                    position_limit=None, fidelity="auto", batch=False):
    """Execute ``automaton`` over ``vectors`` in as many rounds as needed.

    Returns a :class:`MultiRoundResult` whose recorder holds the merged
    reports of every round (identical to a single-round run on unlimited
    hardware, which the tests verify).  ``fidelity`` selects each
    round's device execution path.

    With ``batch=True``, ``vectors`` is a *list of streams* and every
    round drives all of them through one :meth:`SunderDevice.run_batch`
    call (packed fidelity only).  The result's ``recorder`` is then a
    list of per-lane recorders, ``stream_cycles`` is the summed lane
    length, and ``stall_cycles`` stays 0 — the batched path bypasses
    the reporting-region stall model.
    """
    if batch:
        return _run_multi_round_batch(automaton, vectors, config,
                                      max_clusters, position_limit, fidelity)
    vectors = list(vectors)
    merged = ReportRecorder(position_limit=position_limit)

    def execute(device):
        result = device.run(vectors, position_limit=position_limit)
        _merge_events(merged, result.reports().events)
        return result.stall_cycles

    rounds, configure_cycles, stall_cycles = _run_rounds(
        automaton, config, max_clusters, fidelity, execute)
    return MultiRoundResult(
        rounds, len(vectors), configure_cycles, stall_cycles, merged,
    )


def _run_multi_round_batch(automaton, streams, config, max_clusters,
                           position_limit, fidelity):
    """Multi-round execution over N independent streams per round."""
    streams = [list(stream) for stream in streams]
    merged = [ReportRecorder(position_limit=position_limit)
              for _ in streams]

    def execute(device):
        lane_recorders = device.run_batch(streams,
                                          position_limit=position_limit)
        for target, part in zip(merged, lane_recorders):
            _merge_events(target, part.events)
        return 0  # the batched path bypasses the stall model

    rounds, configure_cycles, _ = _run_rounds(
        automaton, config, max_clusters, fidelity, execute)
    return MultiRoundResult(
        rounds, sum(len(stream) for stream in streams),
        configure_cycles, 0, merged,
    )


def _run_rounds(automaton, config, max_clusters, fidelity, execute):
    """The shared round skeleton: partition, configure, run, account.

    ``execute(device)`` runs one configured round and returns its stall
    cycles.  Returns ``(rounds, configure_cycles, stall_cycles)``.
    """
    rounds = partition_rounds(automaton, config, max_clusters)
    configure_cycles = 0
    stall_cycles = 0
    for machine in rounds:
        device = SunderDevice(config, max_clusters=max_clusters,
                              fidelity=fidelity)
        placement = device.configure(machine)
        configure_cycles += configuration_write_cycles(placement, config)
        stall_cycles += execute(device)
    return len(rounds), configure_cycles, stall_cycles


def _merge_events(target, events):
    """Replay recorded events into the merged cross-round recorder."""
    for event in events:
        target.record(event.position, event.cycle, event.state_id,
                      event.report_code)
