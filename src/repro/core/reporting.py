"""Sunder's in-place reporting region (paper Section 5.1.2).

Reports live in the *same* subarray that performs matching: the rows the
nibble transformation freed up.  Each report cycle appends one entry —
``m`` report bits (one per reporting-enabled column) plus ``n`` bits of
cycle metadata — at the position tracked by the local counter (Eq. 1).

Two operating strategies, matching Table 4's columns:

- **stop-and-flush** (``fifo=False``): when the region fills, matching
  stalls while the host drains every used row.
- **FIFO** (``fifo=True``): the host drains continuously from the head
  through Port 1 *while* Port 2 keeps matching; stalls only happen when
  the fill rate outruns the drain rate and the region is full.

The region also implements **report summarization**: a column-wise
wired-NOR over batches of report rows through Port 2 (stalling matching
for 1-2 cycles per batch), which answers "did anything report?" without
shipping the raw entries.
"""

import numpy as np

from ..errors import ArchitectureError
from .subarray import MAX_ACTIVATED_ROWS


class ReportEntry:
    """One decoded report-region entry."""

    __slots__ = ("cycle", "report_vector")

    def __init__(self, cycle, report_vector):
        self.cycle = cycle
        self.report_vector = report_vector

    def __repr__(self):
        bits = "".join("1" if b else "0" for b in self.report_vector)
        return "ReportEntry(cycle=%d, bits=%s)" % (self.cycle, bits)

    def __eq__(self, other):
        return (
            isinstance(other, ReportEntry)
            and self.cycle == other.cycle
            and list(self.report_vector) == list(other.report_vector)
        )


class ReportingRegion:
    """The reporting rows of one match/report subarray.

    Parameters
    ----------
    subarray:
        Shared :class:`~repro.core.subarray.SramSubarray`.
    config:
        The device :class:`~repro.core.config.SunderConfig` (supplies m,
        n, row budget, and drain strategy).
    """

    def __init__(self, subarray, config, sink=None):
        self.subarray = subarray
        self.config = config
        self.first_row = config.matching_rows
        self.rows = config.report_rows
        self.entries_per_row = config.entries_per_row
        self.capacity = config.report_capacity
        #: Optional callable receiving lists of :class:`ReportEntry` the
        #: moment they leave the region (flush or FIFO drain) — models the
        #: host side of the transfer.
        self.sink = sink
        if self.rows < 1:
            raise ArchitectureError("no rows left for the reporting region")
        self.reset_counters()

    def reset_counters(self):
        """Reset pointers and statistics (reconfiguration)."""
        self.write_index = 0     # local counter: next free entry slot
        self.read_index = 0      # FIFO head (entries drained by the host)
        self.count = 0           # entries currently buffered
        self.total_writes = 0
        self.flushes = 0
        self.stall_cycles = 0
        self.dropped = 0
        self._drain_credit = 0.0
        # Entry slots touched since the last flush: summarization must
        # cover drained-but-unflushed slots ("did X report since the last
        # flush"), and only a flush wipes them.
        self._high_water = 0

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def _locate(self, entry_index):
        """(row, start_col) of entry slot ``entry_index``."""
        row = self.first_row + (entry_index // self.entries_per_row)
        slot = entry_index % self.entries_per_row
        return row, slot * self.config.entry_bits

    @property
    def used_rows(self):
        """Rows currently holding at least one live entry."""
        return -(-self.count // self.entries_per_row)

    @property
    def is_full(self):
        return self.count >= self.capacity

    # ------------------------------------------------------------------
    # Automata-mode write path
    # ------------------------------------------------------------------
    def append(self, report_bits, cycle):
        """Write one entry (report vector + cycle metadata) via Port 1.

        ``report_bits`` is a length-m boolean sequence.  Returns the stall
        cycles charged to this append (0 unless a flush was needed).
        """
        report_bits = np.asarray(report_bits, dtype=bool)
        if report_bits.shape != (self.config.report_bits,):
            raise ArchitectureError(
                "report vector must have %d bits, got %s"
                % (self.config.report_bits, report_bits.shape)
            )
        stall = 0
        if self.is_full:
            stall = self.flush()
        row, start_col = self._locate(self.write_index % self.capacity)
        metadata = _encode_metadata(cycle, self.config.metadata_bits)
        entry = np.concatenate([report_bits, metadata])
        self.subarray.write_bits(row, start_col, entry)
        self._high_water = min(
            self.capacity, max(self._high_water, self.write_index + 1)
        )
        self.write_index = (self.write_index + 1) % self.capacity
        if self.write_index == 0:
            self._high_water = self.capacity
        self.count += 1
        self.total_writes += 1
        return stall

    def tick(self, max_entries=None):
        """Advance one matching cycle: background FIFO drain (if enabled).

        Port 1 is free while Port 2 matches, so the host can stream
        entries out from the head concurrently.  ``max_entries`` is the
        share of the host's global drain bandwidth granted this cycle
        (the device divides its budget across non-empty regions); when
        None, the region uses its own config rate (standalone use).
        Returns the number of entries drained.
        """
        if not self.config.fifo or self.count == 0:
            return 0
        if max_entries is None:
            self._drain_credit += (
                self.config.fifo_drain_rows_per_cycle * self.entries_per_row
            )
            drainable = int(self._drain_credit)
        else:
            drainable = int(max_entries)
        if drainable <= 0:
            return 0
        drained = min(drainable, self.count)
        if max_entries is None:
            self._drain_credit -= drained
        if self.sink is not None:
            self.sink(self._decode_range(0, drained))
        self.read_index = (self.read_index + drained) % self.capacity
        self.count -= drained
        return drained

    def flush(self):
        """Stop-and-flush the whole used region; returns stall cycles.

        Matching halts while the used rows stream out over the wide
        on-chip path (``flush_rows_per_cycle`` rows per stalled cycle).
        """
        if self.count == 0:
            return 0
        rows_to_read = self.used_rows
        stall = max(1, -(-rows_to_read // self.config.flush_rows_per_cycle))
        self.flushes += 1
        self.stall_cycles += stall
        if self.sink is not None:
            self.sink(self._decode_range(0, self.count))
        # The flush leaves the region logically empty: clear every touched
        # row so a later summarization cannot observe stale slots.
        touched_rows = -(-self._high_water // self.entries_per_row)
        if touched_rows:
            self.subarray.cells[
                self.first_row:self.first_row + touched_rows, :
            ] = False
        self.read_index = 0
        self.write_index = 0
        self.count = 0
        self._drain_credit = 0.0
        self._high_water = 0
        return stall

    # ------------------------------------------------------------------
    # Host-side read paths
    # ------------------------------------------------------------------
    def _decode_range(self, start_offset, count):
        """Decode ``count`` live entries starting ``start_offset`` from head."""
        entries = []
        for offset in range(start_offset, start_offset + count):
            index = (self.read_index + offset) % self.capacity
            row, start_col = self._locate(index)
            data = self.subarray.read_row(row)
            bits = data[start_col:start_col + self.config.entry_bits]
            report_vector = bits[: self.config.report_bits].copy()
            cycle = _decode_metadata(bits[self.config.report_bits:])
            entries.append(ReportEntry(cycle, report_vector))
        return entries

    def read_entries(self):
        """Decode every live entry, oldest first (host Port-1 reads)."""
        return self._decode_range(0, self.count)

    def read_entry(self, offset):
        """Selective reporting: decode the entry at ``offset`` from head."""
        if not 0 <= offset < self.count:
            raise ArchitectureError(
                "entry offset %d out of range (%d live entries)"
                % (offset, self.count)
            )
        index = (self.read_index + offset) % self.capacity
        row, start_col = self._locate(index)
        data = self.subarray.read_row(row)
        bits = data[start_col:start_col + self.config.entry_bits]
        return ReportEntry(
            _decode_metadata(bits[self.config.report_bits:]),
            bits[: self.config.report_bits].copy(),
        )

    def summarize(self):
        """Column-wise OR over all touched report rows via multi-row NOR.

        Returns ``(summary_bits, stall_cycles)``: per-report-column "did
        this state report since the last flush", computed in batches of
        ``summarize_batch_rows`` rows.  Each batch borrows Port 2, so
        matching stalls ``summarize_stall_cycles`` per batch.  Rows are
        scanned up to the post-flush high-water mark, so FIFO-drained
        entries still count (they reported since the last flush) while
        flushed epochs never leak.
        """
        used = -(-self._high_water // self.entries_per_row)
        if used == 0:
            empty = np.zeros(self.config.report_bits, dtype=bool)
            return empty, 0
        batch = min(self.config.summarize_batch_rows, MAX_ACTIVATED_ROWS)
        summary = np.zeros(self.subarray.cols, dtype=bool)
        stall = 0
        start = self.first_row
        remaining = used
        while remaining > 0:
            span = min(batch, remaining)
            rows = list(range(start, start + span))
            summary |= self.subarray.wired_or(rows)
            stall += self.config.summarize_stall_cycles
            start += span
            remaining -= span
        self.stall_cycles += stall
        # Any slot of a row may hold report bits; fold slots together so
        # the result is per-report-column.
        folded = np.zeros(self.config.report_bits, dtype=bool)
        for slot in range(self.entries_per_row):
            base = slot * self.config.entry_bits
            folded |= summary[base:base + self.config.report_bits]
        return folded, stall


def _encode_metadata(cycle, bits):
    """Cycle count as an LSB-first bit vector, truncated to ``bits``."""
    return np.array([(cycle >> i) & 1 for i in range(bits)], dtype=bool)


def _decode_metadata(bit_vector):
    """Inverse of :func:`_encode_metadata`."""
    value = 0
    for index, bit in enumerate(bit_vector):
        if bit:
            value |= 1 << index
    return value
