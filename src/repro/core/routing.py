"""Interconnect design-space analysis: is a full crossbar necessary?

Section 5.2 argues for a memory-mapped *full* crossbar: "since every
column intersects with every row, the interconnect provides connections
between every pair of 256 states, thus avoiding interconnect congestion
even for highly connected NFA".  Cheaper interconnects (banked crossbars,
bounded-fanout switch boxes, neighbour meshes — the FPGA/eAP design
space) may fail to route some automata.

This module evaluates, for a placed automaton, whether a given
interconnect model routes it, and with how much slack — the evidence
behind the full-crossbar choice (see the companion ablation bench).
"""

from ..errors import ArchitectureError


class InterconnectModel:
    """Base class: can a placed automaton's edges be routed?"""

    name = "abstract"

    def check_edge(self, src_slot, dst_slot):
        """True when one intra-cluster edge is routable."""
        raise NotImplementedError

    def evaluate(self, automaton, placement):
        """Routability report for every edge of ``automaton``.

        Returns a dict with total/routable edge counts and the failure
        list (truncated to 16 examples).
        """
        total = 0
        failed = []
        for src, dst in automaton.transitions():
            total += 1
            src_slot = placement.slot_of(src)
            dst_slot = placement.slot_of(dst)
            if src_slot.cluster != dst_slot.cluster:
                raise ArchitectureError("edge crosses clusters")
            if not self.check_edge(src_slot, dst_slot):
                if len(failed) < 16:
                    failed.append((src, dst))
        return {
            "interconnect": self.name,
            "edges": total,
            "routable": total - self._failure_count,
            "routable_pct": (
                100.0 * (total - self._failure_count) / total if total
                else 100.0
            ),
            "failures": failed,
        }

    def _reset(self):
        self._failure_count = 0


class FullCrossbar(InterconnectModel):
    """The paper's design: every (row, column) pair exists."""

    name = "full-crossbar"

    def evaluate(self, automaton, placement):
        self._reset()
        return super().evaluate(automaton, placement)

    def check_edge(self, src_slot, dst_slot):
        return True


class BankedCrossbar(InterconnectModel):
    """Columns divided into banks; cross-bank wires share limited ports.

    Intra-bank edges always route; an edge between banks consumes one of
    ``ports_per_bank_pair`` shared wires (counted per direction).  Models
    segmented-crossbar area savings.
    """

    def __init__(self, bank_size=64, ports_per_bank_pair=16):
        self.bank_size = bank_size
        self.ports_per_bank_pair = ports_per_bank_pair
        self.name = "banked-%d/%d" % (bank_size, ports_per_bank_pair)

    def evaluate(self, automaton, placement):
        self._reset()
        self._used_ports = {}
        return super().evaluate(automaton, placement)

    def check_edge(self, src_slot, dst_slot):
        if src_slot.pu != dst_slot.pu:
            return True  # inter-PU edges use the global switch
        src_bank = src_slot.column // self.bank_size
        dst_bank = dst_slot.column // self.bank_size
        if src_bank == dst_bank:
            return True
        key = (src_slot.pu, src_bank, dst_bank)
        used = self._used_ports.get(key, 0)
        if used >= self.ports_per_bank_pair:
            self._failure_count += 1
            return False
        self._used_ports[key] = used + 1
        return True


class BoundedFanIn(InterconnectModel):
    """Switch-box style interconnect: each state accepts at most k parents.

    FPGA routing fabrics and reduced switch matrices bound fan-in; highly
    shared states (start fan-outs, SPM gap hubs) exceed small k.
    """

    def __init__(self, max_fan_in=4):
        self.max_fan_in = max_fan_in
        self.name = "fan-in<=%d" % max_fan_in

    def evaluate(self, automaton, placement):
        self._reset()
        self._fan_in = {}
        return super().evaluate(automaton, placement)

    def check_edge(self, src_slot, dst_slot):
        key = (dst_slot.cluster, dst_slot.pu, dst_slot.column)
        count = self._fan_in.get(key, 0) + 1
        self._fan_in[key] = count
        if count > self.max_fan_in:
            self._failure_count += 1
            return False
        return True


class NeighborMesh(InterconnectModel):
    """Mesh-style locality: an edge reaches at most ``reach`` columns away.

    The cheapest possible wiring (nearest-neighbour tracks); placement
    order decides routability, so this measures how far from "local" real
    automata connectivity is.
    """

    def __init__(self, reach=8):
        self.reach = reach
        self.name = "mesh-reach-%d" % reach

    def evaluate(self, automaton, placement):
        self._reset()
        return super().evaluate(automaton, placement)

    def check_edge(self, src_slot, dst_slot):
        if src_slot.pu != dst_slot.pu:
            self._failure_count += 1
            return False
        if abs(src_slot.column - dst_slot.column) > self.reach:
            self._failure_count += 1
            return False
        return True


def routability_study(automaton, placement, models=None):
    """Evaluate several interconnect models on one placed automaton."""
    if models is None:
        models = [
            FullCrossbar(),
            BankedCrossbar(bank_size=64, ports_per_bank_pair=16),
            BoundedFanIn(max_fan_in=4),
            NeighborMesh(reach=8),
        ]
    return [model.evaluate(automaton, placement) for model in models]
