"""Intel LLC slice-hash model — paper Section 6's integration obstacle.

Sunder repurposes LLC slices, but Sandy-Bridge-class LLCs spread physical
addresses across slices with an undocumented XOR hash; configuring a
specific subarray needs *flat* access to one slice.  The paper points to
the reverse-engineered hash of Maurice et al. (RAID'15): each slice-index
bit is the XOR (parity) of a fixed subset of physical address bits.

This module implements that hash family, the published 2/4/8-slice bit
masks, and the inverse problem Sunder's runtime must solve: given a
target slice, enumerate addresses that land on it (by fixing the hash
parity with high address bits, exactly what the 1GB-page trick enables).
"""

from ..errors import ArchitectureError

#: Published parity masks (Maurice et al.): bit i of the slice index is
#: the parity of (address & mask).  Addresses are physical byte addresses.
MAURICE_MASKS = {
    2: (0x1B5F575440,),
    4: (0x1B5F575440, 0x2EB5FAA880),
    8: (0x1B5F575440, 0x2EB5FAA880, 0x3CCCC93100),
}


def _parity(value):
    value ^= value >> 32
    value ^= value >> 16
    value ^= value >> 8
    value ^= value >> 4
    value ^= value >> 2
    value ^= value >> 1
    return value & 1


class SliceHash:
    """The XOR slice hash for a 2-, 4-, or 8-slice LLC."""

    def __init__(self, num_slices):
        if num_slices not in MAURICE_MASKS:
            raise ArchitectureError(
                "slice hash published for 2/4/8 slices, not %r" % num_slices
            )
        self.num_slices = num_slices
        self.masks = MAURICE_MASKS[num_slices]

    def slice_of(self, address):
        """Slice index of a physical address."""
        if address < 0:
            raise ArchitectureError("negative physical address")
        index = 0
        for bit, mask in enumerate(self.masks):
            index |= _parity(address & mask) << bit
        return index

    def addresses_in_slice(self, target_slice, count, start=0, stride=64):
        """First ``count`` cache-line addresses (from ``start``) in a slice.

        This is the scan Sunder's configuration runtime performs over a
        large contiguous mapping to find rows belonging to the repurposed
        slice.  ``stride`` is the cache-line size (hash granularity).
        """
        if not 0 <= target_slice < self.num_slices:
            raise ArchitectureError(
                "slice %d out of range (%d slices)"
                % (target_slice, self.num_slices)
            )
        found = []
        address = start
        # The hash balances slices, so ~count*num_slices lines suffice;
        # 4x head-room keeps the scan bounded if start is adversarial.
        limit = start + 4 * count * self.num_slices * stride + stride
        while len(found) < count and address < limit:
            if self.slice_of(address) == target_slice:
                found.append(address)
            address += stride
        if len(found) < count:
            raise ArchitectureError(
                "could not find %d lines in slice %d" % (count, target_slice)
            )
        return found

    def slice_histogram(self, start, count, stride=64):
        """Line counts per slice over a contiguous range (balance check)."""
        histogram = [0] * self.num_slices
        for index in range(count):
            histogram[self.slice_of(start + index * stride)] += 1
        return histogram
