"""Whole-device serialization: persist a configured Sunder device.

Configuration (placement + subarray programming) is the expensive step
for large rulesets; persisting it lets a deployment reload a compiled
device image instead of re-running the transform/place/program pipeline.
The snapshot stores the config, the automaton (via MNRL), the placement,
and optionally the dynamic state (enables + reporting-region contents) so
in-flight matching can resume.

Format: a single JSON document (subarray bitmaps packed as hex strings),
versioned for forward compatibility.
"""

import json

import numpy as np

from ..automata import mnrl
from ..errors import ArchitectureError
from .config import SunderConfig
from .device import SunderDevice
from .mapping import Placement, StateSlot

FORMAT_VERSION = 1


def _pack_bits(array):
    """Bool array -> hex string."""
    return np.packbits(array.astype(np.uint8)).tobytes().hex()


def _unpack_bits(text, length):
    """Inverse of :func:`_pack_bits`."""
    raw = np.frombuffer(bytes.fromhex(text), dtype=np.uint8)
    return np.unpackbits(raw)[:length].astype(bool)


def _config_dict(config):
    return {
        "rate_nibbles": config.rate_nibbles,
        "report_bits": config.report_bits,
        "metadata_bits": config.metadata_bits,
        "fifo": config.fifo,
        "flush_rows_per_cycle": config.flush_rows_per_cycle,
        "fifo_drain_rows_per_cycle": config.fifo_drain_rows_per_cycle,
        "summarize_batch_rows": config.summarize_batch_rows,
        "summarize_stall_cycles": config.summarize_stall_cycles,
    }


def save_device(device, include_dynamic_state=True):
    """Serialize a configured device to a JSON string."""
    if device.placement is None:
        raise ArchitectureError("cannot snapshot an unconfigured device")
    # Under the packed fidelity the authoritative enable/active vectors
    # live in the compiled kernel; materialize them first.
    device.sync_dynamic_state()
    document = {
        "version": FORMAT_VERSION,
        "config": _config_dict(device.config),
        "automaton_mnrl": mnrl.dumps(device.automaton),
        "placement": {
            str(state_id): [slot.cluster, slot.pu, slot.column]
            for state_id, slot in device.placement.slots.items()
        },
        "clusters_used": device.placement.clusters_used,
    }
    if include_dynamic_state:
        dynamic = []
        for cluster_index, pu_index, pu in device.iter_pus():
            region = pu.reporting
            dynamic.append({
                "cluster": cluster_index,
                "pu": pu_index,
                "enable": _pack_bits(pu.enable),
                "active": _pack_bits(pu.active),
                "report_rows": _pack_bits(
                    pu.subarray.cells[region.first_row:, :].reshape(-1)
                ),
                "write_index": region.write_index,
                "read_index": region.read_index,
                "count": region.count,
                "high_water": region._high_water,
            })
        document["dynamic"] = dynamic
        document["global_cycle"] = device.global_cycle
    return json.dumps(document)


def load_device(text, fidelity="auto"):
    """Reconstruct a device from :func:`save_device` output.

    The automaton is re-programmed from its MNRL form using the *saved*
    placement (bit-identical layout), then any dynamic state is restored.
    ``fidelity`` selects the execution path of the rebuilt device; the
    packed kernel compiles lazily from the restored subarrays, so the
    dynamic state below lands before any compilation happens.
    """
    document = json.loads(text)
    if document.get("version") != FORMAT_VERSION:
        raise ArchitectureError(
            "unsupported snapshot version %r" % document.get("version")
        )
    config = SunderConfig(**document["config"])
    automaton = mnrl.loads(document["automaton_mnrl"])

    device = SunderDevice(config, fidelity=fidelity)
    placement = Placement(automaton, config)
    placement.clusters_used = document["clusters_used"]
    for state_id, (cluster, pu, column) in document["placement"].items():
        placement.slots[state_id] = StateSlot(cluster, pu, column)

    # Re-program using the saved placement (mirrors SunderDevice.configure
    # but without re-running the placer).
    from .device import _Cluster
    device.clusters = [_Cluster(config)
                       for _ in range(placement.clusters_used)]
    for state in automaton:
        slot = placement.slot_of(state.id)
        device.clusters[slot.cluster].pus[slot.pu].configure_state(
            slot.column, state
        )
    for src, dst in automaton.transitions():
        src_slot = placement.slot_of(src)
        dst_slot = placement.slot_of(dst)
        cluster = device.clusters[src_slot.cluster]
        if src_slot.pu == dst_slot.pu:
            cluster.pus[src_slot.pu].program_edge(
                src_slot.column, dst_slot.column
            )
        else:
            cluster.global_switch.program_edge(
                src_slot.pu, src_slot.column, dst_slot.pu, dst_slot.column
            )
    device.placement = placement
    device.automaton = automaton
    device._regions = [pu.reporting for _, _, pu in device.iter_pus()]

    for record in document.get("dynamic", []):
        pu = device.clusters[record["cluster"]].pus[record["pu"]]
        region = pu.reporting
        cols = device.config.subarray_cols
        pu.enable = _unpack_bits(record["enable"], cols)
        pu.active = _unpack_bits(record["active"], cols)
        rows = device.config.report_rows
        flat = _unpack_bits(record["report_rows"], rows * cols)
        pu.subarray.cells[region.first_row:, :] = flat.reshape(rows, cols)
        region.write_index = record["write_index"]
        region.read_index = record["read_index"]
        region.count = record["count"]
        region._high_water = record["high_water"]
    device.global_cycle = document.get("global_cycle", 0)
    return device
