"""Bit-level model of a dual-port 8T SRAM subarray (paper Section 5.1.3).

The 8T cell adds a read-only second port to the classic 6T cell: Port 1
reads/writes rows through the write wordlines (the left-side 8:256
decoder), while Port 2 senses BL2.  A cell pulls BL2 low when it stores
'1' *and* its row is activated, so with several rows activated at once
BL2 computes the **wired-NOR** of the activated rows — the primitive
behind both multi-nibble state matching and report summarization.

This model is deliberately literal (a numpy bit matrix plus the two port
operations) so the architectural layers above it can be checked against
the functional simulator bit for bit.
"""

import numpy as np

from ..errors import ArchitectureError

#: Maximum simultaneously-activated wordlines; Jeloka et al. verified 64
#: across 20 fabricated chips by lowering the wordline voltage.
MAX_ACTIVATED_ROWS = 64


class SramSubarray:
    """One ``rows x cols`` subarray of dual-port 8T cells.

    Access statistics (reads/writes per port) are counted so the
    performance model can derive energy and bandwidth figures.
    """

    def __init__(self, rows=256, cols=256):
        if rows < 1 or cols < 1:
            raise ArchitectureError("subarray dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.cells = np.zeros((rows, cols), dtype=bool)
        self.port1_reads = 0
        self.port1_writes = 0
        self.port2_reads = 0

    # ------------------------------------------------------------------
    # Port 1: read/write through the row decoder (normal SRAM behaviour).
    # ------------------------------------------------------------------
    def _check_row(self, row):
        if not 0 <= row < self.rows:
            raise ArchitectureError(
                "row %d out of range for a %dx%d subarray"
                % (row, self.rows, self.cols)
            )

    def write_row(self, row, bits):
        """Write a full row through Port 1."""
        self._check_row(row)
        bits = np.asarray(bits, dtype=bool)
        if bits.shape != (self.cols,):
            raise ArchitectureError(
                "row data must have %d bits, got shape %s"
                % (self.cols, bits.shape)
            )
        self.cells[row] = bits
        self.port1_writes += 1

    def write_bits(self, row, start_col, bits):
        """Write a bit slice ``[start_col, start_col+len)`` of one row.

        Models a masked write: only the selected bitlines are pre-charged
        (how the reporting region appends one entry within a row).
        """
        self._check_row(row)
        bits = np.asarray(bits, dtype=bool)
        end_col = start_col + bits.shape[0]
        if start_col < 0 or end_col > self.cols:
            raise ArchitectureError(
                "column slice [%d, %d) out of range" % (start_col, end_col)
            )
        self.cells[row, start_col:end_col] = bits
        self.port1_writes += 1

    def read_row(self, row):
        """Read a full row through Port 1 (row buffer A)."""
        self._check_row(row)
        self.port1_reads += 1
        return self.cells[row].copy()

    # ------------------------------------------------------------------
    # Port 2: multi-row activation, wired-NOR on BL2 (row buffer B).
    # ------------------------------------------------------------------
    def wired_nor(self, rows):
        """NOR of the activated ``rows``, per column.

        BL2 stays precharged-high only for columns where *no* activated
        cell stores a '1'.  Activating more than
        :data:`MAX_ACTIVATED_ROWS` rows raises — the circuit's stability
        limit.
        """
        rows = list(rows)
        if not rows:
            raise ArchitectureError("wired-NOR needs at least one activated row")
        if len(rows) > MAX_ACTIVATED_ROWS:
            raise ArchitectureError(
                "cannot activate %d rows at once (limit %d)"
                % (len(rows), MAX_ACTIVATED_ROWS)
            )
        for row in rows:
            self._check_row(row)
        self.port2_reads += 1
        return ~np.any(self.cells[rows, :], axis=0)

    def wired_or(self, rows):
        """OR of the activated rows (inverted sense amplifier output)."""
        return ~self.wired_nor(rows)

    # ------------------------------------------------------------------
    def clear(self):
        """Zero the array (power-on / reconfiguration)."""
        self.cells[:] = False

    def utilization(self):
        """Fraction of cells storing '1' (diagnostics only)."""
        return float(self.cells.mean())

    def __repr__(self):
        return "SramSubarray(%dx%d)" % (self.rows, self.cols)
