"""Exception hierarchy shared by every ``repro`` subsystem.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Subsystems raise the most specific subclass that applies.
"""


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class AutomatonError(ReproError):
    """Structural problem in an automaton (bad state id, dangling edge, ...)."""


class SymbolError(ReproError):
    """A symbol or symbol-set operation received an out-of-range value."""


class RegexError(ReproError):
    """The regex compiler rejected a pattern."""

    def __init__(self, message, pattern=None, position=None):
        detail = message
        if pattern is not None and position is not None:
            detail = "%s (pattern %r, position %d)" % (message, pattern, position)
        super().__init__(detail)
        self.pattern = pattern
        self.position = position


class TransformError(ReproError):
    """An automata transformation (nibble conversion, striding) failed."""


class SimulationError(ReproError):
    """The functional simulator was driven with inconsistent inputs."""


class ArchitectureError(ReproError):
    """The architectural model was configured or driven inconsistently."""


class CapacityError(ArchitectureError):
    """An automaton does not fit in the configured hardware resources."""


class FormatError(ReproError):
    """An ANML/MNRL document could not be parsed or serialized."""


class ObservabilityError(ReproError):
    """The telemetry layer was misused (bad metric name, double attach, ...)."""


class WorkloadError(ReproError):
    """A workload generator received unsatisfiable parameters."""


class ArtifactError(ReproError):
    """A content-addressed artifact could not be decoded or round-tripped."""


class StageGraphError(ReproError):
    """A stage graph was constructed or executed inconsistently."""


class BenchError(ReproError):
    """A benchmark envelope or baseline could not be run or compared."""


class PrefilterError(ReproError):
    """The literal prefilter was built or driven inconsistently."""
