"""Unified execution planning: plan, planner, session.

The run-variant explosion of PRs 5-8 (serial, batched, sharded,
windowed, gated, multi-round, at two device fidelities) collapses here
into three composable pieces:

- :class:`~repro.exec.plan.ExecutionPlan` — one validated, versioned
  value naming a complete run strategy;
- :class:`~repro.exec.planner.Planner` — auto-selects a plan from
  memoized automaton traits (:mod:`~repro.exec.traits`) plus stream
  shape, with a machine-readable reason per choice;
- :class:`~repro.exec.session.Session` — binds a plan to a compiled
  engine/device and exposes ``execute(streams) -> results``.
"""

from .plan import (DEFAULT_PLAN, PLAN_FORMAT, PLAN_VERSION, TARGETS,
                   ExecutionPlan, resolve_plan)
from .planner import Planner
from .session import Session
from .traits import (TRAITS_CODEC, TRAITS_FORMAT, TRAITS_OP, TRAITS_VERSION,
                     AutomatonTraits, TraitsCodec, automaton_traits)

__all__ = [
    "AutomatonTraits",
    "DEFAULT_PLAN",
    "ExecutionPlan",
    "PLAN_FORMAT",
    "PLAN_VERSION",
    "Planner",
    "Session",
    "TARGETS",
    "TRAITS_CODEC",
    "TRAITS_FORMAT",
    "TRAITS_OP",
    "TRAITS_VERSION",
    "TraitsCodec",
    "automaton_traits",
    "resolve_plan",
]
