"""The execution plan: one value naming a complete run strategy.

PRs 5-8 grew the kernels eight overlapping run variants (serial,
batched, sharded, windowed, gated, multi-round, at two device
fidelities), each selected by ad-hoc knobs threaded through stage
params and CLI flags.  :class:`ExecutionPlan` collapses that knob space
into a single validated, serializable value:

- **target** — which compiled artifact executes: the functional
  :class:`~repro.sim.engine.BitsetEngine` (``"engine"``) or the
  hardware-faithful :class:`~repro.core.device.SunderDevice`
  (``"device"``).
- **kernel / fidelity** — the engine's successor kernel and the
  device's execution fidelity (each target ignores the other's knob).
- **batch_layout / batch / shards** — the aggregate-throughput axes:
  multi-stream lane layout, interleaved-lane count, and shard count
  for one long stream.
- **prefilter / hotcold_coverage** — two-stage literal gating and the
  optional hot/cold split recording.
- **step_cache** — LRU step-cache capacity (``None`` keeps each
  kernel's default).

Construction validates the whole combination up front — bad *values*
raise :class:`ValueError`, contradictory *combinations* raise
:class:`~repro.errors.ArchitectureError` — so misconfiguration
surfaces at plan time with a clear message instead of deep inside a
run variant.  Trait-dependent rules (sharding a cyclic machine) live
in :meth:`validate_for`, called when a plan is bound to a machine.

Serialization is canonical and versioned (:data:`PLAN_FORMAT` /
:data:`PLAN_VERSION`); :meth:`param_payload` emits only the
non-default fields, which is the key-salting rule the stage graph
relies on — a default plan adds *nothing* to a stage's params, so
pre-existing artifact keys (and warm stores) are untouched.
"""

import json

from ..core.packed import FIDELITIES, resolve_fidelity
from ..errors import ArchitectureError
from ..sim.engine import BATCH_LAYOUTS, _KERNELS

#: Serialization format tag and version; bump the version whenever plan
#: semantics change so salted artifact keys never alias across releases.
PLAN_FORMAT = "repro-exec-plan"
PLAN_VERSION = 1

#: Accepted execution targets.
TARGETS = ("engine", "device")

#: Field defaults, in canonical serialization order.  ``param_payload``
#: emits exactly the fields that differ from these.
_DEFAULTS = (
    ("target", "engine"),
    ("kernel", "auto"),
    ("fidelity", "auto"),
    ("batch_layout", "auto"),
    ("batch", 1),
    ("shards", 1),
    ("prefilter", False),
    ("hotcold_coverage", None),
    ("step_cache", None),
)


class ExecutionPlan:
    """One validated execution strategy (see the module docstring)."""

    __slots__ = ("target", "kernel", "fidelity", "batch_layout", "batch",
                 "shards", "prefilter", "hotcold_coverage", "step_cache",
                 "reasons")

    def __init__(self, target="engine", kernel="auto", fidelity="auto",
                 batch_layout="auto", batch=1, shards=1, prefilter=False,
                 hotcold_coverage=None, step_cache=None, reasons=None):
        # --- value validation (ValueError: the field itself is bad) ----
        if target not in TARGETS:
            raise ValueError(
                "plan target must be one of %r, got %r" % (TARGETS, target))
        if kernel not in _KERNELS:
            raise ValueError(
                "plan kernel must be one of %r, got %r" % (_KERNELS, kernel))
        if fidelity not in FIDELITIES:
            raise ValueError(
                "plan fidelity must be one of %r, got %r"
                % (FIDELITIES, fidelity))
        if batch_layout not in BATCH_LAYOUTS:
            raise ValueError(
                "plan batch_layout must be one of %r, got %r"
                % (BATCH_LAYOUTS, batch_layout))
        if not isinstance(batch, int) or isinstance(batch, bool) or batch < 1:
            raise ValueError(
                "plan batch must be an int >= 1, got %r" % (batch,))
        if shards != "auto" and (not isinstance(shards, int)
                                 or isinstance(shards, bool) or shards < 1):
            raise ValueError(
                "plan shards must be an int >= 1 or 'auto', got %r"
                % (shards,))
        if not isinstance(prefilter, bool):
            raise ValueError(
                "plan prefilter must be a bool, got %r" % (prefilter,))
        if hotcold_coverage is not None:
            hotcold_coverage = float(hotcold_coverage)
            if not 0.0 < hotcold_coverage <= 1.0:
                raise ValueError(
                    "plan hotcold_coverage must be in (0, 1], got %r"
                    % (hotcold_coverage,))
            if not prefilter:
                raise ValueError(
                    "plan hotcold_coverage requires prefilter=True (the "
                    "split is recorded by the gated path)")
        if step_cache is not None:
            if (not isinstance(step_cache, int) or isinstance(step_cache, bool)
                    or step_cache < 0):
                raise ValueError(
                    "plan step_cache must be an int >= 0 or None, got %r"
                    % (step_cache,))

        # --- combination validation (ArchitectureError: fields clash) --
        sharded = shards == "auto" or shards > 1
        if prefilter and resolve_fidelity(fidelity) == "literal":
            raise ArchitectureError(
                "prefilter gating requires the packed fidelity (the "
                "literal oracle has no window-replay form); drop "
                "fidelity='literal' or prefilter")
        if prefilter and (sharded or batch > 1):
            raise ArchitectureError(
                "prefilter gating plans its own replay windows; it cannot "
                "be combined with shards/batch lane splitting")
        if sharded and batch > 1:
            raise ArchitectureError(
                "shards and batch are competing single-stream strategies; "
                "set at most one of them above 1")
        if target == "device" and (sharded or batch > 1):
            raise ArchitectureError(
                "the device target has no sharded/interleaved single-"
                "stream path; shards/batch apply to the engine target")

        self.target = target
        self.kernel = kernel
        self.fidelity = fidelity
        self.batch_layout = batch_layout
        self.batch = batch
        self.shards = shards
        self.prefilter = prefilter
        self.hotcold_coverage = hotcold_coverage
        self.step_cache = step_cache
        #: Machine-readable ``{"choice", "value", "reason"}`` records set
        #: by the planner; advisory only — never serialized.
        self.reasons = list(reasons) if reasons else []

    # ------------------------------------------------------------------
    # Trait-dependent validation (plan x machine)
    # ------------------------------------------------------------------
    def validate_for(self, traits):
        """Check this plan against one machine's memoized traits.

        Raises :class:`~repro.errors.ArchitectureError` for combinations
        that are only wrong for *this* machine — most prominently an
        explicit shard count on a cyclic machine, whose unbounded
        history makes shard warm-up replay unsound.  ``shards="auto"``
        stays valid everywhere (the engine falls back to the serial
        path itself).  Returns the plan for chaining.
        """
        if (self.shards != "auto" and self.shards > 1
                and traits.depth_bound is None):
            raise ArchitectureError(
                "shards=%d is invalid for cyclic machine %r: shard warm-up "
                "replay needs a bounded depth (depth_bound() is None); use "
                "shards='auto' for a serial fallback" % (self.shards,
                                                         traits.name))
        if self.batch > 1 and traits.depth_bound is None:
            raise ArchitectureError(
                "batch=%d is invalid for cyclic machine %r: interleaved "
                "lanes replay shard warm-up prefixes, which need a bounded "
                "depth (depth_bound() is None)" % (self.batch, traits.name))
        return self

    # ------------------------------------------------------------------
    # Canonical serialization
    # ------------------------------------------------------------------
    @property
    def is_default(self):
        """True when every field holds its default value."""
        return all(getattr(self, name) == default
                   for name, default in _DEFAULTS)

    def param_payload(self):
        """Minimal dict of non-default fields (the key-salting form).

        Empty for a default plan — the stage layer then omits the
        ``plan`` param entirely, so default runs keep their pre-existing
        artifact keys (warm stores stay warm).  Non-empty payloads carry
        the plan version so a semantics bump re-salts every planned key.
        """
        payload = {name: getattr(self, name)
                   for name, default in _DEFAULTS
                   if getattr(self, name) != default}
        if payload:
            payload["v"] = PLAN_VERSION
        return payload

    def to_payload(self):
        """Full versioned payload (every field, canonical order)."""
        payload = {"format": PLAN_FORMAT, "version": PLAN_VERSION}
        for name, _ in _DEFAULTS:
            payload[name] = getattr(self, name)
        return payload

    @classmethod
    def from_payload(cls, payload):
        """Inverse of :meth:`to_payload` / :meth:`param_payload`.

        Accepts the full form (with ``format``/``version`` envelope) and
        the minimal param form (non-default fields only, with ``v``).
        """
        try:
            fields = dict(payload)
        except (TypeError, ValueError):
            raise ValueError("malformed plan payload: %r" % (payload,))
        if "format" in fields:
            if fields.pop("format") != PLAN_FORMAT:
                raise ValueError(
                    "unknown plan format %r" % (payload.get("format"),))
            if fields.pop("version", None) != PLAN_VERSION:
                raise ValueError(
                    "unsupported plan version %r" % (payload.get("version"),))
        else:
            version = fields.pop("v", PLAN_VERSION)
            if version != PLAN_VERSION:
                raise ValueError("unsupported plan version %r" % (version,))
        known = {name for name, _ in _DEFAULTS}
        unknown = set(fields) - known
        if unknown:
            raise ValueError(
                "unknown plan field(s): %s" % ", ".join(sorted(unknown)))
        return cls(**fields)

    def dumps(self):
        return json.dumps(self.to_payload(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def loads(cls, text):
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, TypeError) as error:
            raise ValueError("undecodable plan text: %s" % error)
        return cls.from_payload(payload)

    # ------------------------------------------------------------------
    @classmethod
    def from_flags(cls, batch=1, shards=1, prefilter=False, hotcold=None,
                   fidelity="auto", target="engine", kernel="auto"):
        """Build a plan from the legacy CLI/experiment knobs.

        The one mapping point between the pre-plan flag surface
        (``--batch``/``--shards``/``--prefilter``/``--hotcold-coverage``/
        ``--device-fidelity``) and the plan value; the same validation
        applies, so contradictory flags fail here with the plan-level
        messages.
        """
        return cls(target=target, kernel=kernel, fidelity=fidelity,
                   batch=int(batch) if batch != "auto" else 1,
                   shards=shards, prefilter=bool(prefilter),
                   hotcold_coverage=hotcold)

    @property
    def strategy(self):
        """Headline strategy name ("gated"/"sharded"/"batch"/"serial")."""
        if self.prefilter:
            return "gated"
        if self.shards == "auto" or self.shards > 1:
            return "sharded"
        if self.batch > 1 or self.batch_layout != "auto":
            return "batch"
        return "serial"

    def __eq__(self, other):
        if not isinstance(other, ExecutionPlan):
            return NotImplemented
        return all(getattr(self, name) == getattr(other, name)
                   for name, _ in _DEFAULTS)

    def __hash__(self):
        return hash(tuple(getattr(self, name) for name, _ in _DEFAULTS))

    def __repr__(self):
        fields = ", ".join(
            "%s=%r" % (name, getattr(self, name))
            for name, default in _DEFAULTS
            if getattr(self, name) != default)
        return "ExecutionPlan(%s)" % (fields or "default")


#: The all-defaults plan (serial engine run, benchmarked kernel).
DEFAULT_PLAN = ExecutionPlan()


def resolve_plan(value):
    """Coerce a user-facing plan value to an :class:`ExecutionPlan`.

    Accepts ``None``/``"auto"`` (returns None — the planner decides), an
    :class:`ExecutionPlan`, a payload dict, or a JSON string.  Raises
    :class:`ValueError` on anything else.
    """
    if value is None or value == "auto":
        return None
    if isinstance(value, ExecutionPlan):
        return value
    if isinstance(value, dict):
        return ExecutionPlan.from_payload(value)
    if isinstance(value, str):
        return ExecutionPlan.loads(value)
    raise ValueError(
        "cannot interpret %r as an execution plan (expected 'auto', JSON, "
        "a payload dict, or an ExecutionPlan)" % (value,))
