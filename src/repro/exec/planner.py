"""The planner: automaton traits + stream shape -> execution plan.

Given one machine's memoized traits (:mod:`~repro.exec.traits`) and the
shape of the work (how many streams, how long), :class:`Planner` picks
the execution strategy the performance docs say wins that regime:

- several independent streams -> batched lanes sharing one step cache;
- a literal-extractable acyclic machine -> prefilter-gated windows
  (the kernel only wakes where the literal scan fires);
- one long acyclic stream -> ``shards="auto"`` overlap-replayed blocks
  (the engine itself falls back to serial below its threshold);
- everything else -> the serial benchmarked-default path.

Every choice carries a machine-readable reason; the selected plan is
counted on ``repro_plan_selected_total{strategy,reason}`` and traced on
an ``exec.plan`` span.  Planner output is always *executable*: it never
emits a combination :meth:`ExecutionPlan.validate_for` (or a run
variant) would reject — tests/test_exec.py holds this as a property
over random machines.
"""

from ..obs import OBS, trace_span
from ..sim.engine import AUTO_SHARD_MIN_CYCLES
from .plan import TARGETS, ExecutionPlan
from .traits import automaton_traits


class Planner:
    """Auto-selects an :class:`ExecutionPlan` (see the module docstring).

    ``target`` fixes which compiled artifact the plans drive; the
    default plans for the functional engine.
    """

    def __init__(self, target="engine"):
        if target not in TARGETS:
            raise ValueError(
                "planner target must be one of %r, got %r"
                % (TARGETS, target))
        self.target = target

    def plan(self, automaton, stream_count=1, stream_cycles=0):
        """The selected plan for ``automaton`` over the given shape."""
        plan, _ = self.explain(automaton, stream_count=stream_count,
                               stream_cycles=stream_cycles)
        return plan

    def explain(self, automaton, stream_count=1, stream_cycles=0):
        """``(plan, choices)`` with one reason record per decision.

        ``choices`` is a list of ``{"choice", "value", "reason"}`` dicts
        (also attached to the plan as ``plan.reasons``); the first entry
        is always the headline strategy.
        """
        if stream_count < 1:
            raise ValueError(
                "stream_count must be >= 1, got %r" % (stream_count,))
        traits = automaton_traits(automaton)
        fields, choices = self._choose(traits, stream_count, stream_cycles)
        plan = ExecutionPlan(target=self.target, reasons=choices, **fields)
        strategy = choices[0]["value"]
        reason = choices[0]["reason"]
        with trace_span("exec.plan", automaton=automaton.name,
                        target=self.target, strategy=strategy,
                        reason=reason, streams=stream_count,
                        cycles=stream_cycles):
            pass
        if OBS.active:
            OBS.instruments.plan_selected.labels(
                strategy=strategy, reason=reason).inc()
        return plan, choices

    def _choose(self, traits, stream_count, stream_cycles):
        """Strategy decision tree over (traits, shape); pure."""
        choices = []

        def choose(choice, value, reason):
            choices.append({"choice": choice, "value": value,
                            "reason": reason})

        fields = {}
        if stream_count > 1:
            choose("strategy", "batch", "multi-stream")
            choose("batch_layout", "auto",
                   "lane layout is the benchmarked default")
        elif traits.filterable and not traits.cyclic:
            choose("strategy", "gated", "filterable-acyclic")
            fields["prefilter"] = True
        elif (self.target == "engine" and not traits.cyclic
                and stream_cycles >= AUTO_SHARD_MIN_CYCLES):
            choose("strategy", "sharded", "long-acyclic-stream")
            fields["shards"] = "auto"
        elif traits.cyclic:
            choose("strategy", "serial", "cyclic")
        elif not traits.filterable:
            choose("strategy", "serial", "unfilterable-short-stream")
        else:
            choose("strategy", "serial", "short-stream")
        if self.target == "engine":
            choose("kernel", "auto",
                   "sliced successor tables are the benchmarked default")
        else:
            choose("fidelity", "auto",
                   "the packed kernel is the benchmarked default")
        choose("step_cache", None,
               "default LRU capacity; entries are pure automaton "
               "functions and survive resets")
        return fields, choices
