"""The session: one plan bound to one compiled machine, one entry point.

:class:`Session` is the single execution abstraction the run-variant
explosion collapses into: construct it with an automaton (and
optionally a plan — otherwise the :class:`~repro.exec.planner.Planner`
picks one from the machine's traits and the first ``execute`` call's
stream shape), then call ``execute(streams) -> [ReportRecorder]`` with
raw byte streams.  The session owns stream conversion, position
limits, compiled-artifact reuse (one engine / packed device kernel
across calls), and the dispatch to the right run variant — every one
of which stays individually available and bit-exact (the differential
suite in tests/test_exec.py pins ``execute`` against each direct
variant call).

The ROADMAP's streaming service schedules tenants through exactly this
object: one session per (ruleset, plan), many ``execute`` calls.
"""

from ..core.config import SunderConfig
from ..core.device import SunderDevice
from ..core.packed import DEFAULT_DEVICE_STEP_CACHE
from ..prefilter.gate import (build_prefilter, gated_device_run,
                              gated_simulation)
from ..sim.engine import DEFAULT_STEP_CACHE, BitsetEngine
from ..sim.inputs import stream_for, stream_shape
from ..sim.reports import ReportRecorder
from .plan import ExecutionPlan
from .planner import Planner
from .traits import automaton_traits


class Session:
    """One automaton + one plan, executable over many streams.

    Parameters
    ----------
    automaton:
        The machine to execute — for the engine target any machine
        :func:`~repro.sim.inputs.stream_for` can feed (8-bit arity-1 or
        4-bit strided); for the device target a 4-bit rate machine.
    plan:
        An :class:`ExecutionPlan`, or None to let ``planner`` choose
        one from the machine's traits and the first ``execute`` call's
        stream shape (the chosen plan is then bound for the session's
        lifetime and readable as ``session.plan``).
    source:
        The 8-bit machine ``automaton`` was rate-transformed from;
        prefilter literals are extracted from it.  Defaults to
        ``automaton`` itself.
    config:
        Device-target :class:`~repro.core.config.SunderConfig`;
        defaults to one sized by the automaton's arity.
    planner:
        The :class:`~repro.exec.planner.Planner` used when ``plan`` is
        None; defaults to one targeting the plan's target.
    """

    def __init__(self, automaton, plan=None, *, source=None, config=None,
                 planner=None):
        automaton.validate()
        self.automaton = automaton
        self.source = source if source is not None else automaton
        self.config = config
        self.traits = automaton_traits(automaton)
        if plan is not None:
            if not isinstance(plan, ExecutionPlan):
                raise ValueError(
                    "Session plan must be an ExecutionPlan or None, got %r"
                    % (plan,))
            plan.validate_for(self.traits)
        self.plan = plan
        self._planner = planner
        self._engine = None
        self._device = None
        self._prefilter = None

    # ------------------------------------------------------------------
    def execute(self, streams):
        """Run every byte stream; returns per-stream recorders.

        ``streams`` is an iterable of byte strings.  Results are
        :class:`~repro.sim.reports.ReportRecorder`\\ s in stream order,
        each with ``keep_events=True`` and the stream's own position
        limit — bit-exact with the corresponding direct run-variant
        call for the bound plan.
        """
        datas = [bytes(stream) for stream in streams]
        plan = self.plan
        if plan is None:
            plan = self._plan_for(datas)
            self.plan = plan
        if plan.target == "device":
            return self._execute_device(plan, datas)
        return self._execute_engine(plan, datas)

    def _plan_for(self, datas):
        planner = self._planner
        if planner is None:
            planner = self._planner = Planner()
        cycles = max((stream_shape(self.automaton, data)[0]
                      for data in datas), default=0)
        plan = planner.plan(self.automaton, stream_count=max(1, len(datas)),
                            stream_cycles=cycles)
        return plan.validate_for(self.traits)

    # ------------------------------------------------------------------
    # Engine target
    # ------------------------------------------------------------------
    def _bind_engine(self, plan):
        engine = self._engine
        if engine is None:
            step_cache = (DEFAULT_STEP_CACHE if plan.step_cache is None
                          else plan.step_cache)
            engine = BitsetEngine(self.automaton, kernel=plan.kernel,
                                  step_cache=step_cache)
            self._engine = engine
        return engine

    def _bind_prefilter(self):
        prefilter = self._prefilter
        if prefilter is None:
            prefilter = self._prefilter = build_prefilter(self.source)
        return prefilter

    def _execute_engine(self, plan, datas):
        engine = self._bind_engine(plan)
        if plan.prefilter:
            prefilter = self._bind_prefilter()
            recorders = []
            for data in datas:
                _, limit = stream_shape(self.automaton, data)
                recorder = ReportRecorder(keep_events=True,
                                          position_limit=limit)
                gated_simulation(self.automaton, data, recorder,
                                 source=self.source, prefilter=prefilter,
                                 hotcold_coverage=plan.hotcold_coverage,
                                 engine=engine)
                recorders.append(recorder)
            return recorders
        lanes = [stream_for(self.automaton, data) for data in datas]
        recorders = [ReportRecorder(keep_events=True, position_limit=limit)
                     for _, limit in lanes]
        if len(datas) > 1:
            engine.run_batch([vectors for vectors, _ in lanes], recorders,
                             batch_layout=plan.batch_layout)
        elif datas:
            vectors = lanes[0][0]
            if plan.shards == "auto" or plan.shards > 1:
                engine.run_sharded(vectors, plan.shards, recorders[0],
                                   interleave=False)
            elif plan.batch > 1:
                engine.run_sharded(vectors, plan.batch, recorders[0],
                                   interleave=True)
            else:
                engine.run(vectors, recorders[0])
        return recorders

    # ------------------------------------------------------------------
    # Device target
    # ------------------------------------------------------------------
    def _bind_device(self, plan):
        device = self._device
        if device is None:
            device = self._fresh_device(plan)
            self._device = device
        return device

    def _fresh_device(self, plan):
        config = self.config
        if config is None:
            config = SunderConfig(rate_nibbles=self.automaton.arity)
        step_cache = (DEFAULT_DEVICE_STEP_CACHE if plan.step_cache is None
                      else plan.step_cache)
        device = SunderDevice(config, fidelity=plan.fidelity,
                              step_cache=step_cache)
        device.configure(self.automaton)
        return device

    def _execute_device(self, plan, datas):
        if plan.prefilter:
            device = self._bind_device(plan)
            prefilter = self._bind_prefilter()
            return [gated_device_run(device, self.automaton, data,
                                     source=self.source,
                                     prefilter=prefilter,
                                     hotcold_coverage=plan.hotcold_coverage)
                    for data in datas]
        device = self._bind_device(plan)
        if device.fidelity == "packed":
            lanes = [stream_for(self.automaton, data) for data in datas]
            recorders = [ReportRecorder(keep_events=True,
                                        position_limit=limit)
                         for _, limit in lanes]
            if lanes:
                device.run_batch([vectors for vectors, _ in lanes],
                                 recorders=recorders)
            return recorders
        # The literal oracle has no lane-sharable compiled form and its
        # reporting regions accumulate across runs, so each stream gets
        # a fresh bit-level device — slow but hardware-faithful.
        recorders = []
        for index, data in enumerate(datas):
            if index or device.global_cycle:
                device = self._fresh_device(plan)
            vectors, limit = stream_for(self.automaton, data)
            result = device.run(vectors, position_limit=limit)
            recorders.append(result.reports())
        return recorders
