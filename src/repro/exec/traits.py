"""Memoized automaton traits: the planner's structural inputs.

Every planning decision reads the same handful of machine facts — state
count, ``depth_bound()`` (and hence cyclicity), and the literal-
extractability verdict.  ``depth_bound()`` is an O(states) graph walk
and extractability a bounded graph search; both were recomputed per
planning/run call before this module.  :func:`automaton_traits` computes
them once per machine and memoizes the result twice over:

- a process-wide weak map keyed on the machine object (the common case:
  one machine, many streams), and
- a content-addressed artifact in the transform cache (key =
  fingerprint + :data:`TRAITS_VERSION`), shared across processes and
  runs through the same two-tier store prefilter builds use.

Traits are derived facts, never mutated; the codec's ``copy`` serves
the master object.
"""

import json
import weakref

from ..automata.indexed import IndexedAutomaton
from ..errors import ArtifactError
from ..prefilter.literals import extract_literals
from ..runtime.store import ArtifactStore, Codec
from ..transform import cache as transform_cache

#: Cache-key op and version salt for memoized trait computations; bump
#: the version whenever trait derivation semantics change.
TRAITS_OP = "traits"
TRAITS_VERSION = 1

TRAITS_FORMAT = "repro-exec-traits"


class AutomatonTraits:
    """Structural facts of one automaton (see the module docstring)."""

    __slots__ = ("name", "state_count", "depth_bound", "filterable",
                 "reason", "literal_count")

    def __init__(self, name, state_count, depth_bound, filterable,
                 reason=None, literal_count=0):
        self.name = name
        self.state_count = int(state_count)
        self.depth_bound = depth_bound if depth_bound is None \
            else int(depth_bound)
        self.filterable = bool(filterable)
        self.reason = reason
        self.literal_count = int(literal_count)

    @property
    def cyclic(self):
        """True when the machine has a reachable cycle (unbounded
        history; shard warm-up replay and gated windowing are unsound)."""
        return self.depth_bound is None

    # -- payload round-trip (for the content-addressed cache) ----------
    def to_payload(self):
        return {
            "format": TRAITS_FORMAT,
            "version": TRAITS_VERSION,
            "name": self.name,
            "state_count": self.state_count,
            "depth_bound": self.depth_bound,
            "filterable": self.filterable,
            "reason": self.reason,
            "literal_count": self.literal_count,
        }

    @classmethod
    def from_payload(cls, payload):
        try:
            if payload.get("format") != TRAITS_FORMAT:
                raise ValueError("unknown traits format %r"
                                 % (payload.get("format"),))
            if payload.get("version") != TRAITS_VERSION:
                raise ValueError("unsupported traits version %r"
                                 % (payload.get("version"),))
            return cls(payload["name"], payload["state_count"],
                       payload["depth_bound"], payload["filterable"],
                       payload.get("reason"),
                       payload.get("literal_count", 0))
        except (AttributeError, KeyError, TypeError) as error:
            raise ValueError("malformed traits payload: %s" % error)

    def __repr__(self):
        return ("AutomatonTraits(%r, states=%d, depth_bound=%r, "
                "filterable=%r)" % (self.name, self.state_count,
                                    self.depth_bound, self.filterable))


class TraitsCodec(Codec):
    """Artifact codec for memoized trait computations."""

    kind = "traits"

    def encode(self, traits):
        return json.dumps(traits.to_payload(), sort_keys=True,
                          separators=(",", ":"))

    def decode(self, text):
        try:
            return AutomatonTraits.from_payload(json.loads(text))
        except (json.JSONDecodeError, ValueError, TypeError) as error:
            raise ArtifactError("undecodable traits artifact: %s" % error)

    def copy(self, traits):
        return traits


TRAITS_CODEC = TraitsCodec()

#: Process-wide weak memo: machine object -> traits.  Weak keys so
#: transient machines do not pin memory; machines are not mutated once
#: they execute, so the memo is sound for the object's lifetime.
_TRAITS_MEMO = weakref.WeakKeyDictionary()


def _compute_traits(automaton):
    # The dense-integer view walks the graph without touching string
    # ids; its depth_bound is pinned bit-equal to Automaton.depth_bound
    # by tests/test_indexed.py.
    depth = IndexedAutomaton.from_automaton(automaton).depth_bound()
    if automaton.bits == 8 and automaton.arity == 1:
        extraction = extract_literals(automaton)
        filterable = extraction.filterable
        reason = extraction.reason
        literal_count = len(extraction.literals)
    else:
        # Literals are extracted from the 8-bit byte machine; rate-
        # transformed derivatives gate through their source instead.
        filterable = False
        reason = ("literals extract from the 8-bit source machine, not "
                  "a %d-bit arity-%d derivative"
                  % (automaton.bits, automaton.arity))
        literal_count = 0
    return AutomatonTraits(automaton.name, len(automaton), depth,
                           filterable, reason, literal_count)


def automaton_traits(automaton):
    """The (memoized) :class:`AutomatonTraits` of one machine.

    Checks the in-process weak memo, then the content-addressed
    transform cache, and only then recomputes — mirroring
    :func:`repro.prefilter.gate.build_prefilter`'s tiering, so pool
    workers and repeated stage runs share one computation per
    fingerprint.
    """
    try:
        return _TRAITS_MEMO[automaton]
    except (KeyError, TypeError):
        pass
    store = transform_cache.get_cache()
    key = store.key(TRAITS_OP, automaton, version=TRAITS_VERSION)
    # The transform cache narrows get/put to automata; go through the
    # generic ArtifactStore interface with the traits codec instead.
    traits = ArtifactStore.get(store, key, TRAITS_CODEC, context=TRAITS_OP)
    if traits is None:
        traits = _compute_traits(automaton)
        ArtifactStore.put(store, key, traits, TRAITS_CODEC,
                          context=TRAITS_OP)
    try:
        _TRAITS_MEMO[automaton] = traits
    except TypeError:  # pragma: no cover - unweakrefable machines
        pass
    return traits
