"""Per-table/figure experiment harnesses (see DESIGN.md's index)."""

from . import (
    figure8,
    figure9,
    figure10,
    scorecard,
    table1,
    table2,
    table3,
    table4,
    table5,
)

ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "scorecard": scorecard,
}

__all__ = ["ALL_EXPERIMENTS"] + sorted(ALL_EXPERIMENTS)
