"""Experiment F10 — Figure 10 (input-stream sensitivity analysis).

Sweeps the fraction of reporting cycles from 1% to 100% for a single
subarray with 12 reporting states and evaluates the closed-form slowdown
with and without report summarization (Section 5.1.2).

The paper's anchors: negligible below 5% reporting, 7x worst case
without summarization, 1.4x with 16-row-batch summarization.
"""

from ..core.config import SunderConfig
from ..core.perfmodel import sensitivity_slowdown
from ..obs import instrumented_experiment
from .formatting import format_table

#: The sweep points shown in the paper's figure.
SWEEP_PCTS = (1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)

COLUMNS = [
    ("report_cycle_pct", "Report cycles (%)"),
    ("slowdown", "Slowdown"),
    ("slowdown_summarized", "Slowdown (summarized)"),
]


def run(sweep=SWEEP_PCTS, config=None):
    """Evaluate the sweep; returns result rows."""
    if config is None:
        config = SunderConfig(report_bits=12)
    rows = []
    for pct in sweep:
        fraction = pct / 100.0
        rows.append({
            "report_cycle_pct": pct,
            "slowdown": sensitivity_slowdown(fraction, summarize=False,
                                             config=config),
            "slowdown_summarized": sensitivity_slowdown(
                fraction, summarize=True, config=config
            ),
        })
    return rows


def render(rows):
    """Format as the Figure 10 text table."""
    return format_table(
        rows, COLUMNS,
        title="Figure 10: slowdown vs reporting rate "
              "(paper anchors: 7x at 100%, 1.4x summarized)",
    )


@instrumented_experiment("figure10")
def main():
    """Run and print."""
    rows = run()
    print(render(rows))
    return rows
