"""Experiment F10 — Figure 10 (input-stream sensitivity analysis).

Sweeps the fraction of reporting cycles from 1% to 100% for a single
subarray with 12 reporting states and evaluates the closed-form slowdown
with and without report summarization (Section 5.1.2).

The paper's anchors: negligible below 5% reporting, 7x worst case
without summarization, 1.4x with 16-row-batch summarization.

Each sweep point is one ``figure10_point`` stage in the runtime graph
(closed-form, so uncached); the scheduler fans points across ``workers``
with rows in sweep order at any count.
"""

from ..core.config import SunderConfig
from ..runtime import Runtime, StageGraph
from ..obs import instrumented_experiment
from .formatting import format_table

#: The sweep points shown in the paper's figure.
SWEEP_PCTS = (1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100)

COLUMNS = [
    ("report_cycle_pct", "Report cycles (%)"),
    ("slowdown", "Slowdown"),
    ("slowdown_summarized", "Slowdown (summarized)"),
]


def define(graph, sweep, config, fidelity="auto"):
    """Declare one ``figure10_point`` task per sweep percentage.

    ``fidelity`` salts the stage params (device-fidelity knob) so
    packed/literal sweeps never alias in a shared artifact store.
    """
    return [graph.task("figure10_point",
                       {"pct": pct, "config": config, "fidelity": fidelity})
            for pct in sweep]


def run(sweep=SWEEP_PCTS, config=None, workers=1, runtime=None,
        fidelity="auto"):
    """Evaluate the sweep; returns result rows.

    ``workers`` fans the sweep points out across a process pool
    (0 = all cores); rows stay in sweep order at any worker count.
    """
    if config is None:
        config = SunderConfig(report_bits=12)
    if runtime is None:
        runtime = Runtime(workers=workers)
    graph = StageGraph()
    tasks = define(graph, sweep, config, fidelity=fidelity)
    results = runtime.execute(graph, targets=tasks)
    return [results[task] for task in tasks]


def render(rows):
    """Format as the Figure 10 text table."""
    return format_table(
        rows, COLUMNS,
        title="Figure 10: slowdown vs reporting rate "
              "(paper anchors: 7x at 100%, 1.4x summarized)",
    )


@instrumented_experiment("figure10")
def main(workers=1, fidelity="auto"):
    """Run and print."""
    rows = run(workers=workers, fidelity=fidelity)
    print(render(rows))
    return rows
