"""Experiment F8 — Figure 8 (throughput of the automata accelerators).

Combines Table 5's frequencies with the average reporting overheads
measured by the Table 4 experiment:

    throughput = frequency x bits/cycle / reporting-overhead

Sunder keeps its own (near-1.0) overhead; Impala/CA/AP are charged the
AP-style (or AP+RAD) average, exactly as the paper's comparison does.
"""

from ..baselines.throughput import figure8_rows
from ..obs import instrumented_experiment
from .formatting import format_table
from . import table4

COLUMNS = [
    ("architecture", "Architecture"),
    ("kernel_gbps", "Kernel Gbps"),
    ("ap_reporting_gbps", "w/ AP reporting"),
    ("rad_reporting_gbps", "w/ RAD reporting"),
    ("sunder_speedup_ap", "Sunder speedup (AP rep.)"),
    ("sunder_speedup_rad", "Sunder speedup (RAD rep.)"),
]

#: The paper's headline speedups (AP-style reporting / RAD reporting).
PAPER_SPEEDUPS = {
    "AP (50nm)": (280.0, 133.0),
    "AP (14nm)": (22.0, 10.4),
    "CA": (10.0, 4.8),
    "Impala": (4.0, 1.9),
    "Sunder": (1.0, 1.0),
}


def run(scale=0.01, seed=0, names=None, table4_rows=None, workers=1,
        runtime=None):
    """Compute Figure 8's bars (running Table 4 first if not supplied).

    When Table 4 runs here, its stage graph goes through ``runtime`` (or
    a fresh one), so a warm artifact store serves the expensive stages.
    """
    if table4_rows is None:
        table4_rows, _ = table4.run(scale=scale, seed=seed, names=names,
                                    workers=workers, runtime=runtime)
    count = len(table4_rows)
    sunder = sum(r["sunder_fifo_overhead"] for r in table4_rows) / count
    ap = sum(r["ap_overhead"] for r in table4_rows) / count
    rad = sum(r["rad_overhead"] for r in table4_rows) / count
    rows = figure8_rows(sunder, ap, rad)
    for row in rows:
        paper = PAPER_SPEEDUPS.get(row["architecture"])
        if paper:
            row["paper_speedup_ap"], row["paper_speedup_rad"] = paper
    return rows


def render(rows):
    """Format as the Figure 8 text table."""
    columns = COLUMNS + [
        ("paper_speedup_ap", "Paper (AP rep.)"),
        ("paper_speedup_rad", "Paper (RAD rep.)"),
    ]
    return format_table(rows, columns, title="Figure 8: throughput comparison")


@instrumented_experiment("figure8")
def main(scale=0.01, seed=0, workers=1):
    """Run and print."""
    rows = run(scale=scale, seed=seed, workers=workers)
    print(render(rows))
    return rows
