"""Experiment F9 — Figure 9 (area for 32K STEs, per component).

Also derives the conclusion's throughput-density headline ("three orders
of magnitude higher throughput per unit area than the AP").

Each architecture's component-area evaluation is one ``figure9_arch``
stage in the runtime graph (closed-form, so uncached); the scheduler
fans them across ``workers`` with identical rows at any count.
"""

from ..hwmodel.area import _AREA_MODELS, breakdown_table, throughput_per_area
from ..runtime import Runtime, StageGraph
from ..obs import instrumented_experiment
from .formatting import format_table

COLUMNS = [
    ("architecture", "Architecture"),
    ("matching_mm2", "Matching (mm2)"),
    ("interconnect_mm2", "Interconnect (mm2)"),
    ("reporting_mm2", "Reporting (mm2)"),
    ("total_mm2", "Total (mm2)"),
    ("ratio_to_sunder", "Ratio to Sunder"),
]

#: The paper's published total-area ratios relative to Sunder.
PAPER_RATIOS = {"Sunder": 1.0, "CA": 1.5, "Impala": 1.6, "AP": 2.1}


def define(graph, num_states):
    """Declare one ``figure9_arch`` task per architecture, in order."""
    return {name: graph.task("figure9_arch",
                             {"arch": name, "num_states": num_states})
            for name in _AREA_MODELS}


def run(num_states=32768, workers=1, runtime=None):
    """Compute the per-architecture area breakdown.

    ``workers`` fans the architectures out across a process pool
    (0 = all cores); output is identical at any worker count.
    """
    if runtime is None:
        runtime = Runtime(workers=workers)
    graph = StageGraph()
    tasks = define(graph, num_states)
    results = runtime.execute(graph, targets=list(tasks.values()))
    rows = breakdown_table(
        {name: results[task] for name, task in tasks.items()})
    for row in rows:
        row["paper_ratio"] = PAPER_RATIOS.get(row["architecture"])
    return rows


DENSITY_COLUMNS = [
    ("architecture", "Architecture"),
    ("gbps", "Gbps"),
    ("area_mm2", "Area (mm2)"),
    ("gbps_per_mm2", "Gbps/mm2"),
    ("sunder_density_ratio", "Sunder density advantage"),
]


def render(rows):
    """Format as the Figure 9 text table plus the density headline."""
    columns = COLUMNS + [("paper_ratio", "Paper ratio")]
    text = format_table(
        rows, columns, title="Figure 9: area overhead for 32K STEs (14nm)",
        float_format="%.3f",
    )
    text += "\n\n" + format_table(
        throughput_per_area(), DENSITY_COLUMNS,
        title="Throughput density (paper: ~1000x vs the 50nm AP)",
        float_format="%.3f",
    )
    return text


@instrumented_experiment("figure9")
def main(num_states=32768, workers=1):
    """Run and print."""
    rows = run(num_states, workers=workers)
    print(render(rows))
    return rows
