"""Plain-text table rendering for experiment output."""


def format_table(rows, columns, title=None, float_format="%.2f"):
    """Render dict rows as an aligned text table.

    ``columns`` is a list of ``(key, heading)`` pairs; missing values
    render as ``-``.
    """
    def render(value):
        if value is None:
            return "-"
        if isinstance(value, float):
            return float_format % value
        return str(value)

    headings = [heading for _, heading in columns]
    body = [[render(row.get(key)) for key, _ in columns] for row in rows]
    widths = [
        max(len(headings[i]), *(len(line[i]) for line in body)) if body
        else len(headings[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headings, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for line in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
    return "\n".join(lines)


def average_row(rows, keys, label="Average", label_key="benchmark",
                extra=None):
    """Arithmetic-mean summary row over ``keys`` (Table 3/4 bottom rows).

    The mean is computed as ``sum(...) / len(rows)`` in row order —
    identical float arithmetic to the per-table code this replaces, so
    rendered tables stay byte-stable.  ``extra`` merges paper reference
    values (or any other fixed cells) into the returned row.
    """
    if not rows:
        raise ValueError("cannot average an empty row list")
    row = {label_key: label}
    for key in keys:
        row[key] = sum(r[key] for r in rows) / len(rows)
    if extra:
        row.update(extra)
    return row


def ratio_string(measured, paper):
    """Render 'measured (paper X)' comparison cells."""
    if paper is None:
        return "%.2f" % measured
    return "%.2f (paper %.2f)" % (measured, paper)
