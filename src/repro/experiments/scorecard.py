"""Reproduction scorecard: machine-checked paper-vs-measured claims.

Runs every experiment, extracts the paper's headline claims, and grades
each within an explicit tolerance band.  The scorecard is the one-screen
answer to "does this reproduction hold?", and the benchmark suite asserts
that no claim regresses.
"""

import json

from ..obs import OBS, instrumented_experiment
from ..runtime import Runtime
from . import figure8, figure9, figure10, table1, table3, table4, table5
from .formatting import format_table


class Claim:
    """One checkable claim with an acceptance band."""

    def __init__(self, name, paper, measured, low, high):
        self.name = name
        self.paper = paper
        self.measured = measured
        self.low = low
        self.high = high

    @property
    def passed(self):
        return self.low <= self.measured <= self.high

    def as_dict(self):
        return {
            "claim": self.name,
            "paper": self.paper,
            "measured": self.measured,
            "band": "[%.2f, %.2f]" % (self.low, self.high),
            "verdict": "PASS" if self.passed else "FAIL",
        }


def build_scorecard(scale=0.01, seed=0, workers=1, runtime=None):
    """Run the evaluation and grade every headline claim.

    ``workers`` fans stage executions across processes.  Every
    experiment's stage graph runs through one shared runtime (and hence
    one artifact store), so the stages the tables have in common —
    Table 1's and Table 4's generate/simulate8, Table 3's and Table 4's
    to_rate machines — execute exactly once per scorecard, and a warm
    ``--artifact-dir`` store serves them without executing at all.
    """
    if runtime is None:
        runtime = Runtime(workers=workers)
    claims = []

    # Table 1: the workload generators must actually hit the published
    # dynamic profiles (spot-check the three behaviour classes).
    rows1 = table1.run(scale=scale, seed=seed,
                       names=["Snort", "SPM", "Brill"], runtime=runtime)
    t1 = {row["benchmark"]: row for row in rows1}
    claims.append(Claim("Snort reports on ~94.9% of cycles", 94.89,
                        t1["Snort"]["report_cycle_pct"], 90.0, 99.0))
    claims.append(Claim("SPM report cycles ~3.24%", 3.24,
                        t1["SPM"]["report_cycle_pct"], 2.2, 4.3))
    claims.append(Claim("Brill bursts ~9.19 reports/report-cycle", 9.19,
                        t1["Brill"]["reports_per_report_cycle"], 6.0, 12.0))

    rows5 = table5.run()
    freq = {row["architecture"]: row["operating_frequency_ghz"]
            for row in rows5}
    claims.append(Claim("Sunder operates at 3.6 GHz", 3.6,
                        freq["Sunder (14nm)"], 3.4, 3.8))
    claims.append(Claim("AP projects to 1.69 GHz at 14nm", 1.69,
                        freq["AP (14nm, projected)"], 1.6, 1.8))

    rows3, averages3 = table3.run(scale=scale, seed=seed, runtime=runtime)
    claims.append(Claim("1-nibble state overhead ~3.1x", 3.1,
                        averages3["states_1"], 1.5, 4.5))
    claims.append(Claim("2-nibble state overhead ~1.0x", 1.0,
                        averages3["states_2"], 0.8, 1.5))
    claims.append(Claim("4-nibble state overhead ~1.2x", 1.2,
                        averages3["states_4"], 0.9, 2.2))

    rows4, averages4 = table4.run(scale=scale, seed=seed, runtime=runtime)
    by_name = {row["benchmark"]: row for row in rows4}
    claims.append(Claim("Sunder avg reporting overhead ~1.0x", 1.0,
                        averages4["sunder_fifo_overhead"], 1.0, 1.1))
    claims.append(Claim("Snort AP-style overhead ~46x", 46.0,
                        by_name["Snort"]["ap_overhead"], 23.0, 69.0))
    claims.append(Claim("AP-style avg overhead ~4.69x", 4.69,
                        averages4["ap_overhead"], 2.5, 7.0))
    claims.append(Claim("RAD rescues Snort to ~9x", 9.0,
                        by_name["Snort"]["rad_overhead"], 4.0, 14.0))
    zero_overhead = sum(
        1 for row in rows4 if row["sunder_fifo_overhead"] < 1.005
    )
    claims.append(Claim("zero reporting stalls for ~95% of apps (19/20)",
                        0.95, zero_overhead / len(rows4), 0.9, 1.0))

    rows8 = figure8.run(table4_rows=rows4)
    speed = {row["architecture"]: row for row in rows8}
    claims.append(Claim("~280x throughput vs AP (50nm)", 280.0,
                        speed["AP (50nm)"]["sunder_speedup_ap"], 140.0, 420.0))
    claims.append(Claim("~10x throughput vs Cache Automaton", 10.0,
                        speed["CA"]["sunder_speedup_ap"], 5.0, 15.0))
    claims.append(Claim("~4x throughput vs Impala", 4.0,
                        speed["Impala"]["sunder_speedup_ap"], 2.0, 6.0))

    rows9 = figure9.run(runtime=runtime)
    area = {row["architecture"]: row for row in rows9}
    claims.append(Claim("~2.1x smaller than the AP", 2.1,
                        area["AP"]["ratio_to_sunder"], 1.9, 2.3))
    claims.append(Claim("Sunder reporting area ~2%", 0.02,
                        area["Sunder"]["reporting_mm2"]
                        / area["Sunder"]["total_mm2"], 0.0, 0.05))

    from ..hwmodel.area import throughput_per_area
    density = {row["architecture"]: row for row in throughput_per_area()}
    claims.append(Claim(
        "~3 orders of magnitude throughput/area vs the 50nm AP", 1000.0,
        density["AP (50nm silicon)"]["sunder_density_ratio"], 500.0, 3000.0,
    ))

    rows10 = figure10.run(runtime=runtime)
    worst = rows10[-1]
    claims.append(Claim("worst-case slowdown ~7x", 7.0,
                        worst["slowdown"], 5.5, 8.5))
    claims.append(Claim("summarization bounds worst case to ~1.4x", 1.4,
                        worst["slowdown_summarized"], 1.2, 1.6))

    return claims


COLUMNS = [
    ("claim", "Claim"),
    ("paper", "Paper"),
    ("measured", "Measured"),
    ("band", "Accept band"),
    ("verdict", "Verdict"),
]


def render(claims):
    """Text scorecard."""
    rows = [claim.as_dict() for claim in claims]
    passed = sum(1 for claim in claims if claim.passed)
    table = format_table(rows, COLUMNS, title="Reproduction scorecard")
    return "%s\n%d/%d claims reproduced" % (table, passed, len(claims))


def to_json(claims, indent=2, metrics=None):
    """Machine-readable scorecard.

    When a telemetry collector is attached (or ``metrics`` is passed
    explicitly), the metrics snapshot gathered while the claims were
    measured is embedded alongside them.
    """
    if metrics is None and OBS.active:
        metrics = OBS.registry.snapshot()
    payload = {
        "claims": [claim.as_dict() for claim in claims],
        "metrics": metrics,
    }
    return json.dumps(payload, indent=indent)


@instrumented_experiment("scorecard")
def main(scale=0.01, seed=0, workers=1):
    """Run and print."""
    claims = build_scorecard(scale=scale, seed=seed, workers=workers)
    print(render(claims))
    if OBS.active:
        gauge = OBS.registry.get("repro_scorecard_claims_passed")
        if gauge is None:
            gauge = OBS.registry.gauge(
                "repro_scorecard_claims_passed",
                "Claims inside their acceptance band in the last "
                "scorecard run.",
            )
        gauge.set(sum(1 for claim in claims if claim.passed))
    return claims
