"""Experiment T1 — reproduce Table 1 (reporting behaviour summary).

Simulates every synthetic benchmark on its generated input and reports
the static and dynamic columns next to the paper's published values.
The dynamic percentages should track the paper closely (they are the
generators' calibration targets); absolute counts scale with the input.
"""

from ..sim.parallel import ParallelRunner
from ..workloads.registry import BENCHMARK_NAMES, generate
from ..obs import instrumented_experiment
from .formatting import format_table

COLUMNS = [
    ("benchmark", "Benchmark"),
    ("family", "Family"),
    ("states", "#States"),
    ("report_states", "#RepStates"),
    ("report_state_pct", "Rep%"),
    ("paper_report_state_pct", "Rep%(paper)"),
    ("reports", "#Reports"),
    ("report_cycles", "#RepCycles"),
    ("reports_per_report_cycle", "R/RC"),
    ("paper_reports_per_report_cycle", "R/RC(paper)"),
    ("report_cycle_pct", "RC%"),
    ("paper_report_cycle_pct", "RC%(paper)"),
]


def _evaluate_job(job):
    """One benchmark's Table 1 row from a picklable (name, scale, seed)."""
    name, scale, seed = job
    instance = generate(name, scale=scale, seed=seed)
    row = instance.measured_behavior()
    row.pop("recorder", None)
    row["paper_report_state_pct"] = instance.paper_row.get("report_state_pct")
    row["paper_report_cycle_pct"] = instance.paper_row.get("report_cycle_pct")
    row["paper_reports_per_report_cycle"] = instance.paper_row.get(
        "reports_per_report_cycle"
    )
    return row


def run(scale=0.02, seed=0, names=None, workers=1):
    """Simulate the suite; returns the list of result rows.

    ``workers`` fans the per-benchmark simulations out across a process
    pool (0 = all cores); rows come back in suite order regardless.
    """
    chosen = names if names is not None else BENCHMARK_NAMES
    jobs = [(name, scale, seed) for name in chosen]
    return ParallelRunner(workers).map(_evaluate_job, jobs)


def render(rows):
    """Format result rows as the Table 1 text table."""
    return format_table(rows, COLUMNS, title="Table 1: reporting behaviour")


@instrumented_experiment("table1")
def main(scale=0.02, seed=0, workers=1):
    """Run and print (entry point used by the benchmark harness)."""
    rows = run(scale=scale, seed=seed, workers=workers)
    print(render(rows))
    return rows
