"""Experiment T1 — reproduce Table 1 (reporting behaviour summary).

Simulates every synthetic benchmark on its generated input and reports
the static and dynamic columns next to the paper's published values.
The dynamic percentages should track the paper closely (they are the
generators' calibration targets); absolute counts scale with the input.

The experiment is declared as a stage graph (``generate -> simulate8 ->
table1_row`` per benchmark) executed by the runtime scheduler: the
expensive stages are content-addressed in the shared artifact store, so
they are shared with Table 4 (same generate/simulate8 artifacts) and
skipped entirely on warm runs, and the scheduler fans stage executions
across ``workers`` processes with byte-identical output.
"""

from ..runtime import Runtime, StageGraph
from ..workloads.registry import BENCHMARK_NAMES
from ..obs import instrumented_experiment
from .formatting import format_table

COLUMNS = [
    ("benchmark", "Benchmark"),
    ("family", "Family"),
    ("states", "#States"),
    ("report_states", "#RepStates"),
    ("report_state_pct", "Rep%"),
    ("paper_report_state_pct", "Rep%(paper)"),
    ("reports", "#Reports"),
    ("report_cycles", "#RepCycles"),
    ("reports_per_report_cycle", "R/RC"),
    ("paper_reports_per_report_cycle", "R/RC(paper)"),
    ("report_cycle_pct", "RC%"),
    ("paper_report_cycle_pct", "RC%(paper)"),
]


def select_names(names, experiment):
    """Validate a benchmark selection (shared by every table harness)."""
    chosen = list(names) if names is not None else list(BENCHMARK_NAMES)
    if not chosen:
        raise ValueError(
            "%s: empty benchmark selection (pass names=None for the full "
            "suite)" % experiment)
    return chosen


def simulation_params(base, batch=1, shards=1, prefilter=False,
                      hotcold=None, plan=None):
    """Simulate-stage params with the execution strategy salted in.

    ``batch``/``shards``/``prefilter``/``hotcold`` join the params only
    when enabled, so plain serial runs keep their pre-existing artifact
    keys (warm stores stay warm) while batched/sharded/gated runs are
    content-addressed separately.

    An explicit ``plan`` (:class:`~repro.exec.ExecutionPlan`) replaces
    the legacy knobs entirely: its :meth:`param_payload` joins the params
    only when non-default, following the same key-salting rule, and
    passing non-default legacy knobs alongside it is an error.
    """
    params = dict(base)
    if plan is not None:
        if (int(batch) > 1 or shards == "auto" or int(shards) > 1
                or prefilter or hotcold is not None):
            raise ValueError(
                "simulation_params: pass either plan= or the legacy "
                "batch/shards/prefilter/hotcold knobs, not both")
        payload = plan.param_payload()
        if payload:
            params["plan"] = payload
        return params
    if batch and int(batch) > 1:
        params["batch"] = int(batch)
    if shards == "auto":
        params["shards"] = "auto"
    elif shards and int(shards) > 1:
        params["shards"] = int(shards)
    if prefilter:
        params["prefilter"] = True
        if hotcold is not None:
            params["hotcold"] = float(hotcold)
    return params


def define(graph, scale, seed, names, batch=1, shards=1, prefilter=False,
           hotcold=None, plan=None):
    """Declare Table 1's stages; returns the per-benchmark row tasks."""
    rows = []
    for name in names:
        gen = graph.task("generate",
                         {"name": name, "scale": scale, "seed": seed})
        sim = graph.task("simulate8",
                         simulation_params({"name": name}, batch, shards,
                                           prefilter, hotcold, plan=plan),
                         deps=[gen])
        rows.append(graph.task("table1_row", {"name": name},
                               deps=[gen, sim]))
    return rows


def run(scale=0.02, seed=0, names=None, workers=1, runtime=None,
        batch=1, shards=1, prefilter=False, hotcold=None, plan=None):
    """Simulate the suite; returns the list of result rows.

    ``workers`` fans the stage executions out across a process pool
    (0 = all cores); rows come back in suite order regardless.  Pass a
    shared ``runtime`` to deduplicate stages with other experiments.
    ``batch``/``shards`` pick the engine execution strategy for the
    simulate stages (bit-exact either way; see docs/performance.md);
    ``prefilter`` gates them behind the two-stage literal prefilter
    (reports stay bit-exact, active-state statistics are skipped on
    gated runs), and ``hotcold`` additionally records the hot/cold
    state split at the given activity coverage.  An explicit ``plan``
    (:class:`~repro.exec.ExecutionPlan`) supersedes those knobs.
    """
    chosen = select_names(names, "table1.run")
    if runtime is None:
        runtime = Runtime(workers=workers)
    graph = StageGraph()
    tasks = define(graph, scale, seed, chosen, batch=batch, shards=shards,
                   prefilter=prefilter, hotcold=hotcold, plan=plan)
    results = runtime.execute(graph, targets=tasks)
    return [results[task] for task in tasks]


def render(rows):
    """Format result rows as the Table 1 text table."""
    return format_table(rows, COLUMNS, title="Table 1: reporting behaviour")


@instrumented_experiment("table1")
def main(scale=0.02, seed=0, workers=1, batch=1, shards=1, prefilter=False,
         hotcold=None, plan=None):
    """Run and print (entry point used by the benchmark harness)."""
    rows = run(scale=scale, seed=seed, workers=workers,
               batch=batch, shards=shards, prefilter=prefilter,
               hotcold=hotcold, plan=plan)
    print(render(rows))
    return rows
