"""Experiment T2 — Table 2 (subarray parameters).

These are model *inputs* (published outputs of the authors' NDA memory
compiler), so the experiment simply materializes and checks them; the
derived quantities (area/bit, 8T:6T ratio) are what downstream models
consume.
"""

from ..hwmodel.subarray_params import CA_MATCHING, SUNDER_8T, table2_rows
from ..obs import instrumented_experiment
from .formatting import format_table

COLUMNS = [
    ("usage", "Usage"),
    ("cell", "Cell"),
    ("size", "Size"),
    ("delay_ps", "Delay (ps)"),
    ("read_power_mw", "Read power (mW)"),
    ("area_um2", "Area (um2)"),
]


def run():
    """Return Table 2 rows plus the derived ratios the paper quotes."""
    rows = table2_rows()
    derived = {
        "area_ratio_8t_over_6t": SUNDER_8T.area_um2 / CA_MATCHING.area_um2,
        "delay_ratio_8t_over_6t": SUNDER_8T.delay_ps / CA_MATCHING.delay_ps,
    }
    return rows, derived


def render(rows, derived):
    """Format as the Table 2 text table."""
    text = format_table(rows, COLUMNS, title="Table 2: subarray parameters (14nm)")
    text += "\n8T/6T area ratio: %.2fx (paper: ~2.1x)" % (
        derived["area_ratio_8t_over_6t"]
    )
    return text


@instrumented_experiment("table2")
def main():
    """Run and print."""
    rows, derived = run()
    print(render(rows, derived))
    return rows
