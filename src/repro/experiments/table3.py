"""Experiment T3 — Table 3 (state/transition overhead per processing rate).

For each benchmark, transform the 8-bit automaton to 1-, 2-, and 4-nibble
processing and report the state and transition counts normalized to the
original — the cost side of the throughput/density trade-off.

Declared as a stage graph: one ``generate`` task per benchmark fans into
one ``to_rate`` task per rate, and a ``table3_row`` stage derives the
ratios.  The ``to_rate`` artifacts are the same content-addressed
machines Table 4 and the scorecard need (key-chained through the
transform cache's code version), so a shared artifact store makes later
runs — and sibling experiments in the same scorecard — hit instead of
re-transforming.
"""

from ..runtime import Runtime, StageGraph
from ..obs import instrumented_experiment
from .formatting import average_row, format_table
from .table1 import select_names

COLUMNS = [
    ("benchmark", "Benchmark"),
    ("states_1", "States x1"),
    ("states_2", "States x2"),
    ("states_4", "States x4"),
    ("transitions_1", "Trans x1"),
    ("transitions_2", "Trans x2"),
    ("transitions_4", "Trans x4"),
]


def define(graph, scale, seed, names, rates):
    """Declare Table 3's stages; returns the per-benchmark row tasks."""
    rows = []
    for name in names:
        gen = graph.task("generate",
                         {"name": name, "scale": scale, "seed": seed})
        machines = [graph.task("to_rate", {"name": name, "rate": rate},
                               deps=[gen]) for rate in rates]
        rows.append(graph.task("table3_row",
                               {"name": name, "rates": list(rates)},
                               deps=[gen] + machines))
    return rows


def run(scale=0.01, seed=0, names=None, rates=(1, 2, 4), workers=1,
        runtime=None):
    """Measure transformation overheads; returns (rows, averages).

    ``workers`` fans the stage executions out across a process pool
    (0 = all cores); row order is the suite order regardless.  Pass a
    shared ``runtime`` to deduplicate stages with other experiments.
    """
    chosen = select_names(names, "table3.run")
    rates = tuple(rates)
    if runtime is None:
        runtime = Runtime(workers=workers)
    graph = StageGraph()
    tasks = define(graph, scale, seed, chosen, rates)
    results = runtime.execute(graph, targets=tasks)
    rows = [results[task] for task in tasks]
    keys = (["states_%d" % rate for rate in rates]
            + ["transitions_%d" % rate for rate in rates])
    return rows, average_row(rows, keys)


def render(rows, averages):
    """Format as the Table 3 text table."""
    return format_table(
        rows + [averages], COLUMNS,
        title="Table 3: transform overhead vs 8-bit original "
              "(paper averages: states 3.1x/1.0x/1.2x, transitions 4.5x/1.0x/1.8x)",
    )


@instrumented_experiment("table3")
def main(scale=0.01, seed=0, names=None, workers=1):
    """Run and print."""
    rows, averages = run(scale=scale, seed=seed, names=names, workers=workers)
    print(render(rows, averages))
    return rows, averages
