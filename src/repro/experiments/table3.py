"""Experiment T3 — Table 3 (state/transition overhead per processing rate).

For each benchmark, transform the 8-bit automaton to 1-, 2-, and 4-nibble
processing and report the state and transition counts normalized to the
original — the cost side of the throughput/density trade-off.

All transforms run through the content-addressed cache
(:mod:`repro.transform.cache`): the nibble and strided machines built
here are the same artifacts Table 4 and the scorecard need, so a shared
cache (or disk tier, for ``workers > 1``) makes later runs hit instead
of re-transforming.
"""

from ..sim.parallel import ParallelRunner
from ..transform.pipeline import transform_overhead
from ..workloads.registry import BENCHMARK_NAMES, generate
from ..obs import instrumented_experiment
from .formatting import format_table

COLUMNS = [
    ("benchmark", "Benchmark"),
    ("states_1", "States x1"),
    ("states_2", "States x2"),
    ("states_4", "States x4"),
    ("transitions_1", "Trans x1"),
    ("transitions_2", "Trans x2"),
    ("transitions_4", "Trans x4"),
]

def _evaluate_job(job):
    """One benchmark's overhead row from a picklable (name, scale, seed,
    rates) spec."""
    name, scale, seed, rates = job
    instance = generate(name, scale=scale, seed=seed)
    overhead = transform_overhead(instance.automaton, rates=rates)
    row = {"benchmark": name}
    for rate in rates:
        row["states_%d" % rate] = overhead[rate]["state_ratio"]
        row["transitions_%d" % rate] = overhead[rate]["transition_ratio"]
    return row


def run(scale=0.01, seed=0, names=None, rates=(1, 2, 4), workers=1):
    """Measure transformation overheads; returns (rows, averages).

    ``workers`` fans the per-benchmark transforms out across a process
    pool (0 = all cores); row order is the suite order regardless.
    """
    chosen = names if names is not None else BENCHMARK_NAMES
    rates = tuple(rates)
    jobs = [(name, scale, seed, rates) for name in chosen]
    rows = ParallelRunner(workers).map(_evaluate_job, jobs)
    count = len(rows)
    averages = {"benchmark": "Average"}
    for rate in rates:
        averages["states_%d" % rate] = (
            sum(row["states_%d" % rate] for row in rows) / count)
        averages["transitions_%d" % rate] = (
            sum(row["transitions_%d" % rate] for row in rows) / count)
    return rows, averages


def render(rows, averages):
    """Format as the Table 3 text table."""
    return format_table(
        rows + [averages], COLUMNS,
        title="Table 3: transform overhead vs 8-bit original "
              "(paper averages: states 3.1x/1.0x/1.2x, transitions 4.5x/1.0x/1.8x)",
    )


@instrumented_experiment("table3")
def main(scale=0.01, seed=0, names=None, workers=1):
    """Run and print."""
    rows, averages = run(scale=scale, seed=seed, names=names, workers=workers)
    print(render(rows, averages))
    return rows, averages
