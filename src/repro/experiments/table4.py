"""Experiment T4 — Table 4 (reporting overhead across architectures).

For every benchmark:

1. The 8-bit automaton runs in the functional simulator to produce the
   exact per-cycle report stream; the AP and AP+RAD queue models replay
   it (the AP is an 8-bit architecture, so its cycle base is bytes).
2. The automaton is transformed to 4-nibble (16-bit) processing, run
   again, placed onto Sunder PUs, and the per-PU report profile drives
   the Sunder reporting-region model twice — stop-and-flush and FIFO —
   giving #flushes and the reporting overhead on Sunder's cycle base.

Flush-count convention: we count flush *events summed over subarrays*
(the paper's counting convention is not fully specified; see
EXPERIMENTS.md for the comparison discussion).

The ``to_rate`` transform in step 2 is served by the content-addressed
transform cache, so a Table 3 run (or a previous Table 4 run) over the
same ``(benchmark, scale, seed)`` machines makes the configure phase a
cache hit.
"""

from ..baselines.ap import ApReportingModel
from ..core.config import SunderConfig
from ..core.mapping import place
from ..core.perfmodel import ReportingPerfModel, pu_fill_cycles_from_events
from ..sim.engine import BitsetEngine
from ..sim.inputs import stream_for
from ..sim.parallel import ParallelRunner
from ..sim.reports import ReportRecorder
from ..transform.pipeline import to_rate
from ..workloads.registry import BENCHMARK_NAMES, PAPER_TABLE4, generate
from ..obs import instrumented_experiment, trace_span
from .formatting import format_table

COLUMNS = [
    ("benchmark", "Benchmark"),
    ("sunder_flushes", "Flushes"),
    ("sunder_overhead", "Sunder"),
    ("paper_sunder", "(paper)"),
    ("sunder_fifo_flushes", "Flushes/FIFO"),
    ("sunder_fifo_overhead", "Sunder FIFO"),
    ("paper_sunder_fifo", "(paper)"),
    ("ap_overhead", "AP"),
    ("paper_ap", "(paper)"),
    ("rad_overhead", "AP+RAD"),
    ("paper_rad", "(paper)"),
]


def evaluate_benchmark(instance, rate=4, config=None, scale=1.0):
    """Full Table 4 row for one workload instance.

    ``scale`` is the workload generation scale; the AP model shrinks its
    fixed buffer geometry by the same factor (see ApReportingModel).
    """
    automaton = instance.automaton
    data = instance.input_bytes

    # --- configure: transform + place onto Sunder PUs ------------------
    with trace_span("table4.configure", benchmark=instance.name):
        strided = to_rate(automaton, rate)
        if config is None:
            config = SunderConfig(rate_nibbles=rate)
        placement = place(strided, config)

    # --- run: exact report streams from the functional simulator -------
    with trace_span("table4.run", benchmark=instance.name):
        engine = BitsetEngine(automaton)
        recorder = ReportRecorder(keep_events=True)
        engine.run(list(data), recorder)
        byte_cycles = len(data)
        vectors, limit = stream_for(strided, data)
        strided_recorder = ReportRecorder(keep_events=True,
                                          position_limit=limit)
        BitsetEngine(strided).run(vectors, strided_recorder)
        vector_cycles = len(vectors)

    # --- report-drain: replay the profiles through the buffer models ---
    with trace_span("table4.report_drain", benchmark=instance.name):
        report_ids = [state.id for state in automaton.report_states()]
        ap = ApReportingModel(rad=False, scale=scale).evaluate(
            recorder.events, report_ids, byte_cycles
        )
        rad = ApReportingModel(rad=True, scale=scale).evaluate(
            recorder.events, report_ids, byte_cycles
        )
        fills = pu_fill_cycles_from_events(strided_recorder.events, placement)
        no_fifo = ReportingPerfModel(_with_fifo(config, False)).evaluate(
            fills, vector_cycles, capacity_scale=scale
        )
        fifo = ReportingPerfModel(_with_fifo(config, True)).evaluate(
            fills, vector_cycles, capacity_scale=scale
        )

    paper = instance.paper_row and PAPER_TABLE4.get(instance.name, {})
    return {
        "benchmark": instance.name,
        "sunder_flushes": no_fifo.flushes,
        "sunder_overhead": no_fifo.slowdown,
        "sunder_fifo_flushes": fifo.flushes,
        "sunder_fifo_overhead": fifo.slowdown,
        "ap_overhead": ap.slowdown,
        "rad_overhead": rad.slowdown,
        "paper_sunder": paper.get("sunder"),
        "paper_sunder_fifo": paper.get("sunder_fifo"),
        "paper_ap": paper.get("ap"),
        "paper_rad": paper.get("ap_rad"),
        "pus": len(placement.pus_used()),
        "byte_cycles": byte_cycles,
        "vector_cycles": vector_cycles,
    }


def _with_fifo(config, fifo):
    """Clone a config with the FIFO strategy toggled."""
    return SunderConfig(
        rate_nibbles=config.rate_nibbles,
        report_bits=config.report_bits,
        metadata_bits=config.metadata_bits,
        fifo=fifo,
        flush_rows_per_cycle=config.flush_rows_per_cycle,
        fifo_drain_rows_per_cycle=config.fifo_drain_rows_per_cycle,
        summarize_batch_rows=config.summarize_batch_rows,
        summarize_stall_cycles=config.summarize_stall_cycles,
    )


def _evaluate_job(job):
    """One benchmark's Table 4 row from a picklable (name, scale, seed,
    rate) spec."""
    name, scale, seed, rate = job
    instance = generate(name, scale=scale, seed=seed)
    return evaluate_benchmark(instance, rate=rate, scale=scale)


def run(scale=0.01, seed=0, names=None, rate=4, workers=1):
    """Evaluate the suite; returns (rows, averages).

    ``workers`` fans the per-benchmark simulate+replay pipelines out
    across a process pool (0 = all cores); row order is the suite order
    regardless.
    """
    chosen = names if names is not None else BENCHMARK_NAMES
    jobs = [(name, scale, seed, rate) for name in chosen]
    rows = ParallelRunner(workers).map(_evaluate_job, jobs)
    averages = {
        "benchmark": "Average",
        "sunder_overhead": _mean(rows, "sunder_overhead"),
        "sunder_fifo_overhead": _mean(rows, "sunder_fifo_overhead"),
        "ap_overhead": _mean(rows, "ap_overhead"),
        "rad_overhead": _mean(rows, "rad_overhead"),
        "paper_sunder": 1.0,
        "paper_sunder_fifo": 1.0,
        "paper_ap": 4.69,
        "paper_rad": 2.23,
    }
    return rows, averages


def _mean(rows, key):
    return sum(row[key] for row in rows) / len(rows)


def render(rows, averages):
    """Format as the Table 4 text table."""
    return format_table(
        rows + [averages], COLUMNS,
        title="Table 4: reporting overhead (4-nibble processing)",
    )


@instrumented_experiment("table4")
def main(scale=0.01, seed=0, names=None, workers=1):
    """Run and print."""
    rows, averages = run(scale=scale, seed=seed, names=names, workers=workers)
    print(render(rows, averages))
    return rows, averages
