"""Experiment T4 — Table 4 (reporting overhead across architectures).

For every benchmark:

1. The 8-bit automaton runs in the functional simulator to produce the
   exact per-cycle report stream; the AP and AP+RAD queue models replay
   it (the AP is an 8-bit architecture, so its cycle base is bytes).
2. The automaton is transformed to 4-nibble (16-bit) processing, run
   again, placed onto Sunder PUs, and the per-PU report profile drives
   the Sunder reporting-region model twice — stop-and-flush and FIFO —
   giving #flushes and the reporting overhead on Sunder's cycle base.

Flush-count convention: we count flush *events summed over subarrays*
(the paper's counting convention is not fully specified; see
EXPERIMENTS.md for the comparison discussion).

Declared as a stage graph per benchmark::

    generate -> simulate8 ----------------------------\\
            \\-> to_rate -> simulate_strided -----------+-> report_drain
                       \\-> place ----------------------/

``generate``/``simulate8`` are shared with Table 1 and ``to_rate`` with
Table 3 through the content-addressed artifact store, so a scorecard
run (or a warm ``--artifact-dir``) executes each only once; the cheap
``place``/``report_drain`` replays re-run every time.
"""

from ..core.config import SunderConfig
from ..core.mapping import place
from ..core.packed import resolve_fidelity
from ..runtime import Runtime, StageGraph
from ..runtime.stages import drain_row
from ..runtime.artifacts import SimRun
from ..sim.engine import BitsetEngine
from ..sim.inputs import stream_for
from ..sim.reports import ReportRecorder
from ..transform.pipeline import to_rate
from ..obs import instrumented_experiment, trace_span
from .formatting import average_row, format_table
from .table1 import select_names, simulation_params

COLUMNS = [
    ("benchmark", "Benchmark"),
    ("sunder_flushes", "Flushes"),
    ("sunder_overhead", "Sunder"),
    ("paper_sunder", "(paper)"),
    ("sunder_fifo_flushes", "Flushes/FIFO"),
    ("sunder_fifo_overhead", "Sunder FIFO"),
    ("paper_sunder_fifo", "(paper)"),
    ("ap_overhead", "AP"),
    ("paper_ap", "(paper)"),
    ("rad_overhead", "AP+RAD"),
    ("paper_rad", "(paper)"),
]

#: Paper averages appended to the summary row.
PAPER_AVERAGES = {
    "paper_sunder": 1.0,
    "paper_sunder_fifo": 1.0,
    "paper_ap": 4.69,
    "paper_rad": 2.23,
}


def evaluate_benchmark(instance, rate=4, config=None, scale=1.0,
                       fidelity="auto"):
    """Full Table 4 row for one workload instance.

    This is the direct, graph-free path for *custom* instances (the
    registry-driven suite goes through :func:`define`); both call the
    same :func:`~repro.runtime.stages.drain_row` replay.  ``scale`` is
    the workload generation scale; the AP model shrinks its fixed buffer
    geometry by the same factor (see ApReportingModel).  ``fidelity`` is
    the device-fidelity knob (validated here; the replay itself runs on
    report profiles, not a bit-level device).
    """
    resolve_fidelity(fidelity)
    automaton = instance.automaton
    data = instance.input_bytes

    # --- configure: transform + place onto Sunder PUs ------------------
    with trace_span("table4.configure", benchmark=instance.name):
        strided = to_rate(automaton, rate)
        if config is None:
            config = SunderConfig(rate_nibbles=rate)
        placement = place(strided, config)

    # --- run: exact report streams from the functional simulator -------
    with trace_span("table4.run", benchmark=instance.name):
        engine = BitsetEngine(automaton)
        recorder = ReportRecorder(keep_events=True)
        engine.run(list(data), recorder)
        run8 = SimRun(recorder, len(data))
        vectors, limit = stream_for(strided, data)
        strided_recorder = ReportRecorder(keep_events=True,
                                          position_limit=limit)
        BitsetEngine(strided).run(vectors, strided_recorder)
        strided_run = SimRun(strided_recorder, len(vectors))

    # --- report-drain: replay the profiles through the buffer models ---
    with trace_span("table4.report_drain", benchmark=instance.name):
        return drain_row(instance, run8, strided_run, placement,
                         rate=rate, scale=scale, config=config)


def define(graph, scale, seed, names, rate, fidelity="auto",
           batch=1, shards=1, prefilter=False, hotcold=None, plan=None):
    """Declare Table 4's stages; returns the per-benchmark row tasks.

    ``fidelity`` salts the device-bearing ``place``/``report_drain``
    stage params so packed/literal runs never alias (the knob is
    otherwise inert here — the replays run on cached report profiles).
    ``batch``/``shards`` select the simulate stages' engine strategy and
    salt their keys the same way (only when > 1); ``prefilter``/
    ``hotcold`` gate them behind the literal prefilter (only when
    enabled).  An explicit ``plan`` supersedes every one of those knobs:
    the simulate stages carry its payload and the device-bearing stages
    take their fidelity from it.
    """
    if plan is not None:
        if fidelity != "auto":
            raise ValueError(
                "table4.define: pass either plan= or fidelity=, not both")
        fidelity = plan.fidelity
    rows = []
    for name in names:
        gen = graph.task("generate",
                         {"name": name, "scale": scale, "seed": seed})
        sim8 = graph.task("simulate8",
                          simulation_params({"name": name}, batch, shards,
                                            prefilter, hotcold, plan=plan),
                          deps=[gen])
        strided = graph.task("to_rate", {"name": name, "rate": rate},
                             deps=[gen])
        sim_strided = graph.task(
            "simulate_strided",
            simulation_params({"name": name, "rate": rate}, batch, shards,
                              prefilter, hotcold, plan=plan),
            deps=[gen, strided])
        placed = graph.task("place",
                            {"name": name, "rate": rate,
                             "fidelity": fidelity},
                            deps=[strided])
        rows.append(graph.task(
            "report_drain",
            {"name": name, "rate": rate, "scale": scale,
             "fidelity": fidelity},
            deps=[gen, sim8, sim_strided, placed]))
    return rows


def run(scale=0.01, seed=0, names=None, rate=4, workers=1, runtime=None,
        fidelity="auto", batch=1, shards=1, prefilter=False, hotcold=None,
        plan=None):
    """Evaluate the suite; returns (rows, averages).

    ``workers`` fans the stage executions out across a process pool
    (0 = all cores); row order is the suite order regardless.  Pass a
    shared ``runtime`` to deduplicate stages with other experiments.
    ``batch``/``shards`` pick the engine execution strategy for the
    simulate stages (bit-exact either way; see docs/performance.md);
    ``prefilter``/``hotcold`` gate them behind the literal prefilter.
    """
    chosen = select_names(names, "table4.run")
    if runtime is None:
        runtime = Runtime(workers=workers)
    graph = StageGraph()
    tasks = define(graph, scale, seed, chosen, rate, fidelity=fidelity,
                   batch=batch, shards=shards, prefilter=prefilter,
                   hotcold=hotcold, plan=plan)
    results = runtime.execute(graph, targets=tasks)
    rows = [results[task] for task in tasks]
    averages = average_row(
        rows, ("sunder_overhead", "sunder_fifo_overhead", "ap_overhead",
               "rad_overhead"),
        extra=PAPER_AVERAGES)
    return rows, averages


def render(rows, averages):
    """Format as the Table 4 text table."""
    return format_table(
        rows + [averages], COLUMNS,
        title="Table 4: reporting overhead (4-nibble processing)",
    )


@instrumented_experiment("table4")
def main(scale=0.01, seed=0, names=None, workers=1, fidelity="auto",
         batch=1, shards=1, prefilter=False, hotcold=None, plan=None):
    """Run and print."""
    rows, averages = run(scale=scale, seed=seed, names=names, workers=workers,
                         fidelity=fidelity, batch=batch, shards=shards,
                         prefilter=prefilter, hotcold=hotcold, plan=plan)
    print(render(rows, averages))
    return rows, averages
