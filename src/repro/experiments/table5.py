"""Experiment T5 — Table 5 (pipeline delays and operating frequencies)."""

from ..hwmodel.pipeline import table5_rows
from ..obs import instrumented_experiment
from .formatting import format_table

COLUMNS = [
    ("architecture", "Architecture"),
    ("state_matching_ps", "Match (ps)"),
    ("local_switch_ps", "Local sw (ps)"),
    ("global_switch_ps", "Global sw (ps)"),
    ("max_frequency_ghz", "Max freq (GHz)"),
    ("operating_frequency_ghz", "Op freq (GHz)"),
]

#: The paper's published operating frequencies, for comparison.
PAPER_OPERATING_GHZ = {
    "Sunder (14nm)": 3.6,
    "Impala (14nm)": 5.0,
    "CA (14nm)": 3.6,
    "AP (50nm)": 0.133,
    "AP (14nm, projected)": 1.69,
}


def run():
    """Compute Table 5 rows with paper reference values attached."""
    rows = table5_rows()
    for row in rows:
        row["paper_operating_ghz"] = PAPER_OPERATING_GHZ.get(row["architecture"])
    return rows


def render(rows):
    """Format as the Table 5 text table."""
    columns = COLUMNS + [("paper_operating_ghz", "Paper (GHz)")]
    return format_table(rows, columns, title="Table 5: pipeline frequencies")


@instrumented_experiment("table5")
def main():
    """Run and print."""
    rows = run()
    print(render(rows))
    return rows
