"""Extensions beyond the paper's core artifacts.

- :mod:`repro.extensions.hotcold` — Liu et al. (MICRO'18)-style hot/cold
  state splitting, whose larger intermediate-report volume the paper
  argues Sunder's reporting architecture absorbs (Section 1).
- :mod:`repro.extensions.energy` usage lives in :mod:`repro.hwmodel.energy`.
"""

from .hotcold import HotColdSplit, profile_enabled_states, split_hot_cold

__all__ = ["HotColdSplit", "profile_enabled_states", "split_hot_cold"]
