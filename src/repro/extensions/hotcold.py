"""Hot/cold automaton splitting (after Liu et al., MICRO'18).

Not every NFA state is ever *enabled* at runtime; Liu et al. configure
only the frequently-enabled ("hot") states on the in-memory accelerator
and let the CPU handle the cold remainder.  That shrinks the hardware
footprint (fewer reconfiguration rounds) but creates **intermediate
reports**: whenever a hot state on the boundary activates, the event must
be shipped to the CPU so it can continue the cold part.  The Sunder paper
argues its reporting architecture is complementary — it absorbs exactly
this extra reporting traffic (Section 1).

This module implements the split and quantifies the claim:

1. :func:`profile_enabled_states` — run a sample input and count, per
   state, the cycles in which it was *active* (a superset proxy for
   enabled-ness that matches Liu et al.'s profiling).
2. :func:`split_hot_cold` — keep the hottest states covering a target
   fraction of activity, close the set so every hot state is reachable
   from hot starts, and mark *boundary* states (hot states with a cold
   successor) as additional reporting states.
3. :meth:`HotColdSplit.evaluate_reporting` — feed the combined
   (original + intermediate) report stream through both the Sunder and
   AP reporting models.
"""

from collections import Counter

from ..automata.automaton import Automaton
from ..automata.ste import StartKind
from ..errors import WorkloadError
from ..sim.engine import BitsetEngine

#: Report-code prefix for synthesized boundary reports.
BOUNDARY_CODE_PREFIX = "hotcold-boundary/"


def profile_enabled_states(automaton, sample_stream):
    """Per-state activation counts over a sample input.

    Returns a Counter mapping state id -> cycles active.  States absent
    from the counter were never active (cold by definition).
    """
    engine = BitsetEngine(automaton)
    counts = Counter()
    engine.reset()
    for raw in sample_stream:
        vector = (raw,) if isinstance(raw, int) else tuple(raw)
        engine.step(vector)
        for state_id in engine.active_ids():
            counts[state_id] += 1
    return counts


class HotColdSplit:
    """Result of splitting an automaton into hot and cold halves."""

    def __init__(self, original, hot_automaton, hot_ids, boundary_ids):
        self.original = original
        self.hot_automaton = hot_automaton
        self.hot_ids = hot_ids
        self.boundary_ids = boundary_ids

    @property
    def hardware_states(self):
        """States that must be configured on the accelerator."""
        return len(self.hot_ids)

    @property
    def state_savings(self):
        """Fraction of the original automaton kept off the hardware."""
        if len(self.original) == 0:
            return 0.0
        return 1.0 - len(self.hot_ids) / len(self.original)

    def run(self, stream, position_limit=None):
        """Execute the hot half; returns its recorder.

        Reports include the original reporting states that stayed hot
        plus one boundary report per activation of a boundary state —
        the intermediate results the CPU needs.
        """
        return BitsetEngine(self.hot_automaton).run(
            stream, position_limit=position_limit
        )

    def intermediate_report_fraction(self, stream):
        """Fraction of reports that are boundary (intermediate) events."""
        recorder = self.run(stream)
        if recorder.total_reports == 0:
            return 0.0
        boundary = sum(
            1 for event in recorder.events
            if str(event.report_code).startswith(BOUNDARY_CODE_PREFIX)
        )
        return boundary / recorder.total_reports

    def __repr__(self):
        return "HotColdSplit(hot=%d/%d states, %d boundary)" % (
            len(self.hot_ids), len(self.original), len(self.boundary_ids),
        )


def split_hot_cold(automaton, sample_stream, activity_coverage=0.95):
    """Split ``automaton`` by profiled activity.

    ``activity_coverage`` is the fraction of total profiled activations
    the hot set must cover (Liu et al. keep the states responsible for
    almost all activity).  Start states are always hot (they are enabled
    by definition).  Returns a :class:`HotColdSplit`.
    """
    if not 0.0 < activity_coverage <= 1.0:
        raise WorkloadError("activity_coverage must be in (0, 1]")
    profile = profile_enabled_states(automaton, sample_stream)
    total_activity = sum(profile.values())

    hot_ids = {state.id for state in automaton.start_states()}
    covered = sum(profile.get(state_id, 0) for state_id in hot_ids)
    for state_id, count in profile.most_common():
        if total_activity and covered / total_activity >= activity_coverage:
            break
        if state_id not in hot_ids:
            hot_ids.add(state_id)
            covered += count

    # Close the hot set for reachability *from* hot starts: a hot state
    # only matters if the hardware can actually activate it.
    reachable = set()
    frontier = [s.id for s in automaton.start_states()]
    reachable.update(frontier)
    while frontier:
        current = frontier.pop()
        for successor in automaton.successors(current):
            if successor in hot_ids and successor not in reachable:
                reachable.add(successor)
                frontier.append(successor)
    hot_ids = reachable

    boundary_ids = {
        state_id for state_id in hot_ids
        if any(succ not in hot_ids for succ in automaton.successors(state_id))
    }

    hot = Automaton(
        name=automaton.name + ".hot",
        bits=automaton.bits,
        arity=automaton.arity,
        start_period=automaton.start_period,
    )
    for state_id in hot_ids:
        state = automaton.state(state_id)
        if state_id in boundary_ids and not state.report:
            # Boundary states become reporting states: their activations
            # are the intermediate results shipped to the CPU.
            from ..automata.ste import Ste
            state = Ste(
                state.id, state.symbols, start=state.start, report=True,
                report_code=BOUNDARY_CODE_PREFIX + str(state_id),
            )
        else:
            state = state.clone()
        hot.add_state(state)
    for state_id in hot_ids:
        for successor in automaton.successors(state_id):
            if successor in hot_ids:
                hot.add_transition(state_id, successor)
    hot.prune_unreachable()
    return HotColdSplit(automaton, hot, hot_ids, boundary_ids)
