"""Technology/circuit models: Table 2 parameters, Table 5 pipeline, Figure 9 area."""

from .energy import ENERGY_PJ, EnergyReport, analytic_energy, device_energy
from .area import (
    STATES_PER_CLUSTER,
    STATES_PER_SUBARRAY,
    SUNDER_REPORTING_OVERHEAD,
    ap_area_um2,
    ca_area_um2,
    figure9_breakdown,
    impala_area_um2,
    interconnect_area_um2,
    sunder_area_um2,
    throughput_per_area,
)
from .pipeline import (
    AP_FREQUENCY_GHZ_50NM,
    CA_PIPELINE,
    IMPALA_PIPELINE,
    SUNDER_PIPELINE,
    PipelineModel,
    ap_frequency_ghz,
    project_frequency,
    table5_rows,
)
from .subarray_params import (
    CA_MATCHING,
    IMPALA_MATCHING,
    SUNDER_8T,
    TABLE2,
    SubarrayParams,
    table2_rows,
)

__all__ = [
    "AP_FREQUENCY_GHZ_50NM",
    "ENERGY_PJ",
    "EnergyReport",
    "analytic_energy",
    "device_energy",
    "CA_MATCHING",
    "CA_PIPELINE",
    "IMPALA_MATCHING",
    "IMPALA_PIPELINE",
    "STATES_PER_CLUSTER",
    "STATES_PER_SUBARRAY",
    "SUNDER_8T",
    "SUNDER_PIPELINE",
    "SUNDER_REPORTING_OVERHEAD",
    "SubarrayParams",
    "PipelineModel",
    "TABLE2",
    "ap_area_um2",
    "ap_frequency_ghz",
    "ca_area_um2",
    "figure9_breakdown",
    "impala_area_um2",
    "interconnect_area_um2",
    "project_frequency",
    "sunder_area_um2",
    "table2_rows",
    "throughput_per_area",
    "table5_rows",
]
