"""Area model for Figure 9: 32K STEs, 14nm, per-component breakdown.

Components per architecture:

- *state matching*: subarrays sized per Table 2.  Sunder and CA pack 256
  states per 256x256 array; Impala packs 16 states per 16x16 array and
  needs one array per nibble position (4 at its fixed 16-bit rate).
- *interconnect*: one 256x256 8T local crossbar per 256 states plus one
  global switch array per 1024-state cluster (the hierarchical design all
  three SRAM architectures share).
- *reporting*: Sunder's reporting lives inside the matching arrays at a
  2% circuitry overhead.  The AP-style reporting bolted onto CA and
  Impala is modelled as an area *fraction* of the kernel; the published
  estimate for the AP is 40% of chip area (Gwennap, MPR 2014), and the
  paper's Figure 9 ratios imply similar fractions for CA/Impala.  These
  fractions are the calibration knobs recorded in EXPERIMENTS.md.
"""

from .subarray_params import CA_MATCHING, IMPALA_MATCHING, SUNDER_8T

#: States per 256-column subarray / local crossbar.
STATES_PER_SUBARRAY = 256
#: States per global-switch cluster (4 subarrays, paper Section 5).
STATES_PER_CLUSTER = 1024
#: Extra circuitry Sunder adds for reporting (decoders, OR tree, counter).
SUNDER_REPORTING_OVERHEAD = 0.02
#: AP-style reporting area as a fraction of total chip area [Gwennap 2014].
AP_REPORTING_CHIP_FRACTION = 0.40
#: Impala's fixed rate: four nibble positions matched in parallel.
IMPALA_NIBBLE_LANES = 4


def _ceil_div(numerator, denominator):
    return -(-numerator // denominator)


def interconnect_area_um2(num_states):
    """Hierarchical crossbar area shared by Sunder, CA, and Impala."""
    local = _ceil_div(num_states, STATES_PER_SUBARRAY) * SUNDER_8T.area_um2
    global_switches = _ceil_div(num_states, STATES_PER_CLUSTER) * SUNDER_8T.area_um2
    return local + global_switches


def sunder_area_um2(num_states):
    """Sunder area breakdown: matching+reporting fused, plus interconnect."""
    arrays = _ceil_div(num_states, STATES_PER_SUBARRAY)
    matching = arrays * SUNDER_8T.area_um2
    reporting = matching * SUNDER_REPORTING_OVERHEAD
    return {
        "matching": matching,
        "reporting": reporting,
        "interconnect": interconnect_area_um2(num_states),
    }


def ca_area_um2(num_states, reporting_fraction=AP_REPORTING_CHIP_FRACTION):
    """Cache Automaton: 6T matching, 8T interconnect, AP-style reporting."""
    arrays = _ceil_div(num_states, STATES_PER_SUBARRAY)
    matching = arrays * CA_MATCHING.area_um2
    interconnect = interconnect_area_um2(num_states)
    kernel = matching + interconnect
    reporting = kernel * reporting_fraction / (1.0 - reporting_fraction)
    return {
        "matching": matching,
        "reporting": reporting,
        "interconnect": interconnect,
    }


def impala_area_um2(num_states, reporting_fraction=AP_REPORTING_CHIP_FRACTION):
    """Impala: tiny 6T matching arrays x4 lanes, 8T interconnect, AP reporting."""
    groups = _ceil_div(num_states, IMPALA_MATCHING.cols)
    matching = groups * IMPALA_NIBBLE_LANES * IMPALA_MATCHING.area_um2
    interconnect = interconnect_area_um2(num_states)
    kernel = matching + interconnect
    reporting = kernel * reporting_fraction / (1.0 - reporting_fraction)
    return {
        "matching": matching,
        "reporting": reporting,
        "interconnect": interconnect,
    }


def ap_area_um2(num_states, sunder_total_ratio=2.1):
    """The AP's area, anchored to the paper's published 2.1x ratio.

    The AP is a DRAM-process design with no public per-component area
    data, so its Figure 9 bar is reconstructed from the paper's stated
    ratio to Sunder and the 40% reporting fraction from [Gwennap 2014].
    """
    total = sunder_total_ratio * sum(sunder_area_um2(num_states).values())
    reporting = total * AP_REPORTING_CHIP_FRACTION
    kernel = total - reporting
    return {
        "matching": kernel * 0.5,
        "reporting": reporting,
        "interconnect": kernel * 0.5,
    }


def throughput_per_area(num_states=32768):
    """Throughput density (Gbps/mm2) — the conclusion's headline metric.

    The paper closes with "three orders of magnitude higher throughput
    per unit area compared to the Micron's AP".  The AP's bar is its
    *native 50nm* silicon: its 14nm-equivalent area grows back by the
    quadratic feature-size ratio, and its throughput is the native
    0.133 GHz x 8 bits.
    """
    from .pipeline import (
        AP_TECHNOLOGY_NM,
        TARGET_TECHNOLOGY_NM,
        ap_frequency_ghz,
        SUNDER_PIPELINE,
        CA_PIPELINE,
        IMPALA_PIPELINE,
    )

    scaling = (AP_TECHNOLOGY_NM / TARGET_TECHNOLOGY_NM) ** 2
    sunder_mm2 = sum(sunder_area_um2(num_states).values()) / 1e6
    ca_mm2 = sum(ca_area_um2(num_states).values()) / 1e6
    impala_mm2 = sum(impala_area_um2(num_states).values()) / 1e6
    ap_mm2_14 = sum(ap_area_um2(num_states).values()) / 1e6

    rows = [
        {"architecture": "Sunder",
         "gbps": SUNDER_PIPELINE.operating_frequency_ghz * 16,
         "area_mm2": sunder_mm2},
        {"architecture": "Impala",
         "gbps": IMPALA_PIPELINE.operating_frequency_ghz * 16,
         "area_mm2": impala_mm2},
        {"architecture": "CA",
         "gbps": CA_PIPELINE.operating_frequency_ghz * 8,
         "area_mm2": ca_mm2},
        {"architecture": "AP (50nm silicon)",
         "gbps": ap_frequency_ghz(AP_TECHNOLOGY_NM) * 8,
         "area_mm2": ap_mm2_14 * scaling},
    ]
    sunder_density = rows[0]["gbps"] / rows[0]["area_mm2"]
    for row in rows:
        row["gbps_per_mm2"] = row["gbps"] / row["area_mm2"]
        row["sunder_density_ratio"] = sunder_density / row["gbps_per_mm2"]
    return rows


#: Figure 9's architectures, in presentation order, with their models.
_AREA_MODELS = {
    "Sunder": sunder_area_um2,
    "CA": ca_area_um2,
    "Impala": impala_area_um2,
    "AP": ap_area_um2,
}


def _breakdown_job(job):
    """One architecture's component areas from a picklable (name, states)."""
    name, num_states = job
    return name, _AREA_MODELS[name](num_states)


def breakdown_table(parts_by_name):
    """Figure 9 rows (mm2 + ratios) from per-architecture component areas.

    ``parts_by_name`` maps architecture name to its ``{matching,
    reporting, interconnect}`` um2 dict, in presentation order.  Shared
    by :func:`figure9_breakdown` and the ``figure9_arch`` runtime stage
    so both paths produce identical rows.
    """
    sunder_total = sum(parts_by_name["Sunder"].values())
    table = []
    for name, parts in parts_by_name.items():
        total = sum(parts.values())
        table.append({
            "architecture": name,
            "matching_mm2": parts["matching"] / 1e6,
            "interconnect_mm2": parts["interconnect"] / 1e6,
            "reporting_mm2": parts["reporting"] / 1e6,
            "total_mm2": total / 1e6,
            "ratio_to_sunder": total / sunder_total,
        })
    return table


def figure9_breakdown(num_states=32768, workers=1):
    """Area breakdown for every architecture, plus ratios to Sunder.

    ``workers`` fans the per-architecture evaluations out through
    :class:`repro.sim.parallel.ParallelRunner` (0 = all cores); row
    order and values are identical at any worker count.
    """
    from ..sim.parallel import ParallelRunner

    jobs = [(name, num_states) for name in _AREA_MODELS]
    rows = dict(ParallelRunner(workers).map(_breakdown_job, jobs))
    return breakdown_table(rows)
