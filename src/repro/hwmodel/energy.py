"""Dynamic energy model derived from Table 2's read-power figures.

The paper reports per-subarray read power at the nominal 0.8V/14nm corner;
dynamic energy per access is ``power x access delay``.  Combining the
access counts of a simulated run (matching reads, crossbar evaluations,
report writes/reads) with those per-access energies yields an end-to-end
energy estimate — an extension artifact the paper does not tabulate but
its models imply.
"""

from .subarray_params import CA_MATCHING, IMPALA_MATCHING, SUNDER_8T


def _energy_pj(params):
    """Energy of one access in picojoules: mW x ps = nW*s*1e-... = 1e-3 pJ."""
    return params.read_power_mw * params.delay_ps * 1e-3


#: Per-access energies (pJ) for each subarray flavour.
ENERGY_PJ = {
    "sunder_8t": _energy_pj(SUNDER_8T),
    "ca_6t": _energy_pj(CA_MATCHING),
    "impala_6t": _energy_pj(IMPALA_MATCHING),
}


class EnergyReport:
    """Energy breakdown of one run, in nanojoules."""

    def __init__(self, matching_nj, interconnect_nj, reporting_nj):
        self.matching_nj = matching_nj
        self.interconnect_nj = interconnect_nj
        self.reporting_nj = reporting_nj

    @property
    def total_nj(self):
        return self.matching_nj + self.interconnect_nj + self.reporting_nj

    def per_byte_pj(self, input_bytes):
        """Average energy per input byte in picojoules."""
        if input_bytes == 0:
            return 0.0
        return self.total_nj * 1000.0 / input_bytes

    def __repr__(self):
        return ("EnergyReport(match=%.2fnJ, ic=%.2fnJ, report=%.2fnJ, "
                "total=%.2fnJ)" % (self.matching_nj, self.interconnect_nj,
                                   self.reporting_nj, self.total_nj))


def device_energy(device):
    """Energy of everything a :class:`SunderDevice` did since configuration.

    Uses the per-port access counters of every subarray: Port-2 reads are
    matching/crossbar evaluations (8T access each), Port-1 traffic is
    configuration plus reporting.
    """
    # Packed runs defer matching-side counter updates; flush them first.
    device.sync_dynamic_state()
    matching = 0
    interconnect = 0
    reporting = 0
    per_access = ENERGY_PJ["sunder_8t"]
    for _, _, pu in device.iter_pus():
        matching += pu.subarray.port2_reads * per_access
        reporting += (pu.subarray.port1_writes + pu.subarray.port1_reads) \
            * per_access
        interconnect += pu.crossbar.subarray.port2_reads * per_access
    for cluster in device.clusters:
        interconnect += (
            cluster.global_switch.crossbar.subarray.port2_reads * per_access
        )
    return EnergyReport(matching / 1000.0, interconnect / 1000.0,
                        reporting / 1000.0)


def analytic_energy(cycles, pus, report_cycles, reports_drained_rows=0):
    """Closed-form energy for big runs (no bit-level device needed).

    Per cycle, every active PU performs one matching evaluation and one
    local-crossbar evaluation, plus one global-switch evaluation per
    cluster; every report cycle adds a Port-1 entry write; every drained
    or flushed row adds a Port-1 read.
    """
    per_access = ENERGY_PJ["sunder_8t"]
    matching = cycles * pus * per_access
    interconnect = cycles * pus * per_access  # local switches
    interconnect += cycles * max(1, pus // 4) * per_access  # global switches
    reporting = (report_cycles + reports_drained_rows) * per_access
    return EnergyReport(matching / 1000.0, interconnect / 1000.0,
                        reporting / 1000.0)
