"""Pipeline-stage delays and operating frequency — the paper's Table 5.

Automata processing pipelines three stages per symbol: state matching,
local switch, and global switch.  Frequency is set by the slowest stage,
derated 10% for estimation error.  Global-switch delay is the crossbar
read access plus SPICE-modelled wire delay to the slice-level switch.
"""

from .subarray_params import CA_MATCHING, IMPALA_MATCHING, SUNDER_8T

#: SPICE-derived wire delay (paper Section 7.4).
WIRE_DELAY_PS_PER_MM = 66.0
#: Half the slice dimension: distance from a subarray to the global switch.
GLOBAL_WIRE_MM = 1.5
#: Impala's subarrays are ~5x smaller, so its wire run is much shorter.
IMPALA_GLOBAL_WIRE_PS = 20.0
#: Derating applied to the max frequency ("10% less than calculated").
FREQUENCY_MARGIN = 0.10

#: The Micron AP's published symbol rate (50nm DRAM process).
AP_FREQUENCY_GHZ_50NM = 0.133
#: Technology nodes for the AP projection.
AP_TECHNOLOGY_NM = 50
TARGET_TECHNOLOGY_NM = 14


class PipelineModel:
    """Stage delays and derived frequencies for one architecture."""

    def __init__(self, name, matching_ps, local_switch_ps, global_switch_ps):
        self.name = name
        self.matching_ps = matching_ps
        self.local_switch_ps = local_switch_ps
        self.global_switch_ps = global_switch_ps

    @property
    def critical_path_ps(self):
        """Slowest pipeline stage (stages evaluate in parallel per cycle)."""
        return max(self.matching_ps, self.local_switch_ps, self.global_switch_ps)

    @property
    def max_frequency_ghz(self):
        """1 / critical-path delay."""
        return 1000.0 / self.critical_path_ps

    @property
    def operating_frequency_ghz(self):
        """Max frequency derated by :data:`FREQUENCY_MARGIN`."""
        return self.max_frequency_ghz * (1.0 - FREQUENCY_MARGIN)


def _global_switch_ps(read_ps, wire_ps):
    return read_ps + wire_ps


#: Sunder: 8T matching (150ps), 8T local switch, 8T global switch + wire.
SUNDER_PIPELINE = PipelineModel(
    "Sunder",
    matching_ps=SUNDER_8T.delay_ps,
    local_switch_ps=SUNDER_8T.delay_ps,
    global_switch_ps=_global_switch_ps(
        SUNDER_8T.delay_ps, WIRE_DELAY_PS_PER_MM * GLOBAL_WIRE_MM
    ),
)

#: Impala: 6T 16x16 matching (180ps), short global wires (20ps).
IMPALA_PIPELINE = PipelineModel(
    "Impala",
    matching_ps=IMPALA_MATCHING.delay_ps,
    local_switch_ps=SUNDER_8T.delay_ps,
    global_switch_ps=_global_switch_ps(SUNDER_8T.delay_ps, IMPALA_GLOBAL_WIRE_PS),
)

#: Cache Automaton: 6T 256x256 matching (220ps), same interconnect as Sunder.
CA_PIPELINE = PipelineModel(
    "CA",
    matching_ps=CA_MATCHING.delay_ps,
    local_switch_ps=SUNDER_8T.delay_ps,
    global_switch_ps=_global_switch_ps(
        SUNDER_8T.delay_ps, WIRE_DELAY_PS_PER_MM * GLOBAL_WIRE_MM
    ),
)


def project_frequency(frequency_ghz, from_nm, to_nm):
    """Idealized linear Dennard projection across technology nodes.

    The paper projects the AP's 0.133 GHz at 50nm to 14nm "as an ideal
    assumption"; linear scaling with feature size gives 0.133 * 50/14 =
    0.475... which is far below the paper's 1.69 GHz, so the paper uses
    roughly quadratic (area) scaling: 0.133 * (50/14)^2 = 1.70 GHz.  We
    follow the quadratic interpretation since it reproduces Table 5.
    """
    ratio = from_nm / to_nm
    return frequency_ghz * ratio * ratio


def ap_frequency_ghz(technology_nm=TARGET_TECHNOLOGY_NM):
    """AP operating frequency at 50nm or projected to ``technology_nm``."""
    if technology_nm == AP_TECHNOLOGY_NM:
        return AP_FREQUENCY_GHZ_50NM
    return project_frequency(
        AP_FREQUENCY_GHZ_50NM, AP_TECHNOLOGY_NM, technology_nm
    )


def table5_rows():
    """Table 5 as dict rows: stage delays plus derived frequencies."""
    rows = []
    for model in (SUNDER_PIPELINE, IMPALA_PIPELINE, CA_PIPELINE):
        rows.append({
            "architecture": "%s (14nm)" % model.name,
            "state_matching_ps": model.matching_ps,
            "local_switch_ps": model.local_switch_ps,
            "global_switch_ps": model.global_switch_ps,
            "max_frequency_ghz": model.max_frequency_ghz,
            "operating_frequency_ghz": model.operating_frequency_ghz,
        })
    rows.append({
        "architecture": "AP (50nm)",
        "state_matching_ps": None,
        "local_switch_ps": None,
        "global_switch_ps": None,
        "max_frequency_ghz": AP_FREQUENCY_GHZ_50NM,
        "operating_frequency_ghz": AP_FREQUENCY_GHZ_50NM,
    })
    rows.append({
        "architecture": "AP (14nm, projected)",
        "state_matching_ps": None,
        "local_switch_ps": None,
        "global_switch_ps": None,
        "max_frequency_ghz": ap_frequency_ghz(14),
        "operating_frequency_ghz": ap_frequency_ghz(14),
    })
    return rows
