"""Subarray circuit parameters — the paper's Table 2.

The paper obtained these from a 14nm memory compiler under NDA and SPICE
wire models; the numbers below are the published outputs, used here as
model inputs (exactly how the paper derives Tables 5 and Figures 8-9).
"""


class SubarrayParams:
    """Delay/power/area of one SRAM subarray including peripherals."""

    __slots__ = ("usage", "cell_type", "rows", "cols", "delay_ps",
                 "read_power_mw", "area_um2")

    def __init__(self, usage, cell_type, rows, cols, delay_ps,
                 read_power_mw, area_um2):
        self.usage = usage
        self.cell_type = cell_type
        self.rows = rows
        self.cols = cols
        self.delay_ps = delay_ps
        self.read_power_mw = read_power_mw
        self.area_um2 = area_um2

    @property
    def bits(self):
        """Raw storage capacity in bits."""
        return self.rows * self.cols

    @property
    def area_per_bit_um2(self):
        """Area efficiency including peripheral overhead."""
        return self.area_um2 / self.bits

    def __repr__(self):
        return ("SubarrayParams(%s, %s, %dx%d, %dps, %.2fmW, %dum2)" % (
            self.usage, self.cell_type, self.rows, self.cols,
            self.delay_ps, self.read_power_mw, self.area_um2))


#: Technology node for every entry below.
TECHNOLOGY_NM = 14
#: Nominal supply voltage used by the memory compiler runs.
NOMINAL_VDD = 0.8

#: Impala's state-matching subarray: tiny 16x16 6T arrays.
IMPALA_MATCHING = SubarrayParams("state-matching (Impala)", "6T", 16, 16,
                                 180, 0.58, 453)
#: Cache Automaton's state-matching subarray: 256x256 6T.
CA_MATCHING = SubarrayParams("state-matching (CA)", "6T", 256, 256,
                             220, 5.52, 9394)
#: The 8T subarray used for every interconnect crossbar and for Sunder's
#: combined state-matching + reporting array.  8T cells have wider
#: transistors: faster reads, ~2.1x the 6T area.
SUNDER_8T = SubarrayParams("interconnect / state-matching (Sunder)", "8T",
                           256, 256, 150, 6.07, 20102)

TABLE2 = (IMPALA_MATCHING, CA_MATCHING, SUNDER_8T)


def table2_rows():
    """Table 2 as a list of dict rows (for the experiment harness)."""
    return [
        {
            "usage": params.usage,
            "cell": params.cell_type,
            "size": "%dx%d" % (params.rows, params.cols),
            "delay_ps": params.delay_ps,
            "read_power_mw": params.read_power_mw,
            "area_um2": params.area_um2,
        }
        for params in TABLE2
    ]
