"""repro.obs — unified telemetry: metrics, span tracing, profiling hooks.

Three pillars, all dependency-free:

- **Metrics** (:mod:`repro.obs.metrics`): :class:`Counter`,
  :class:`Gauge`, :class:`Histogram` with labelled children, collected
  in a :class:`MetricsRegistry` (process-global default:
  :data:`REGISTRY`) with Prometheus-text and JSON exposition.
- **Span tracing** (:mod:`repro.obs.spans`): :func:`trace_span` yields
  nested wall-time spans per thread; a :class:`TraceCollector` exports
  them as JSONL or a Chrome ``trace_event`` file (Perfetto-loadable).
- **Hooks**: the simulator stack (``BitsetEngine.run``,
  ``SunderDevice``, the transform pipeline, every experiment entry
  point) is instrumented *default-on but near-free* — with no collector
  attached each hook site costs one attribute check.

Usage::

    from repro import obs

    trace = obs.TraceCollector()
    with obs.collecting(trace=trace):
        with obs.trace_span("my.workload", name="snort"):
            device.run(vectors)
        print(obs.OBS.registry.render_text())
    trace.write_chrome_trace("trace.json")

or from the shell: ``python -m repro profile experiment table4
--metrics-out m.json --trace-out t.json``.
"""

import functools
import time
from contextlib import contextmanager

from ..errors import ObservabilityError
from .instruments import Instruments, instruments_for
from .metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .schema import validate_snapshot
from .spans import NULL_SPAN, Span, TraceCollector

from .progress import ProgressReporter, stage_progress


class ObservabilityState:
    """The process-wide collector switchboard.

    ``active`` is the single flag every hook site checks; the other
    fields are only read once a hook finds the state active.
    """

    __slots__ = ("active", "registry", "trace", "instruments")

    def __init__(self):
        self.active = False
        self.registry = None
        self.trace = None
        self.instruments = None


#: The one switchboard the built-in hooks consult.
OBS = ObservabilityState()


def attach(registry=None, trace=None):
    """Start collecting: hooks record into ``registry`` (default:
    :data:`REGISTRY`) and, if given, spans into ``trace``.

    Returns the registry in use.  Attaching while already attached
    raises — profiling sessions do not nest.
    """
    if OBS.active:
        raise ObservabilityError("a collector is already attached")
    if registry is None:
        registry = REGISTRY
    OBS.registry = registry
    OBS.trace = trace
    OBS.instruments = instruments_for(registry)
    OBS.active = True
    return registry


def detach():
    """Stop collecting; hook sites revert to the single cheap check."""
    OBS.active = False
    OBS.registry = None
    OBS.trace = None
    OBS.instruments = None


@contextmanager
def collecting(registry=None, trace=None):
    """``attach()``/``detach()`` as a context manager; yields the state."""
    attach(registry=registry, trace=trace)
    try:
        yield OBS
    finally:
        detach()


def trace_span(name, **attrs):
    """Open a nested wall-time span, or a no-op when nothing collects.

    Near-free when unattached: one attribute check, no allocation.
    """
    if not OBS.active or OBS.trace is None:
        return NULL_SPAN
    return OBS.trace.span(name, **attrs)


def instrumented_experiment(name):
    """Decorator for experiment entry points: one span + run metrics.

    Applied to every ``experiments.table*/figure*`` ``main``; when no
    collector is attached the wrapper adds a single attribute check.
    """
    def decorate(func):
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not OBS.active:
                return func(*args, **kwargs)
            instruments = OBS.instruments
            start = time.perf_counter()
            with trace_span("experiment." + name):
                result = func(*args, **kwargs)
            instruments.experiment_runs.labels(experiment=name).inc()
            instruments.experiment_seconds.labels(experiment=name).observe(
                time.perf_counter() - start)
            return result
        return wrapper
    return decorate


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "Instruments",
    "MetricsRegistry",
    "OBS",
    "ObservabilityError",
    "ObservabilityState",
    "ProgressReporter",
    "REGISTRY",
    "Span",
    "TraceCollector",
    "attach",
    "collecting",
    "detach",
    "instrumented_experiment",
    "instruments_for",
    "stage_progress",
    "trace_span",
    "validate_snapshot",
]
