"""Fleet telemetry: cross-process metric aggregation + trace stitching.

The in-process collector (:mod:`repro.obs`) only sees what runs in its
own process; :class:`~repro.sim.parallel.ParallelRunner` fans jobs out
to pool workers, which historically ran *blind* — worker-side engine,
device, and transform metrics were simply dropped.  This module closes
that gap:

- **Capture** — :func:`run_observed_job` wraps one job in the worker:
  it attaches a fresh registry (and, when the parent traces, a fresh
  :class:`~repro.obs.spans.TraceCollector`), runs the job, and ships
  the telemetry back inside a versioned :func:`envelope
  <build_envelope>` alongside the job's result.
- **Merge** — :func:`merge_envelopes` folds the envelopes back into the
  parent's attached collector **in job order**, which makes the merge
  deterministic: counters sum, histograms merge bucket-wise
  (:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`), gauges
  take the last writer in job order.  Worker provenance is preserved in
  the ``repro_fleet_envelopes_total{worker}`` counter.
- **Stitch** — worker spans carry the trace context injected at
  ``parallel.map`` fan-out (:func:`observed_jobs`), so
  :meth:`~repro.obs.spans.TraceCollector.graft` re-parents them under
  the live ``parallel.map`` span with one track per worker process —
  a ``--workers 8`` profile renders as a single coherent timeline.

A ``--workers N`` profiled run therefore emits **one** metrics snapshot
whose engine/device/transform counters equal the serial run's totals,
and **one** trace file with per-worker tracks nested under the fan-out
span (pinned by ``tests/test_fleet.py``).
"""

import os
from time import perf_counter

from ..errors import ObservabilityError
from . import OBS, attach, detach
from .metrics import MetricsRegistry
from .spans import TraceCollector

#: Schema identifier written into (and required from) every envelope.
ENVELOPE_SCHEMA = "repro-fleet"
ENVELOPE_VERSION = 1


def build_envelope(registry, trace=None, worker=None, context=None):
    """Package one worker's telemetry into a picklable envelope dict."""
    return {
        "schema": ENVELOPE_SCHEMA,
        "version": ENVELOPE_VERSION,
        "worker": worker if worker is not None else os.getpid(),
        "context": context,
        "metrics": registry.snapshot(),
        "spans": ([span.as_dict() for span in trace.finished()]
                  if trace is not None else []),
    }


def validate_envelope(envelope):
    """Check an envelope's wrapper fields; raises ObservabilityError.

    Returns the envelope unchanged so callers can chain.
    """
    if not isinstance(envelope, dict):
        raise ObservabilityError(
            "fleet envelope must be a dict, got %r"
            % type(envelope).__name__)
    if envelope.get("schema") != ENVELOPE_SCHEMA:
        raise ObservabilityError(
            "fleet envelope schema %r != %r"
            % (envelope.get("schema"), ENVELOPE_SCHEMA))
    if envelope.get("version") != ENVELOPE_VERSION:
        raise ObservabilityError(
            "fleet envelope version %r != %d"
            % (envelope.get("version"), ENVELOPE_VERSION))
    if not isinstance(envelope.get("metrics"), dict):
        raise ObservabilityError("fleet envelope lacks a metrics snapshot")
    if not isinstance(envelope.get("spans"), list):
        raise ObservabilityError("fleet envelope lacks a spans list")
    return envelope


def observed_jobs(func, jobs, context=None, capture_spans=True):
    """Wrap ``jobs`` for :func:`run_observed_job` pool dispatch.

    ``context`` is the fan-out span's propagated trace context
    (:attr:`_ActiveSpan.context`); every worker job carries it so its
    spans can be stitched back under the right parent.
    """
    return [(func, job, context, capture_spans) for job in jobs]


def run_observed_job(payload):
    """Execute one wrapped job in a pool worker, capturing telemetry.

    Module-level so the process pool can pickle it.  Attaches a fresh
    registry/trace around the job, so each envelope covers exactly one
    job and the parent can merge envelopes in deterministic job order.
    Returns ``(result, envelope)``; the envelope is None when a
    collector is already attached in this process (nested fan-out —
    the outer capture already covers it).
    """
    func, job, context, capture_spans = payload
    if OBS.active:
        return func(job), None
    registry = MetricsRegistry()
    trace = TraceCollector() if capture_spans else None
    attach(registry=registry, trace=trace)
    try:
        start = perf_counter()
        result = func(job)
        OBS.instruments.parallel_job_seconds.labels(mode="process").observe(
            perf_counter() - start)
    finally:
        detach()
    return result, build_envelope(registry, trace, context=context)


def merge_envelopes(envelopes):
    """Fold worker envelopes into the attached parent collector.

    Envelopes are merged in the given (job) order — the determinism
    contract callers rely on.  ``None`` entries (jobs that ran without
    capture) are skipped.  Returns the number of envelopes merged; a
    no-op when no collector is attached.
    """
    if not OBS.active:
        return 0
    registry = OBS.registry
    trace = OBS.trace
    instruments = OBS.instruments
    merged = 0
    for envelope in envelopes:
        if envelope is None:
            continue
        validate_envelope(envelope)
        samples = registry.merge_snapshot(envelope["metrics"])
        instruments.fleet_merged_samples.inc(samples)
        instruments.fleet_envelopes.labels(worker=envelope["worker"]).inc()
        if trace is not None and envelope["spans"]:
            stitched = trace.graft(envelope["spans"],
                                   context=envelope.get("context"),
                                   thread_id=envelope["worker"])
            instruments.fleet_spans_stitched.inc(stitched)
        merged += 1
    return merged
