"""The metric catalogue: every hot-path instrument, pre-registered.

One :class:`Instruments` bundle is built per registry the first time a
collector is attached to it, so hook sites grab ready-made handles
instead of doing name lookups per call.  The catalogue below is the
documented contract (see ``docs/observability.md``); the schema smoke
check and ``tests/test_obs.py`` both pin it.
"""

#: Buckets for per-cycle active-state counts (powers of two up to one
#: full subarray's 256 states).
ACTIVE_STATE_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)
#: Buckets for wall-time stage/run durations, in seconds.
SECONDS_BUCKETS = (0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
                   10.0, 30.0, 60.0)
#: Buckets for transform blow-up ratios (output/input states).
RATIO_BUCKETS = (0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0)
#: Buckets for run_batch lane counts (powers of two up to a large fleet).
BATCH_LANE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)
#: Buckets for shard warm-up overlap lengths, in sub-symbol units.
OVERLAP_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024)
#: Buckets for extracted literal-set sizes per prefilter build.
LITERAL_COUNT_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096)


class Instruments:
    """Handles for every metric the built-in hooks record."""

    def __init__(self, registry):
        counter = registry.counter
        gauge = registry.gauge
        histogram = registry.histogram

        # --- functional engine (repro.sim.engine) ---------------------
        self.engine_runs = counter(
            "repro_engine_runs_total",
            "Completed BitsetEngine.run invocations.", ("engine",))
        self.engine_cycles = counter(
            "repro_engine_cycles_total",
            "Vector cycles executed by the functional engine.", ("engine",))
        self.engine_reports = counter(
            "repro_engine_reports_total",
            "Report events recorded by the functional engine.", ("engine",))
        self.engine_active_states = histogram(
            "repro_engine_active_states",
            "Active states per executed cycle.", ("engine",),
            buckets=ACTIVE_STATE_BUCKETS)
        self.engine_run_seconds = histogram(
            "repro_engine_run_seconds",
            "Wall time of one engine run.", ("engine",),
            buckets=SECONDS_BUCKETS)
        self.engine_step_cache_hits = counter(
            "repro_engine_step_cache_hits_total",
            "Step-memoization cache hits during engine runs.", ("engine",))
        self.engine_step_cache_misses = counter(
            "repro_engine_step_cache_misses_total",
            "Step-memoization cache misses during engine runs.", ("engine",))
        self.engine_batch_lanes = histogram(
            "repro_engine_batch_lanes",
            "Lane count per run_batch invocation.", ("engine",),
            buckets=BATCH_LANE_BUCKETS)
        self.engine_batch_lane_cache_hits = counter(
            "repro_engine_batch_lane_cache_hits_total",
            "Step-cache hits inside batched lanes (summed per-lane counts "
            "of every run_batch).", ("engine",))
        self.engine_batch_lane_cache_misses = counter(
            "repro_engine_batch_lane_cache_misses_total",
            "Step-cache misses inside batched lanes (summed per-lane "
            "counts of every run_batch).", ("engine",))
        self.shard_overlap_bytes = histogram(
            "repro_shard_overlap_bytes",
            "Warm-up overlap replayed per shard block, in sub-symbol "
            "units (depth bound x arity, clamped to the block start).",
            buckets=OVERLAP_BUCKETS)
        self._engine_handles = {}

        # --- parallel experiment runner (repro.sim.parallel) -----------
        self.parallel_jobs = counter(
            "repro_parallel_jobs_total",
            "Jobs executed by ParallelRunner.map.", ("mode",))
        self.parallel_workers = gauge(
            "repro_parallel_workers",
            "Worker-process count used by the last ParallelRunner.map.")
        self.parallel_job_seconds = histogram(
            "repro_parallel_job_seconds",
            "Wall time of one ParallelRunner job (measured where it ran, "
            "so pool imbalance is visible, not just job counts).",
            ("mode",), buckets=SECONDS_BUCKETS)

        # --- fleet telemetry merge (repro.obs.fleet) ------------------
        self.fleet_envelopes = counter(
            "repro_fleet_envelopes_total",
            "Worker telemetry envelopes merged into the parent registry.",
            ("worker",))
        self.fleet_merged_samples = counter(
            "repro_fleet_merged_samples_total",
            "Metric samples folded in from worker envelopes.")
        self.fleet_spans_stitched = counter(
            "repro_fleet_spans_stitched_total",
            "Worker spans grafted into the parent trace.")

        # --- Sunder device (repro.core.device) ------------------------
        self.device_reconfigurations = counter(
            "repro_device_reconfigurations_total",
            "SunderDevice.configure calls (automaton programmings).")
        self.device_cycles = counter(
            "repro_device_cycles_total",
            "Vector cycles streamed through SunderDevice.run.")
        self.device_stall_cycles = counter(
            "repro_device_stall_cycles_total",
            "Reporting stall cycles charged during SunderDevice.run.")
        self.device_fifo_drained = counter(
            "repro_device_fifo_drained_entries_total",
            "Report entries drained in the background by the FIFO strategy.")
        self.device_flushes = counter(
            "repro_device_flushes_total",
            "Stop-and-flush events across all reporting regions.")
        self.device_run_seconds = histogram(
            "repro_device_run_seconds",
            "Wall time of one SunderDevice.run.", buckets=SECONDS_BUCKETS)
        self.device_kernel_step_cache_hits = counter(
            "repro_device_kernel_step_cache_hits_total",
            "Packed-kernel step-cache hits during SunderDevice.run.")
        self.device_kernel_step_cache_misses = counter(
            "repro_device_kernel_step_cache_misses_total",
            "Packed-kernel step-cache misses during SunderDevice.run.")
        self.device_kernel_pus_skipped = counter(
            "repro_device_kernel_pus_skipped_total",
            "Idle PU-cycles the packed kernel skipped (zero enable bits "
            "and no start boundary).")
        self.device_kernel_compile_seconds = histogram(
            "repro_device_kernel_compile_seconds",
            "Wall time to compile the packed device kernel.",
            buckets=SECONDS_BUCKETS)
        self.device_configured_states = gauge(
            "repro_device_configured_states",
            "States placed on each cluster by the last configure().",
            ("cluster",))
        self.device_cluster_utilization = gauge(
            "repro_device_cluster_utilization",
            "Fraction of each cluster's state columns in use.", ("cluster",))

        # --- literal prefilter (repro.prefilter) ----------------------
        self.prefilter_builds = counter(
            "repro_prefilter_builds_total",
            "Prefilter builds (cache misses) by extraction outcome.",
            ("result",))
        self.prefilter_build_seconds = histogram(
            "repro_prefilter_build_seconds",
            "Wall time of one prefilter build (cache misses only).",
            buckets=SECONDS_BUCKETS)
        self.prefilter_literals = histogram(
            "repro_prefilter_literals",
            "Extracted literal-set size per filterable build.",
            buckets=LITERAL_COUNT_BUCKETS)
        self.prefilter_scan_bytes = counter(
            "repro_prefilter_scan_bytes_total",
            "Input bytes scanned by the direct filter.")
        self.prefilter_scan_seconds = histogram(
            "repro_prefilter_scan_seconds",
            "Wall time of one direct-filter scan.", buckets=SECONDS_BUCKETS)
        self.prefilter_candidate_windows = counter(
            "repro_prefilter_candidate_windows_total",
            "Candidate positions the direct-filter bitmap passed to "
            "verification.")
        self.prefilter_verified_windows = counter(
            "repro_prefilter_verified_windows_total",
            "Literal occurrences confirmed by the verification stage.")
        self.prefilter_gated_cycles = counter(
            "repro_prefilter_gated_cycles_total",
            "Cycles executed inside gated replay windows (warm-up "
            "included).")
        self.prefilter_skipped_cycles = counter(
            "repro_prefilter_skipped_cycles_total",
            "Cycles the gate skipped entirely (the kernel never woke).")
        self.prefilter_bypass = counter(
            "repro_prefilter_bypass_total",
            "Gated runs that fell back to the ungated kernel, by reason.",
            ("reason",))

        # --- hot/cold split (repro.extensions.hotcold) ----------------
        self.hotcold_state_savings = gauge(
            "repro_hotcold_state_savings",
            "Fraction of states left cold (unloaded until the prefilter "
            "fires) by the last hot/cold split.")

        # --- transform pipeline (repro.transform) ---------------------
        self.transform_runs = counter(
            "repro_transform_runs_total",
            "Completed transformation stages.", ("stage",))
        self.transform_stage_seconds = histogram(
            "repro_transform_stage_seconds",
            "Wall time per transformation stage.", ("stage",),
            buckets=SECONDS_BUCKETS)
        self.transform_state_ratio = histogram(
            "repro_transform_state_ratio",
            "Output/input state ratio per transformation stage.", ("stage",),
            buckets=RATIO_BUCKETS)
        self.transform_transition_ratio = histogram(
            "repro_transform_transition_ratio",
            "Output/input transition ratio per transformation stage.",
            ("stage",), buckets=RATIO_BUCKETS)
        self.transform_states = gauge(
            "repro_transform_states",
            "Resulting state count of the last compile-side graph op "
            "(square/minimize/merge_in/union), by op — compile-side "
            "state growth made visible in profiles.", ("op",))

        # --- transform cache (repro.transform.cache) ------------------
        self.transform_cache_hits = counter(
            "repro_transform_cache_hits_total",
            "Transform-cache hits by serving tier.", ("tier",))
        self.transform_cache_misses = counter(
            "repro_transform_cache_misses_total",
            "Transform-cache lookups that fell through to a rebuild.")
        self.transform_cache_evictions = counter(
            "repro_transform_cache_evictions_total",
            "Entries evicted from the in-process LRU tier.")
        self.transform_cache_corrupt = counter(
            "repro_transform_cache_corrupt_total",
            "On-disk artifacts that failed to decode (served as misses).")
        self.transform_cache_bytes_written = counter(
            "repro_transform_cache_bytes_written_total",
            "Bytes of artifact JSON written to the disk tier.")

        # --- stage-graph runtime (repro.runtime) ----------------------
        self.runtime_stage_hits = counter(
            "repro_runtime_stage_hits_total",
            "Stage executions served from the artifact store.", ("stage",))
        self.runtime_stage_misses = counter(
            "repro_runtime_stage_misses_total",
            "Stage executions that actually ran (artifact-store misses "
            "plus uncacheable stages).", ("stage",))
        self.runtime_stage_seconds = histogram(
            "repro_runtime_stage_seconds",
            "Wall time per executed (non-cached) stage.", ("stage",),
            buckets=SECONDS_BUCKETS)
        self.runtime_artifact_bytes_written = counter(
            "repro_runtime_artifact_bytes_written_total",
            "Bytes of artifact JSON written by the runtime store's disk "
            "tier.")
        self.stage_progress = gauge(
            "repro_stage_progress",
            "Completion fraction (0..1) of the most recent execution of "
            "each long-running stage; long kernels update it "
            "periodically so paper-scale runs are observable mid-stage.",
            ("stage",))

        # --- execution planner (repro.exec) ---------------------------
        self.plan_selected = counter(
            "repro_plan_selected_total",
            "Plans auto-selected by the execution planner, by strategy "
            "and machine-readable reason.", ("strategy", "reason"))

        # --- experiment harnesses (repro.experiments) -----------------
        self.experiment_runs = counter(
            "repro_experiment_runs_total",
            "Experiment entry-point invocations.", ("experiment",))
        self.experiment_seconds = histogram(
            "repro_experiment_seconds",
            "Wall time per experiment entry point.", ("experiment",),
            buckets=SECONDS_BUCKETS)


    def engine_handles(self, engine):
        """Pre-resolved label children of every per-engine metric.

        Resolving a metric's ``labels(...)`` child costs a dict build
        and lookup; run hot paths used to pay it per run (and a batched
        run would pay it per lane).  Hoisting the resolution here — once
        per process per engine tag — is the run-setup micro-fix
        documented in docs/performance.md.
        """
        handles = self._engine_handles.get(engine)
        if handles is None:
            handles = EngineHandles(self, engine)
            self._engine_handles[engine] = handles
        return handles


class EngineHandles:
    """One engine tag's label children, resolved once (see
    :meth:`Instruments.engine_handles`)."""

    __slots__ = ("runs", "cycles", "reports", "run_seconds",
                 "active_states", "cache_hits", "cache_misses",
                 "batch_lanes", "batch_lane_cache_hits",
                 "batch_lane_cache_misses")

    def __init__(self, instruments, engine):
        self.runs = instruments.engine_runs.labels(engine=engine)
        self.cycles = instruments.engine_cycles.labels(engine=engine)
        self.reports = instruments.engine_reports.labels(engine=engine)
        self.run_seconds = instruments.engine_run_seconds.labels(
            engine=engine)
        self.active_states = instruments.engine_active_states.labels(
            engine=engine)
        self.cache_hits = instruments.engine_step_cache_hits.labels(
            engine=engine)
        self.cache_misses = instruments.engine_step_cache_misses.labels(
            engine=engine)
        self.batch_lanes = instruments.engine_batch_lanes.labels(
            engine=engine)
        self.batch_lane_cache_hits = \
            instruments.engine_batch_lane_cache_hits.labels(engine=engine)
        self.batch_lane_cache_misses = \
            instruments.engine_batch_lane_cache_misses.labels(engine=engine)


def instruments_for(registry):
    """The (cached) :class:`Instruments` bundle of one registry."""
    bundle = getattr(registry, "_repro_instruments", None)
    if bundle is None:
        bundle = Instruments(registry)
        registry._repro_instruments = bundle
    return bundle
