"""Metrics primitives: counters, gauges, histograms, and their registry.

Zero-dependency, Prometheus-flavoured: metrics have a snake_case name, a
help string, and optional label names; labelled metrics hand out child
instances via :meth:`Metric.labels`.  A :class:`MetricsRegistry` owns a
set of uniquely-named metrics and exposes them as a JSON snapshot
(:meth:`MetricsRegistry.snapshot`) and as Prometheus text exposition
(:meth:`MetricsRegistry.render_text`).

The process-global default registry is :data:`REGISTRY`; the
instrumentation hooks throughout ``repro`` record into whatever registry
is attached via :func:`repro.obs.attach` (the default registry unless a
custom one is passed).
"""

import json
import re

from ..errors import ObservabilityError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper bounds (seconds-flavoured, like
#: Prometheus client defaults).
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Metric:
    """Common machinery for all metric kinds.

    A metric declared with ``labelnames`` is a *parent*: it holds one
    child per distinct label-value tuple and records nothing itself.  A
    metric without labels is its own single sample.
    """

    kind = None

    def __init__(self, name, help="", labelnames=()):
        if not _NAME_RE.match(name or ""):
            raise ObservabilityError("invalid metric name %r" % (name,))
        for label in labelnames:
            if not _LABEL_RE.match(label or ""):
                raise ObservabilityError("invalid label name %r" % (label,))
        if len(set(labelnames)) != len(tuple(labelnames)):
            raise ObservabilityError(
                "duplicate label names in %r" % (tuple(labelnames),)
            )
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children = {}

    # ------------------------------------------------------------------
    def labels(self, **labelvalues):
        """Child metric for one label-value combination (created lazily)."""
        if not self.labelnames:
            raise ObservabilityError(
                "metric %r declares no labels" % (self.name,)
            )
        if set(labelvalues) != set(self.labelnames):
            raise ObservabilityError(
                "metric %r expects labels %r, got %r"
                % (self.name, self.labelnames, tuple(sorted(labelvalues)))
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    def _new_child(self):
        raise NotImplementedError

    def _sample_pairs(self):
        """Yield ``(labels_dict, leaf_metric)`` for every sample."""
        if self.labelnames:
            for key, child in sorted(self._children.items()):
                yield dict(zip(self.labelnames, key)), child
        else:
            yield {}, self

    def samples(self):
        """List of plain-dict samples (shape depends on the kind)."""
        return [
            dict(labels=labels, **leaf._sample_body())
            for labels, leaf in self._sample_pairs()
        ]

    def as_dict(self):
        """Snapshot entry for this metric."""
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": self.samples(),
        }


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name, help="", labelnames=()):
        super().__init__(name, help, labelnames)
        self._value = 0

    def _new_child(self):
        return type(self)(self.name, self.help)

    def inc(self, amount=1):
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                "counter %r cannot decrease (inc %r)" % (self.name, amount)
            )
        self._value += amount

    @property
    def value(self):
        return self._value

    def _sample_body(self):
        return {"value": self._value}

    def merge_sample(self, body):
        """Fold one snapshot sample body into this counter (sums)."""
        self.inc(body["value"])


class Gauge(Metric):
    """Instantaneous value that can go up and down."""

    kind = "gauge"

    def __init__(self, name, help="", labelnames=()):
        super().__init__(name, help, labelnames)
        self._value = 0

    def _new_child(self):
        return type(self)(self.name, self.help)

    def set(self, value):
        self._value = value

    def inc(self, amount=1):
        self._value += amount

    def dec(self, amount=1):
        self._value -= amount

    @property
    def value(self):
        return self._value

    def _sample_body(self):
        return {"value": self._value}

    def merge_sample(self, body):
        """Fold one snapshot sample body into this gauge (last writer)."""
        self.set(body["value"])


class Histogram(Metric):
    """Cumulative histogram with fixed bucket upper bounds.

    ``buckets`` are finite, strictly-increasing upper bounds; a +Inf
    bucket is always appended, so ``observe`` never drops a value.
    """

    kind = "histogram"

    def __init__(self, name, help="", labelnames=(), buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError("histogram %r needs >= 1 bucket" % name)
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                "histogram %r buckets must strictly increase: %r"
                % (name, bounds)
            )
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def _new_child(self):
        return type(self)(self.name, self.help, buckets=self.buckets)

    def observe(self, value):
        """Record one observation."""
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self._counts[index] += 1
                break
        else:
            self._counts[-1] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self):
        return self._count

    @property
    def sum(self):
        return self._sum

    def bucket_counts(self):
        """Cumulative counts per bucket, ending with the +Inf bucket."""
        cumulative = []
        running = 0
        for count in self._counts:
            running += count
            cumulative.append(running)
        return cumulative

    def _sample_body(self):
        cumulative = self.bucket_counts()
        buckets = [
            {"le": bound, "count": cumulative[index]}
            for index, bound in enumerate(self.buckets)
        ]
        buckets.append({"le": "+Inf", "count": cumulative[-1]})
        return {"count": self._count, "sum": self._sum, "buckets": buckets}

    def merge_sample(self, body):
        """Fold one snapshot sample body into this histogram bucket-wise.

        The incoming buckets must use this histogram's bounds; merging a
        sample with different bucket geometry would silently misfile
        observations, so it raises instead.
        """
        buckets = body["buckets"]
        bounds = tuple(bucket["le"] for bucket in buckets[:-1])
        if bounds != self.buckets:
            raise ObservabilityError(
                "histogram %r bucket bounds %r do not match merged sample "
                "bounds %r" % (self.name, self.buckets, bounds))
        previous = 0
        for index, bucket in enumerate(buckets):
            self._counts[index] += bucket["count"] - previous
            previous = bucket["count"]
        self._sum += body["sum"]
        self._count += body["count"]


class MetricsRegistry:
    """A uniquely-named collection of metrics.

    Use the :meth:`counter` / :meth:`gauge` / :meth:`histogram` helpers
    to create-and-register in one step; registering (or creating) two
    metrics with the same name raises :class:`ObservabilityError`.
    """

    def __init__(self):
        self._metrics = {}

    # ------------------------------------------------------------------
    def register(self, metric):
        """Add a pre-built metric; returns it for chaining."""
        if metric.name in self._metrics:
            raise ObservabilityError(
                "metric %r is already registered" % (metric.name,)
            )
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name, help="", labelnames=()):
        """Create and register a :class:`Counter`."""
        return self.register(Counter(name, help, labelnames))

    def gauge(self, name, help="", labelnames=()):
        """Create and register a :class:`Gauge`."""
        return self.register(Gauge(name, help, labelnames))

    def histogram(self, name, help="", labelnames=(), buckets=DEFAULT_BUCKETS):
        """Create and register a :class:`Histogram`."""
        return self.register(Histogram(name, help, labelnames, buckets))

    def get(self, name):
        """The registered metric named ``name``, or None."""
        return self._metrics.get(name)

    def unregister(self, name):
        """Remove a metric by name (no error if absent)."""
        self._metrics.pop(name, None)

    def collect(self):
        """All registered metrics, in registration order."""
        return list(self._metrics.values())

    def __contains__(self, name):
        return name in self._metrics

    def __len__(self):
        return len(self._metrics)

    # ------------------------------------------------------------------
    # Cross-registry merge
    # ------------------------------------------------------------------
    def merge_snapshot(self, snapshot):
        """Fold a :meth:`snapshot` dict from another registry into this one.

        This is the deterministic cross-process aggregation primitive the
        fleet layer (:mod:`repro.obs.fleet`) builds on: counters **sum**,
        histograms merge **bucket-wise** (bounds must match), and gauges
        take the **last writer** — callers control determinism by merging
        snapshots in a fixed order (job order, for pool workers).  Metrics
        absent from this registry are created on first merge, inheriting
        the snapshot's name/help/labels (and bucket bounds); metrics whose
        kind or label set conflicts raise :class:`ObservabilityError`.

        Returns the number of samples merged.
        """
        merged = 0
        for entry in snapshot.get("metrics", ()):
            samples = entry.get("samples", ())
            if not samples:
                continue
            metric = self._metrics.get(entry["name"])
            if metric is None:
                metric = self._create_from_entry(entry)
            elif metric.kind != entry["type"]:
                raise ObservabilityError(
                    "cannot merge %s sample into %s metric %r"
                    % (entry["type"], metric.kind, entry["name"]))
            for sample in samples:
                labels = sample.get("labels") or {}
                leaf = metric.labels(**labels) if labels else metric
                leaf.merge_sample(sample)
                merged += 1
        return merged

    def _create_from_entry(self, entry):
        """Register a metric matching one snapshot entry's shape."""
        labelnames = tuple((entry["samples"][0].get("labels") or {}).keys())
        kind = entry["type"]
        if kind == "counter":
            return self.counter(entry["name"], entry.get("help", ""),
                                labelnames)
        if kind == "gauge":
            return self.gauge(entry["name"], entry.get("help", ""),
                              labelnames)
        if kind == "histogram":
            bounds = tuple(
                bucket["le"] for bucket in entry["samples"][0]["buckets"][:-1])
            return self.histogram(entry["name"], entry.get("help", ""),
                                  labelnames, buckets=bounds)
        raise ObservabilityError(
            "cannot merge metric %r of unknown kind %r"
            % (entry["name"], kind))

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def snapshot(self):
        """JSON-ready snapshot of every metric and sample."""
        return {
            "version": 1,
            "metrics": [metric.as_dict() for metric in self.collect()],
        }

    def render_json(self, indent=2):
        """The snapshot serialized to a JSON string."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    def render_text(self):
        """Prometheus text exposition format."""
        lines = []
        for metric in self.collect():
            if metric.help:
                lines.append("# HELP %s %s" % (
                    metric.name, _escape_help(metric.help)))
            lines.append("# TYPE %s %s" % (metric.name, metric.kind))
            for labels, leaf in metric._sample_pairs():
                if metric.kind == "histogram":
                    cumulative = leaf.bucket_counts()
                    for index, bound in enumerate(leaf.buckets):
                        bucket_labels = dict(labels)
                        bucket_labels["le"] = _format_number(bound)
                        lines.append("%s_bucket%s %d" % (
                            metric.name, _format_labels(bucket_labels),
                            cumulative[index]))
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = "+Inf"
                    lines.append("%s_bucket%s %d" % (
                        metric.name, _format_labels(bucket_labels),
                        cumulative[-1]))
                    lines.append("%s_sum%s %s" % (
                        metric.name, _format_labels(labels),
                        _format_number(leaf.sum)))
                    lines.append("%s_count%s %d" % (
                        metric.name, _format_labels(labels), leaf.count))
                else:
                    lines.append("%s%s %s" % (
                        metric.name, _format_labels(labels),
                        _format_number(leaf.value)))
        return "\n".join(lines) + "\n"


def _format_labels(labels):
    if not labels:
        return ""
    body = ",".join(
        '%s="%s"' % (name, _escape_label(str(value)))
        for name, value in sorted(labels.items())
    )
    return "{%s}" % body


def _escape_label(value):
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(text):
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_number(value):
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


#: Process-global default registry; ``attach()`` uses it unless told
#: otherwise.
REGISTRY = MetricsRegistry()
