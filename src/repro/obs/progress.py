"""Coarse progress reporting for long-running stages.

Paper-scale (``--scale 1.0``) runs spend minutes inside a single stage
— a 100k-state squaring pass or a multi-million-cycle simulation — and
a silent process is indistinguishable from a hung one.  This module
gives those kernels a single cheap hook:

- the ``repro_stage_progress`` gauge (labelled by stage) tracks the
  completion fraction ``0..1`` of the most recent execution of each
  long-running stage, so an attached metrics collector (``repro profile
  ...``, the fleet merge) can watch a run mid-stage;
- when the ``REPRO_PROGRESS`` environment variable is set (any
  non-empty value), periodic one-line updates go to stderr, rate
  limited to one line per :data:`LOG_INTERVAL` seconds per reporter.

Both outputs are optional and near-free when off: an unattached
collector plus an unset environment variable cost one attribute check
and one comparison per ``update`` call.  Kernels are expected to call
``update`` at natural chunk boundaries (every N states or vectors),
not per item.
"""

import os
import sys
import time

#: Environment variable enabling periodic stderr progress lines.
ENV_VAR = "REPRO_PROGRESS"

#: Minimum seconds between stderr lines from one reporter.
LOG_INTERVAL = 5.0


def enabled():
    """Whether stderr progress lines are requested via :data:`ENV_VAR`."""
    return bool(os.environ.get(ENV_VAR))


class ProgressReporter:
    """Tracks one stage execution's completion fraction.

    ``stage`` labels the gauge (e.g. ``"simulate"``, ``"transform"``);
    ``total`` is the unit count the stage will process (0 is treated as
    already complete).  Call :meth:`update` with the cumulative number
    of units done, and :meth:`finish` (or ``update(total)``) at the
    end.  Reporters are single-threaded like the stages they observe.
    """

    __slots__ = ("stage", "total", "detail", "_gauge", "_log",
                 "_started", "_last_log", "_last_fraction")

    def __init__(self, stage, total, detail=None):
        from . import OBS  # late: obs/__init__ imports this module
        self.stage = stage
        self.total = max(0, int(total))
        self.detail = detail
        self._gauge = (OBS.instruments.stage_progress.labels(stage=stage)
                       if OBS.active else None)
        self._log = enabled()
        self._started = time.perf_counter()
        self._last_log = self._started
        self._last_fraction = -1.0
        if self._gauge is not None:
            self._gauge.set(0.0)

    def update(self, done):
        """Record that ``done`` of ``total`` units are complete."""
        if self._gauge is None and not self._log:
            return
        fraction = 1.0 if self.total == 0 else min(
            1.0, done / float(self.total))
        if fraction <= self._last_fraction:
            return
        self._last_fraction = fraction
        if self._gauge is not None:
            self._gauge.set(fraction)
        if self._log:
            now = time.perf_counter()
            if fraction >= 1.0 or now - self._last_log >= LOG_INTERVAL:
                self._last_log = now
                self._emit(fraction, now)

    def finish(self):
        """Mark the stage complete (idempotent)."""
        self.update(self.total if self.total else 1)

    def _emit(self, fraction, now):
        label = self.stage if not self.detail else (
            "%s[%s]" % (self.stage, self.detail))
        sys.stderr.write("[repro] %s %5.1f%% (%.1fs)\n" % (
            label, fraction * 100.0, now - self._started))
        sys.stderr.flush()


def stage_progress(stage, fraction):
    """Set the progress gauge for ``stage`` directly (one-shot form).

    Used by the stage scheduler to mark stage entry (0.0) and exit
    (1.0) even for stages that never construct a reporter, so the gauge
    always exists for every executed stage.
    """
    from . import OBS
    if OBS.active:
        OBS.instruments.stage_progress.labels(stage=stage).set(
            float(fraction))
