"""Hand-rolled validator for the metrics-snapshot JSON exposition.

The snapshot format (``MetricsRegistry.snapshot()``) is a public,
machine-consumed contract — the ``make profile-smoke`` check and the
tier-2 benchmark suite validate emitted files against this schema so any
format drift fails fast, without pulling in a jsonschema dependency.
"""

import re

from ..errors import ObservabilityError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_TYPES = ("counter", "gauge", "histogram")


def _fail(path, message):
    raise ObservabilityError("metrics snapshot invalid at %s: %s"
                             % (path, message))


def _require_number(value, path):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(path, "expected a number, got %r" % (value,))


def validate_snapshot(snapshot):
    """Validate a snapshot dict; raises :class:`ObservabilityError`.

    Returns the snapshot unchanged so callers can chain.
    """
    if not isinstance(snapshot, dict):
        _fail("$", "expected an object, got %r" % type(snapshot).__name__)
    if snapshot.get("version") != 1:
        _fail("$.version", "expected 1, got %r" % (snapshot.get("version"),))
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, list):
        _fail("$.metrics", "expected a list")
    seen = set()
    for m_index, metric in enumerate(metrics):
        path = "$.metrics[%d]" % m_index
        if not isinstance(metric, dict):
            _fail(path, "expected an object")
        name = metric.get("name")
        if not isinstance(name, str) or not _NAME_RE.match(name):
            _fail(path + ".name", "bad metric name %r" % (name,))
        if name in seen:
            _fail(path + ".name", "duplicate metric %r" % (name,))
        seen.add(name)
        kind = metric.get("type")
        if kind not in _TYPES:
            _fail(path + ".type", "expected one of %r, got %r"
                  % (_TYPES, kind))
        if not isinstance(metric.get("help", ""), str):
            _fail(path + ".help", "expected a string")
        samples = metric.get("samples")
        if not isinstance(samples, list):
            _fail(path + ".samples", "expected a list")
        for s_index, sample in enumerate(samples):
            _validate_sample(sample, kind,
                             "%s.samples[%d]" % (path, s_index))
    return snapshot


def _validate_sample(sample, kind, path):
    if not isinstance(sample, dict):
        _fail(path, "expected an object")
    labels = sample.get("labels")
    if not isinstance(labels, dict):
        _fail(path + ".labels", "expected an object")
    for key, value in labels.items():
        if not isinstance(key, str) or not isinstance(value, str):
            _fail(path + ".labels", "labels must map str -> str")
    if kind in ("counter", "gauge"):
        _require_number(sample.get("value"), path + ".value")
        if kind == "counter" and sample["value"] < 0:
            _fail(path + ".value", "counter is negative")
        return
    # histogram
    count = sample.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 0:
        _fail(path + ".count", "expected a non-negative integer")
    _require_number(sample.get("sum"), path + ".sum")
    buckets = sample.get("buckets")
    if not isinstance(buckets, list) or not buckets:
        _fail(path + ".buckets", "expected a non-empty list")
    previous_bound = None
    previous_count = 0
    for b_index, bucket in enumerate(buckets):
        bucket_path = "%s.buckets[%d]" % (path, b_index)
        if not isinstance(bucket, dict):
            _fail(bucket_path, "expected an object")
        bound = bucket.get("le")
        last = b_index == len(buckets) - 1
        if last:
            if bound != "+Inf":
                _fail(bucket_path + ".le", "last bucket must be '+Inf'")
        else:
            _require_number(bound, bucket_path + ".le")
            if previous_bound is not None and bound <= previous_bound:
                _fail(bucket_path + ".le", "bounds must strictly increase")
            previous_bound = bound
        bucket_count = bucket.get("count")
        if (not isinstance(bucket_count, int) or isinstance(bucket_count, bool)
                or bucket_count < previous_count):
            _fail(bucket_path + ".count",
                  "cumulative counts must be non-decreasing integers")
        previous_count = bucket_count
    if previous_count != count:
        _fail(path, "+Inf bucket count %d != sample count %d"
              % (previous_count, count))
