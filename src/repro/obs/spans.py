"""Span tracing: nested wall-time spans with Chrome-trace export.

A :class:`TraceCollector` records :class:`Span` objects pushed/popped by
the ``trace_span`` context manager (see :mod:`repro.obs`).  Each thread
keeps its own span stack, so concurrent simulations nest correctly.

Finished traces export two ways:

- :meth:`TraceCollector.to_jsonl` — one JSON object per line, stable for
  grep/jq pipelines;
- :meth:`TraceCollector.chrome_trace` — the Chrome ``trace_event``
  format (``"ph": "X"`` complete events, microsecond timestamps), which
  loads directly into ``about://tracing`` or https://ui.perfetto.dev.
"""

import json
import os
import threading
import time


class Span:
    """One finished (or in-flight) wall-time span."""

    __slots__ = ("name", "attrs", "start", "end", "depth", "thread_id",
                 "parent", "index")

    def __init__(self, name, attrs, start, depth, thread_id, parent, index):
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end = None
        self.depth = depth
        self.thread_id = thread_id
        self.parent = parent  # index of the enclosing span, or None
        self.index = index

    @property
    def duration(self):
        """Wall-time seconds, or None while still open."""
        if self.end is None:
            return None
        return self.end - self.start

    def as_dict(self):
        """Plain-dict form (JSONL export)."""
        return {
            "index": self.index,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "thread": self.thread_id,
            "attrs": self.attrs,
        }


class _ActiveSpan:
    """Context manager pairing one ``__enter__`` with one ``__exit__``."""

    __slots__ = ("_collector", "_span")

    def __init__(self, collector, span):
        self._collector = collector
        self._span = span

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc is not None:
            self._span.attrs = dict(self._span.attrs, error=repr(exc))
        self._collector._pop(self._span)
        return False

    def set_attr(self, **attrs):
        """Merge attributes into the span (visible in every export)."""
        self._span.attrs = dict(self._span.attrs, **attrs)
        return self

    @property
    def duration(self):
        """Wall-time seconds of the span (None while still open)."""
        return self._span.duration

    @property
    def context(self):
        """Picklable parent-span context for cross-process propagation.

        Ship this dict to a worker process; spans recorded there can be
        re-attached under this span with :meth:`TraceCollector.graft`.
        """
        span = self._span
        return {"span": span.index, "name": span.name, "depth": span.depth}


class _NullSpan:
    """No-op stand-in returned when no trace collector is attached."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set_attr(self, **attrs):
        return self

    duration = None
    context = None


NULL_SPAN = _NullSpan()


class TraceCollector:
    """Accumulates spans for one profiling session."""

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._local = threading.local()
        self._lock = threading.Lock()
        self.spans = []
        self.epoch = clock()

    # ------------------------------------------------------------------
    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name, **attrs):
        """Open a span; use as ``with collector.span("x", k=v): ...``."""
        stack = self._stack()
        parent = stack[-1].index if stack else None
        with self._lock:
            index = len(self.spans)
            span = Span(
                name, attrs, self._clock(), len(stack),
                threading.get_ident(), parent, index,
            )
            self.spans.append(span)
        stack.append(span)
        return _ActiveSpan(self, span)

    def _pop(self, span):
        span.end = self._clock()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # exception unwound through nested spans
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()

    # ------------------------------------------------------------------
    def current_context(self):
        """Context dict of this thread's innermost open span, or None.

        The same shape as :attr:`_ActiveSpan.context` — pass it across a
        process boundary and :meth:`graft` the remote spans back under it.
        """
        stack = self._stack()
        if not stack:
            return None
        span = stack[-1]
        return {"span": span.index, "name": span.name, "depth": span.depth}

    def graft(self, records, context=None, thread_id=None):
        """Stitch finished span records from another collector in here.

        ``records`` are :meth:`Span.as_dict` dicts (a worker process's
        exported spans).  Their root spans are re-parented under
        ``context`` (a :meth:`current_context` /
        :attr:`_ActiveSpan.context` dict, or None for top level), depths
        are rebased accordingly, and indices are remapped so parent links
        stay consistent inside this collector.  ``thread_id`` overrides
        the recorded thread id — pass a per-worker value so each worker
        renders as its own track in the Chrome-trace export.  Start/end
        timestamps are kept as recorded (``perf_counter`` is a shared
        monotonic clock across processes on the platforms we target).

        Returns the number of spans grafted; unfinished records are
        skipped.
        """
        base_index = context["span"] if context else None
        base_depth = context["depth"] + 1 if context else 0
        grafted = 0
        with self._lock:
            index_map = {}
            for record in records:
                if record.get("duration") is None:
                    continue
                index = len(self.spans)
                index_map[record["index"]] = index
                parent = record.get("parent")
                parent = (index_map.get(parent, base_index)
                          if parent is not None else base_index)
                span = Span(
                    record["name"], dict(record["attrs"]), record["start"],
                    record["depth"] + base_depth,
                    thread_id if thread_id is not None else record["thread"],
                    parent, index,
                )
                span.end = record["start"] + record["duration"]
                self.spans.append(span)
                grafted += 1
        return grafted

    def finished(self):
        """Spans that have been closed, in open order."""
        return [span for span in self.spans if span.end is not None]

    def to_jsonl(self):
        """One JSON object per finished span, newline-separated."""
        return "\n".join(
            json.dumps(span.as_dict(), sort_keys=True)
            for span in self.finished()
        ) + ("\n" if self.spans else "")

    def chrome_trace(self):
        """Chrome ``trace_event`` document (load in Perfetto)."""
        events = []
        for span in self.finished():
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": (span.start - self.epoch) * 1e6,
                "dur": (span.end - span.start) * 1e6,
                "pid": os.getpid(),
                "tid": span.thread_id,
                "cat": span.name.split(".", 1)[0],
                "args": dict(span.attrs, depth=span.depth),
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_jsonl(self, path):
        """Write the JSONL export to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    def write_chrome_trace(self, path):
        """Write the Chrome-trace export to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)
            handle.write("\n")
