"""Two-stage literal prefilter for low-match-rate streams.

Most real traffic matches rarely, yet the ungated kernels walk the full
NFA for every byte.  This package compiles a cheap literal scan per
ruleset and wakes the expensive engines only on stream windows that
pass it:

- :mod:`~repro.prefilter.literals` — required-substring extraction from
  the automaton graph (sound by construction, or the machine is marked
  unfilterable and runs ungated);
- :mod:`~repro.prefilter.direct_filter` — DFC-style 2-byte-window
  bitmap + compact hash table + Aho-Corasick verification;
- :mod:`~repro.prefilter.gate` — window planning and gated execution in
  front of :class:`~repro.sim.engine.BitsetEngine` and
  :class:`~repro.core.device.SunderDevice`, fused with the hot/cold
  state split.

See docs/performance.md ("Two-stage prefiltering") for the crossover
analysis — prefiltering wins big on clean traffic and loses on
report-dense streams.
"""

from .direct_filter import LONG_LITERAL_LEN, DirectFilter, ScanResult
from .gate import (PREFILTER_CODEC, PREFILTER_OP, PREFILTER_VERSION,
                   Prefilter, PrefilterCodec, build_prefilter,
                   gated_device_run, gated_simulation, plan_windows,
                   record_hotcold_savings, scan_windows)
from .literals import (MAX_LITERAL_LEN, LiteralExtraction, extract_literals)

__all__ = [
    "DirectFilter",
    "LONG_LITERAL_LEN",
    "LiteralExtraction",
    "MAX_LITERAL_LEN",
    "PREFILTER_CODEC",
    "PREFILTER_OP",
    "PREFILTER_VERSION",
    "Prefilter",
    "PrefilterCodec",
    "ScanResult",
    "build_prefilter",
    "extract_literals",
    "gated_device_run",
    "gated_simulation",
    "plan_windows",
    "record_hotcold_savings",
    "scan_windows",
]
