"""DFC-style direct filter: bitmap, compact hash table, AC verification.

Stage one of the two-stage prefilter (the cheap one, run over every
byte).  The layout follows the Direct Filter Classification shape
(Choi et al., DFC; see SNIPPETS.md):

1. **direct filter** — a 65536-bit bitmap over 2-byte windows; a window
   survives iff some literal starts with those two bytes.  The scan
   itself is compiled into one :mod:`re` alternation (grouped by first
   byte, second bytes as a character class, wrapped in a zero-width
   lookahead so overlapping candidates are all enumerated), which keeps
   the per-byte work in C instead of a Python loop;
2. **compact hash table** — a dict from surviving 2-byte windows to the
   candidate literals sharing that prefix; short candidates verify with
   a direct slice compare at the candidate position;
3. **verification/fallback for long literals** — candidates at or above
   :data:`LONG_LITERAL_LEN` are confirmed by the Aho-Corasick trie-NFA
   (:meth:`AhoCorasick.to_automaton
   <repro.baselines.aho_corasick.AhoCorasick.to_automaton>`) replayed
   with a :class:`~repro.sim.engine.BitsetEngine` over the merged
   candidate regions only — exhaustive within a region, and regions are
   rare exactly when the filter is earning its keep.

The scan's contract is **exhaustive**: ``scan(data).ends`` contains the
end position of *every* occurrence of *every* literal (verified, no
false positives).  The gate builds its replay windows from those ends,
so a missed occurrence would break bit-exactness; extra ends only cost
wasted cycles.
"""

import re

from ..baselines.aho_corasick import AhoCorasick
from ..errors import PrefilterError

#: Literals at or above this length are verified through the
#: Aho-Corasick trie-NFA instead of per-candidate slice compares.
LONG_LITERAL_LEN = 5


class ScanResult:
    """Outcome of one :meth:`DirectFilter.scan`.

    ``ends`` — sorted tuple of byte positions where a literal occurrence
    ends; ``candidates`` — positions the direct filter passed to
    verification; ``verified`` — verified literal occurrences (may
    exceed ``len(ends)`` when several literals end together).
    """

    __slots__ = ("ends", "candidates", "verified")

    def __init__(self, ends, candidates, verified):
        self.ends = tuple(sorted(ends))
        self.candidates = int(candidates)
        self.verified = int(verified)

    def __repr__(self):
        return ("ScanResult(ends=%d, candidates=%d, verified=%d)"
                % (len(self.ends), self.candidates, self.verified))


def _byte_class(values):
    """Character class matching exactly the given byte values."""
    return b"[" + b"".join(re.escape(bytes([v])) for v in sorted(values)) + b"]"


class DirectFilter:
    """Compiled two-stage scanner for one extracted literal set."""

    def __init__(self, literals):
        self.literals = tuple(sorted(set(bytes(lit) for lit in literals)))
        if any(not lit for lit in self.literals):
            raise PrefilterError("direct filter got an empty literal")
        #: 1-byte literals: any occurrence is already a verified end.
        self.singles = frozenset(lit[0] for lit in self.literals
                                 if len(lit) == 1)
        #: 2-byte window -> tuple of literals starting with it.
        self.buckets = {}
        for lit in self.literals:
            if len(lit) >= 2:
                self.buckets.setdefault(lit[:2], []).append(lit)
        self.buckets = {window: tuple(group)
                        for window, group in self.buckets.items()}
        #: The DFC bitmap: bit ``(b0 << 8) | b1`` set iff the window
        #: survives.  The compiled regex below is its executable form.
        self.bitmap = 0
        for window in self.buckets:
            self.bitmap |= 1 << ((window[0] << 8) | window[1])
        self._pattern = self._compile_pattern()
        long_literals = [lit for lit in self.literals
                         if len(lit) >= LONG_LITERAL_LEN]
        self._long_lengths = {
            window: max(len(lit) for lit in group
                        if len(lit) >= LONG_LITERAL_LEN)
            for window, group in self.buckets.items()
            if any(len(lit) >= LONG_LITERAL_LEN for lit in group)}
        if long_literals:
            self._verifier_automaton = AhoCorasick(
                long_literals).to_automaton(name="prefilter-verifier")
        else:
            self._verifier_automaton = None
        self._verifier_engine = None

    # ------------------------------------------------------------------
    def _compile_pattern(self):
        """One lookahead alternation enumerating every candidate start."""
        branches = []
        if self.singles:
            branches.append(_byte_class(self.singles))
        by_first = {}
        for window in self.buckets:
            by_first.setdefault(window[0], []).append(window[1])
        for first in sorted(by_first):
            branches.append(re.escape(bytes([first]))
                            + _byte_class(by_first[first]))
        if not branches:
            return None
        return re.compile(b"(?=(?:" + b"|".join(branches) + b"))", re.DOTALL)

    def window_survives(self, b0, b1):
        """Direct-filter membership of one 2-byte window (bitmap test)."""
        return bool((self.bitmap >> ((b0 << 8) | b1)) & 1)

    # ------------------------------------------------------------------
    def scan(self, data):
        """Exhaustive verified scan of ``data``; returns a ScanResult."""
        data = bytes(data)
        if self._pattern is None:
            return ScanResult((), 0, 0)
        singles = self.singles
        buckets = self.buckets
        long_lengths = self._long_lengths
        ends = set()
        candidates = 0
        verified = 0
        regions = []
        for match in self._pattern.finditer(data):
            position = match.start()
            candidates += 1
            if data[position] in singles:
                ends.add(position)
                verified += 1
            group = buckets.get(data[position:position + 2])
            if group is None:
                continue
            for lit in group:
                if (len(lit) < LONG_LITERAL_LEN
                        and data.startswith(lit, position)):
                    ends.add(position + len(lit) - 1)
                    verified += 1
            span = long_lengths.get(data[position:position + 2])
            if span is not None:
                regions.append((position, position + span))
        if regions:
            found = self._verify_regions(data, regions)
            verified += len(found)
            ends |= found
        return ScanResult(ends, candidates, verified)

    def _verify_regions(self, data, regions):
        """Long-literal ends inside the merged candidate regions.

        Every long-literal occurrence starts at some candidate position
        (its own 2-byte prefix survives the bitmap), and that
        candidate's region spans the occurrence in full, so replaying
        the trie-NFA from an empty mask per merged region is exhaustive.
        """
        from ..sim.engine import BitsetEngine
        if self._verifier_engine is None:
            self._verifier_engine = BitsetEngine(self._verifier_automaton)
        engine = self._verifier_engine
        merged = []
        for start, end in sorted(regions):
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        ends = set()
        for start, end in merged:
            recorder = engine.run(data[start:min(end, len(data))])
            for event in recorder.events:
                ends.add(start + event.position)
        return ends

    def __repr__(self):
        return ("DirectFilter(%d literals, %d windows, %d singles)"
                % (len(self.literals), len(self.buckets), len(self.singles)))
