"""Gated execution: wake the fast kernels only where the prefilter fires.

The tie between the two prefilter stages (:mod:`~repro.prefilter.
literals`, :mod:`~repro.prefilter.direct_filter`) and the execution
engines.  The contract chain:

1. extraction guarantees every possible report ends exactly at the last
   byte of some extracted literal occurrence (or marks the machine
   unfilterable);
2. the direct filter's ``scan`` finds every such occurrence end;
3. :func:`plan_windows` maps each end byte onto the target machine's
   cycles and prepends a warm-up prefix of ``depth_bound()`` cycles —
   the same replay-from-empty-mask argument
   :meth:`~repro.sim.engine.BitsetEngine.run_sharded` uses: a state at
   edge-distance ``d`` from a start remembers only ``d`` cycles of
   history, so by the first recorded cycle the replayed active mask is
   exact;
4. :meth:`BitsetEngine.run_windows <repro.sim.engine.BitsetEngine.
   run_windows>` / :meth:`SunderDevice.run_gated
   <repro.core.device.SunderDevice.run_gated>` execute only those
   windows, suppressing reports during warm-up.

Gated results are therefore bit-exact with the ungated run (pinned by
tests/test_prefilter.py) — on every path: unfilterable or cyclic
machines bypass the gate outright (soundness over coverage), and a scan
with no hits returns without ever *building* the engine, which is the
hot/cold fusion: with most states cold (see
:func:`record_hotcold_savings`), nothing is loaded until the prefilter
fires.

Prefilter builds are memoized in the content-addressed transform cache
(:class:`PrefilterCodec`), so a ruleset's literal set is extracted once
per corpus, not once per stream.
"""

import json
from time import perf_counter

from ..errors import ArtifactError, PrefilterError
from ..extensions.hotcold import split_hot_cold
from ..obs import OBS, trace_span
from ..runtime.store import ArtifactStore, Codec
from ..sim.engine import BitsetEngine
from ..sim.inputs import stream_for, stream_shape, stream_slice
from ..transform import cache as transform_cache
from .direct_filter import DirectFilter
from .literals import LiteralExtraction, extract_literals

#: Cache-key op and version salt for memoized prefilter builds; bump the
#: version whenever extraction or filter semantics change.
PREFILTER_OP = "prefilter"
PREFILTER_VERSION = 1

#: Input prefix profiled by :func:`record_hotcold_savings` — enough to
#: rank state activity without replaying the whole stream.
HOTCOLD_SAMPLE_BYTES = 4096


class Prefilter:
    """One ruleset's compiled prefilter: extraction verdict + scanner."""

    __slots__ = ("extraction", "filter")

    def __init__(self, extraction):
        if not isinstance(extraction, LiteralExtraction):
            raise PrefilterError("Prefilter wraps a LiteralExtraction, got %r"
                                 % type(extraction).__name__)
        self.extraction = extraction
        self.filter = (DirectFilter(extraction.literals)
                       if extraction.filterable else None)

    @property
    def filterable(self):
        return self.extraction.filterable

    @property
    def literals(self):
        return self.extraction.literals

    def scan(self, data):
        """Verified literal-occurrence scan (see DirectFilter.scan)."""
        if self.filter is None:
            raise PrefilterError(
                "cannot scan with an unfilterable prefilter (%s)"
                % (self.extraction.reason,))
        data = bytes(data)
        with trace_span("prefilter.scan", bytes=len(data),
                        literals=len(self.literals)) as span:
            start = perf_counter()
            result = self.filter.scan(data)
            elapsed = perf_counter() - start
            span.set_attr(candidates=result.candidates,
                          verified=result.verified, ends=len(result.ends))
        if OBS.active:
            instruments = OBS.instruments
            instruments.prefilter_scan_bytes.inc(len(data))
            instruments.prefilter_scan_seconds.observe(elapsed)
            instruments.prefilter_candidate_windows.inc(result.candidates)
            instruments.prefilter_verified_windows.inc(result.verified)
        return result

    # -- payload round-trip (for the content-addressed cache) ----------
    def to_payload(self):
        return {
            "format": "repro-prefilter",
            "version": PREFILTER_VERSION,
            "extraction": self.extraction.to_payload(),
        }

    @classmethod
    def from_payload(cls, payload):
        try:
            if payload.get("format") != "repro-prefilter":
                raise PrefilterError("unknown prefilter format %r"
                                     % (payload.get("format"),))
            if payload.get("version") != PREFILTER_VERSION:
                raise PrefilterError("unsupported prefilter version %r"
                                     % (payload.get("version"),))
            extraction = payload["extraction"]
        except (AttributeError, KeyError, TypeError) as error:
            raise PrefilterError("malformed prefilter payload: %s" % error)
        return cls(LiteralExtraction.from_payload(extraction))

    def dumps(self):
        return json.dumps(self.to_payload(), separators=(",", ":"))

    @classmethod
    def loads(cls, text):
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, TypeError) as error:
            raise PrefilterError("undecodable prefilter text: %s" % error)
        return cls.from_payload(payload)

    def __repr__(self):
        if not self.filterable:
            return "Prefilter(unfilterable: %s)" % (self.extraction.reason,)
        return "Prefilter(%d literals)" % len(self.literals)


class PrefilterCodec(Codec):
    """Artifact codec for memoized prefilter builds.

    ``copy`` serves the master object itself: a built prefilter is
    immutable apart from private scan-time caches, and cache sharing is
    the point of memoizing the build.
    """

    kind = "prefilter"

    def encode(self, prefilter):
        return prefilter.dumps()

    def decode(self, text):
        try:
            return Prefilter.loads(text)
        except PrefilterError as error:
            raise ArtifactError("undecodable prefilter artifact: %s" % error)

    def copy(self, prefilter):
        return prefilter


PREFILTER_CODEC = PrefilterCodec()


def build_prefilter(automaton):
    """Build (or fetch) the prefilter of one 8-bit source machine.

    Memoized in the process-wide transform cache under a
    content-addressed key (fingerprint + :data:`PREFILTER_VERSION`), so
    repeated stage runs and pool workers share one build.  The
    ``prefilter.build`` span and build instruments fire only on misses.
    """
    store = transform_cache.get_cache()
    key = store.key(PREFILTER_OP, automaton, version=PREFILTER_VERSION)
    # The transform cache narrows get/put to automata; go through the
    # generic ArtifactStore interface with the prefilter codec instead.
    cached = ArtifactStore.get(store, key, PREFILTER_CODEC,
                               context=PREFILTER_OP)
    if cached is not None:
        return cached
    with trace_span("prefilter.build", automaton=automaton.name) as span:
        start = perf_counter()
        prefilter = Prefilter(extract_literals(automaton))
        elapsed = perf_counter() - start
        span.set_attr(filterable=prefilter.filterable,
                      literals=len(prefilter.literals))
    if OBS.active:
        instruments = OBS.instruments
        instruments.prefilter_builds.labels(
            result="filterable" if prefilter.filterable
            else "unfilterable").inc()
        instruments.prefilter_build_seconds.observe(elapsed)
        if prefilter.filterable:
            instruments.prefilter_literals.observe(len(prefilter.literals))
    ArtifactStore.put(store, key, prefilter, PREFILTER_CODEC,
                      context=PREFILTER_OP)
    return prefilter


def _depth_bound(machine):
    """Memoized ``depth_bound()`` — an O(states) graph walk that would
    otherwise dominate gated runs on quiet streams.  Served from the
    exec layer's trait artifacts (weak in-process memo + the
    content-addressed transform cache), so gated callers, the planner,
    and pool workers all share one walk per machine fingerprint.
    """
    # Imported lazily: repro.exec imports this module for its prefilter
    # bindings, so a top-level import would cycle.
    from ..exec.traits import automaton_traits
    return automaton_traits(machine).depth_bound


def plan_windows(ends, machine, cycle_count, depth=None):
    """Map literal end *byte* positions onto ``machine`` replay windows.

    Returns merged, ascending ``(start, record_from, end)`` cycle
    triples — or None when the machine is cyclic (``depth_bound()`` is
    None) and must run ungated.  A byte position ``e`` covers the
    ``8 // bits`` sub-symbols of that byte; their cycles are recorded
    and a ``depth_bound()`` warm-up prefix is prepended.  Recording a
    few extra cycles inside a merged window is sound — by construction
    every recorded cycle is past its window's warm-up, so the engine
    state there is exact and only *true* reports can be emitted.
    """
    if depth is None:
        depth = _depth_bound(machine)
    if depth is None:
        return None
    per_byte = 8 // machine.bits
    arity = machine.arity
    raw = []
    for end_byte in ends:
        record_lo = (per_byte * end_byte) // arity
        if record_lo >= cycle_count:
            continue
        record_hi = (per_byte * end_byte + per_byte - 1) // arity
        raw.append((max(0, record_lo - depth), record_lo,
                    min(cycle_count, record_hi + 1)))
    raw.sort()
    merged = []
    for start, record_from, end in raw:
        if merged and start <= merged[-1][2]:
            previous = merged[-1]
            merged[-1] = (previous[0], min(previous[1], record_from),
                          max(previous[2], end))
        else:
            merged.append((start, record_from, end))
    return merged


def _count_bypass(reason):
    if OBS.active:
        OBS.instruments.prefilter_bypass.labels(reason=reason).inc()


def scan_windows(prefilter, data, machine, cycle_count):
    """Scan ``data`` and plan ``machine``'s replay windows.

    Returns the merged window list (possibly empty — the gate stays
    cold), or None when gating must be bypassed (unfilterable machine
    or unbounded depth); bypasses are counted per reason.
    """
    if not prefilter.filterable:
        _count_bypass("unfilterable")
        return None
    depth = _depth_bound(machine)
    if depth is None:
        _count_bypass("cyclic")
        return None
    result = prefilter.scan(data)
    windows = plan_windows(result.ends, machine, cycle_count, depth=depth)
    if OBS.active:
        executed = sum(end - start for start, _, end in windows)
        OBS.instruments.prefilter_gated_cycles.inc(executed)
        OBS.instruments.prefilter_skipped_cycles.inc(
            max(0, cycle_count - executed))
    return windows


def record_hotcold_savings(automaton, data, coverage):
    """Hot/cold split of the source machine; returns the split.

    Profiles a bounded sample prefix (:data:`HOTCOLD_SAMPLE_BYTES`) of
    the stream, records ``HotColdSplit.state_savings`` on the
    ``repro_hotcold_state_savings`` gauge, and reports the split on the
    ``prefilter.hotcold`` span.  Under gating the savings are realized
    literally: the full machine is only instantiated when a window
    passes the prefilter, so the cold fraction of states stays unloaded
    on quiet streams.
    """
    sample = bytes(data[:HOTCOLD_SAMPLE_BYTES])
    with trace_span("prefilter.hotcold", automaton=automaton.name,
                    coverage=float(coverage)) as span:
        split = split_hot_cold(automaton, sample,
                               activity_coverage=float(coverage))
        span.set_attr(state_savings=split.state_savings,
                      hot_states=len(split.hot_ids))
    if OBS.active:
        OBS.instruments.hotcold_state_savings.set(split.state_savings)
    return split


def _gate_stream(machine, data, source, prefilter, hotcold_coverage):
    """The shared gate skeleton both execution targets run.

    Builds (or takes) the prefilter, records the optional hot/cold
    split, sizes the stream without materializing it, and plans the
    replay windows.  Returns ``(cycle_count, position_limit, windows)``
    with ``windows`` as :func:`scan_windows` produced them (None =
    bypass, empty = gate stays cold).
    """
    source_machine = machine if source is None else source
    if prefilter is None:
        prefilter = build_prefilter(source_machine)
    if hotcold_coverage is not None:
        record_hotcold_savings(source_machine, data, hotcold_coverage)
    cycle_count, limit = stream_shape(machine, data)
    windows = scan_windows(prefilter, data, machine, cycle_count)
    return cycle_count, limit, windows


def _window_lanes(machine, data, windows):
    """Materialize only the windowed slices of ``data`` as lanes.

    A quiet stream never pays the per-byte vector build — lane work
    stays proportional to the windows, not the input length.  Returns
    ``(lanes, start_cycles, record_from)``.
    """
    lanes = [stream_slice(machine, data, start, end)
             for start, _, end in windows]
    starts = [start for start, _, _ in windows]
    record_from = [record for _, record, _ in windows]
    return lanes, starts, record_from


def gated_simulation(machine, data, recorder, *, source=None,
                     prefilter=None, hotcold_coverage=None, engine=None):
    """Prefilter-gated engine run of ``machine`` over byte stream ``data``.

    ``machine`` may be the 8-bit source itself or any rate-transformed
    derivative of ``source`` (literals are extracted from the byte
    machine; windows are mapped onto the target's cycles).  Events land
    in the caller's ``recorder`` bit-exact with an ungated
    ``BitsetEngine(machine).run`` over the same stream.  A caller
    running many streams passes its own ``engine`` (compiled for
    ``machine``) so window replays share one step cache across calls.

    Returns ``(engine, gated)``: ``gated`` is False when the gate was
    bypassed (unfilterable/cyclic); ``engine`` is None when the gate
    stayed cold and no engine was passed or built (the hot/cold
    payoff).
    """
    data = bytes(data)
    cycle_count, _, windows = _gate_stream(machine, data, source, prefilter,
                                           hotcold_coverage)
    if windows is None:
        if engine is None:
            engine = BitsetEngine(machine)
        vectors, _ = stream_for(machine, data)
        engine.run(vectors, recorder)
        return engine, False
    if not windows:
        return engine, True
    lanes, starts, record_from = _window_lanes(machine, data, windows)
    if engine is None:
        engine = BitsetEngine(machine)
    engine.run_window_lanes(lanes, starts, record_from, recorder,
                            total_cycles=cycle_count)
    return engine, True


def gated_device_run(device, machine, data, *, source=None, prefilter=None,
                     hotcold_coverage=None, position_limit=None):
    """Prefilter-gated :class:`~repro.core.device.SunderDevice` run.

    ``device`` must already be configured with ``machine`` (a 4-bit
    rate machine); ``source`` is the 8-bit machine the rate transform
    started from.  Returns a :class:`~repro.sim.reports.ReportRecorder`
    with the same direct-decode report semantics as ``run_batch`` —
    bit-exact with the ungated device run's reports.
    """
    data = bytes(data)
    cycle_count, limit, windows = _gate_stream(machine, data, source,
                                               prefilter, hotcold_coverage)
    if position_limit is None:
        position_limit = limit
    if windows is None:
        vectors, _ = stream_for(machine, data)
        return device.run_gated(vectors, None, position_limit=position_limit)
    lanes, starts, record_from = _window_lanes(machine, data, windows)
    return device.run_gated_lanes(lanes, starts, record_from,
                                  position_limit=position_limit,
                                  total_cycles=cycle_count)
