"""Required-literal extraction from homogeneous NFA graphs.

The two-stage prefilter (docs/performance.md, "Two-stage prefiltering")
only works if every report the full machine could emit is announced by a
cheap literal scan first.  This module derives that guarantee from the
automaton graph itself: for every report state it walks the predecessor
graph *backwards*, expanding symbol sets into concrete bytes, until each
path reaches a start state or the length cap.  The strings collected
this way are **required substrings**:

    any chain of activations ending in a report at byte position ``t``
    must have matched, byte for byte, one extracted literal whose last
    byte lies exactly at ``t``.

The argument is the same bounded-memory one :meth:`BitsetEngine.
run_sharded <repro.sim.engine.BitsetEngine.run_sharded>` uses for shard
replays: walking backwards from a report state, each step's symbol set
constrains the input byte at that relative offset *regardless of how the
earliest state in the window was enabled* — a longer history only
prepends bytes, so the extracted string is a suffix of every possible
history and stopping early (at a start state or at ``max_len``) is
sound.  Over-approximation is free (extra literals only cost filter
selectivity); missing one would break bit-exactness, so any state whose
backward walk cannot be enumerated within budget (wide symbol sets like
``.`` or large counted ranges, or simply too many expansions) marks the
whole machine **unfilterable** and the gate bypasses it.  Soundness over
coverage.
"""

from ..errors import PrefilterError

#: Longest literal kept per backward path; longer required strings are
#: truncated to their last ``MAX_LITERAL_LEN`` bytes (still sound — a
#: suffix of a required string is required).
MAX_LITERAL_LEN = 8
#: Widest symbol set expanded into concrete bytes.  Anything wider
#: (e.g. ``.``, ``[^\\n]``, large ranges) makes the machine unfilterable
#: rather than exploding the literal set.
MAX_SYMBOL_CHOICES = 16
#: Upper bound on distinct literals emitted per report state.
MAX_STATE_LITERALS = 64
#: Upper bound on backward-walk steps per report state (guards
#: combinatorial blowup before the literal caps trigger).
MAX_STATE_WORK = 4096
#: Upper bound on the machine-wide literal set.
MAX_TOTAL_LITERALS = 4096


class LiteralExtraction:
    """Result of one extraction: the literal set or the bypass verdict.

    ``filterable`` is the load-bearing bit: when False the gate must run
    the machine ungated (``reason`` says why, for spans and debugging).
    ``literals`` is a sorted tuple of ``bytes``; every possible report
    of the source machine ends exactly at the last byte of an occurrence
    of one of them.
    """

    __slots__ = ("literals", "filterable", "reason")

    def __init__(self, literals=(), filterable=True, reason=None):
        self.literals = tuple(sorted(set(bytes(lit) for lit in literals)))
        self.filterable = bool(filterable)
        self.reason = reason
        if self.filterable and any(not lit for lit in self.literals):
            raise PrefilterError("extracted an empty literal")

    def to_payload(self):
        return {
            "format": "repro-literal-extraction",
            "version": 1,
            "filterable": self.filterable,
            "reason": self.reason,
            "literals": [lit.hex() for lit in self.literals],
        }

    @classmethod
    def from_payload(cls, payload):
        try:
            if payload.get("format") != "repro-literal-extraction":
                raise PrefilterError("unknown literal-extraction format %r"
                                     % (payload.get("format"),))
            if payload.get("version") != 1:
                raise PrefilterError(
                    "unsupported literal-extraction version %r"
                    % (payload.get("version"),))
            return cls(
                literals=[bytes.fromhex(text) for text in payload["literals"]],
                filterable=payload["filterable"],
                reason=payload.get("reason"),
            )
        except (AttributeError, KeyError, TypeError, ValueError) as error:
            raise PrefilterError(
                "malformed literal-extraction payload: %s" % error)

    def __repr__(self):
        if not self.filterable:
            return "LiteralExtraction(unfilterable: %s)" % (self.reason,)
        return "LiteralExtraction(%d literals)" % len(self.literals)


def _unfilterable(reason):
    return LiteralExtraction(filterable=False, reason=reason)


def _expand(symbol_set, limit=MAX_SYMBOL_CHOICES):
    """Concrete byte values of one symbol set, or None when too wide."""
    if len(symbol_set) > limit:
        return None
    return tuple(symbol_set)


def extract_literals(automaton, max_len=MAX_LITERAL_LEN,
                     max_symbol_choices=MAX_SYMBOL_CHOICES,
                     max_state_literals=MAX_STATE_LITERALS,
                     max_total_literals=MAX_TOTAL_LITERALS):
    """Required literals of an 8-bit byte machine (or the bypass verdict).

    Returns a :class:`LiteralExtraction`.  Only plain byte machines
    (``bits == 8``, ``arity == 1``) are analyzable — nibble and strided
    machines are derived *from* one by rate transforms, so callers build
    the prefilter from the source machine and map byte hits onto the
    target machine's cycles (:func:`repro.prefilter.gate.plan_windows`).
    """
    if automaton.bits != 8 or automaton.arity != 1:
        return _unfilterable(
            "literal extraction analyzes 8-bit arity-1 machines "
            "(got %d-bit arity %d)" % (automaton.bits, automaton.arity))
    literals = set()
    for state in automaton.report_states():
        emitted = _state_literals(automaton, state, max_len,
                                  max_symbol_choices, max_state_literals)
        if emitted is None:
            return _unfilterable(
                "report state %r has no enumerable required literal"
                % (state.id,))
        literals |= emitted
        if len(literals) > max_total_literals:
            return _unfilterable(
                "literal set exceeds %d entries" % max_total_literals)
    return LiteralExtraction(literals=literals, filterable=True)


def _state_literals(automaton, state, max_len, max_symbol_choices,
                    max_state_literals):
    """Backward walk from one report state; set of literals or None.

    Each frontier item is ``(state, suffix)``: ``suffix`` are the input
    bytes required at the last ``len(suffix)`` positions of any chain
    currently sitting at ``state``'s position.  A path terminates (and
    emits) at a start state — earlier history does not exist for chains
    born there, and for chains that instead entered it from a
    predecessor the emitted string is still a required suffix — or at
    ``max_len``.
    """
    first = _expand(state.symbols[0], max_symbol_choices)
    if first is None:
        return None
    frontier = [(state, bytes([value])) for value in first]
    emitted = set()
    work = 0
    while frontier:
        work += 1
        if work > MAX_STATE_WORK:
            return None
        current, suffix = frontier.pop()
        if current.is_start or len(suffix) >= max_len:
            emitted.add(suffix)
            if len(emitted) > max_state_literals:
                return None
            continue
        predecessors = automaton.predecessors(current.id)
        if not predecessors:
            # A non-start state with no predecessors can never activate;
            # validate() rules these out, but losing a path would be a
            # soundness bug, so refuse to filter rather than guess.
            return None
        for pred_id in sorted(predecessors):
            pred = automaton.state(pred_id)
            values = _expand(pred.symbols[0], max_symbol_choices)
            if values is None:
                return None
            for value in values:
                frontier.append((pred, bytes([value]) + suffix))
    return emitted
