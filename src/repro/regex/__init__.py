"""Regex front-end: parse patterns and compile them to homogeneous NFAs."""

from .compiler import compile_pattern, compile_ruleset
from .parser import parse


def find_match_ends(pattern, data, ignore_case=False):
    """Positions in ``data`` (byte stream) where ``pattern`` matches end.

    Convenience wrapper used heavily in tests: compiles the pattern, runs
    the bitset engine over the bytes, and returns the sorted set of 0-based
    indices of the *last* byte of each match.
    """
    from ..sim.engine import BitsetEngine

    automaton = compile_pattern(pattern, ignore_case=ignore_case)
    recorder = BitsetEngine(automaton).run(list(data))
    return sorted({event.position for event in recorder.events})


__all__ = ["compile_pattern", "compile_ruleset", "find_match_ends", "parse"]
