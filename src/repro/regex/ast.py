"""Regex abstract syntax tree and Glushkov position functions.

The compiler uses the Glushkov construction, which produces a homogeneous
NFA directly: every *position* (leaf occurrence of a symbol set) becomes
one STE, start states are ``first(R)``, reporting states are ``last(R)``,
and edges follow ``follow(R)``.  No epsilon transitions ever exist, which
is exactly the property the in-memory architectures need.
"""

from ..errors import RegexError


class Node:
    """Base class for AST nodes."""

    def positions(self):
        """Yield the :class:`Leaf` nodes in left-to-right order."""
        raise NotImplementedError

    def nullable(self):
        """True when the node can match the empty string."""
        raise NotImplementedError

    def first(self):
        """Set of leaves that can start a match."""
        raise NotImplementedError

    def last(self):
        """Set of leaves that can end a match."""
        raise NotImplementedError

    def follow(self, table):
        """Populate ``table[leaf] -> set(leaf)`` with follow relations."""
        raise NotImplementedError


class Leaf(Node):
    """A single symbol-set occurrence (one Glushkov position)."""

    __slots__ = ("symbol_set",)

    def __init__(self, symbol_set):
        if symbol_set.is_empty():
            raise RegexError("a character class matched no symbols")
        self.symbol_set = symbol_set

    def positions(self):
        yield self

    def nullable(self):
        return False

    def first(self):
        return {self}

    def last(self):
        return {self}

    def follow(self, table):
        table.setdefault(self, set())

    def __repr__(self):
        return "Leaf(%s)" % self.symbol_set.to_charclass()


class Concat(Node):
    """Sequence of sub-expressions."""

    __slots__ = ("parts",)

    def __init__(self, parts):
        self.parts = list(parts)

    def positions(self):
        for part in self.parts:
            yield from part.positions()

    def nullable(self):
        return all(part.nullable() for part in self.parts)

    def first(self):
        result = set()
        for part in self.parts:
            result |= part.first()
            if not part.nullable():
                break
        return result

    def last(self):
        result = set()
        for part in reversed(self.parts):
            result |= part.last()
            if not part.nullable():
                break
        return result

    def follow(self, table):
        for part in self.parts:
            part.follow(table)
        for index in range(len(self.parts) - 1):
            # last(parts[index]) is followed by first of the next non-empty
            # run of parts (crossing nullable parts).
            suffix_first = set()
            for later in self.parts[index + 1:]:
                suffix_first |= later.first()
                if not later.nullable():
                    break
            for leaf in self.parts[index].last():
                table.setdefault(leaf, set()).update(suffix_first)


class Alternation(Node):
    """Union of sub-expressions (``a|b``)."""

    __slots__ = ("options",)

    def __init__(self, options):
        if not options:
            raise RegexError("empty alternation")
        self.options = list(options)

    def positions(self):
        for option in self.options:
            yield from option.positions()

    def nullable(self):
        return any(option.nullable() for option in self.options)

    def first(self):
        result = set()
        for option in self.options:
            result |= option.first()
        return result

    def last(self):
        result = set()
        for option in self.options:
            result |= option.last()
        return result

    def follow(self, table):
        for option in self.options:
            option.follow(table)


class Star(Node):
    """Kleene closure (``a*``)."""

    __slots__ = ("inner",)

    def __init__(self, inner):
        self.inner = inner

    def positions(self):
        yield from self.inner.positions()

    def nullable(self):
        return True

    def first(self):
        return self.inner.first()

    def last(self):
        return self.inner.last()

    def follow(self, table):
        self.inner.follow(table)
        firsts = self.inner.first()
        for leaf in self.inner.last():
            table.setdefault(leaf, set()).update(firsts)


class Empty(Node):
    """Matches the empty string (used for ``a?`` expansion)."""

    def positions(self):
        return iter(())

    def nullable(self):
        return True

    def first(self):
        return set()

    def last(self):
        return set()

    def follow(self, table):
        pass


def optional(node):
    """``node?`` as an alternation with :class:`Empty`."""
    return Alternation([node, Empty()])


def plus(node):
    """``node+`` as ``node node*``.

    The duplication doubles positions for the repeated sub-expression; the
    post-construction minimizer collapses most of it back.
    """
    return Concat([node, Star(_clone(node))])


def repeat(node, minimum, maximum):
    """Bounded repetition ``node{m,n}`` (``n is None`` means unbounded)."""
    if minimum < 0:
        raise RegexError("negative repetition bound")
    if maximum is not None and maximum < minimum:
        raise RegexError("repetition bounds out of order: {%d,%d}" % (minimum, maximum))
    if maximum is not None and maximum == 0:
        return Empty()
    parts = [_clone(node) for _ in range(minimum)]
    if maximum is None:
        if minimum == 0:
            return Star(node)
        parts[-1] = plus(parts[-1])
    else:
        parts.extend(optional(_clone(node)) for _ in range(maximum - minimum))
    if not parts:
        return Empty()
    return Concat(parts)


def _clone(node):
    """Deep-copy a node so each repetition gets distinct positions."""
    if isinstance(node, Leaf):
        return Leaf(node.symbol_set)
    if isinstance(node, Concat):
        return Concat([_clone(part) for part in node.parts])
    if isinstance(node, Alternation):
        return Alternation([_clone(option) for option in node.options])
    if isinstance(node, Star):
        return Star(_clone(node.inner))
    if isinstance(node, Empty):
        return Empty()
    raise RegexError("unknown AST node %r" % (node,))
