"""Glushkov compilation of parsed regexes into homogeneous NFAs."""

from ..automata.automaton import Automaton
from ..automata.ops import minimize
from ..automata.ste import StartKind
from ..errors import RegexError
from .parser import parse


def compile_pattern(
    pattern,
    name=None,
    report_code=None,
    ignore_case=False,
    minimized=True,
):
    """Compile one regex into a homogeneous NFA.

    Unanchored patterns get ``ALL_INPUT`` start states so matches are found
    at every offset (streaming semantics); a leading ``^`` produces
    ``START_OF_DATA`` starts.  The end of each match is a reporting state
    carrying ``report_code`` (default: the pattern text).

    Raises :class:`RegexError` if the pattern accepts the empty string — an
    empty match would report on every cycle and is meaningless for pattern
    matching hardware.
    """
    root, anchored = parse(pattern, ignore_case=ignore_case)
    if root.nullable():
        raise RegexError("pattern accepts the empty string", pattern=pattern)
    if report_code is None:
        report_code = pattern
    automaton = Automaton(name=name if name is not None else pattern, bits=8)

    leaves = list(root.positions())
    if not leaves:
        raise RegexError("pattern has no symbols", pattern=pattern)
    ids = {leaf: "p%d" % index for index, leaf in enumerate(leaves)}
    firsts = root.first()
    lasts = root.last()
    start_kind = StartKind.START_OF_DATA if anchored else StartKind.ALL_INPUT

    for leaf in leaves:
        automaton.new_state(
            ids[leaf],
            leaf.symbol_set,
            start=start_kind if leaf in firsts else StartKind.NONE,
            report=leaf in lasts,
            report_code=report_code if leaf in lasts else None,
        )
    follow = {}
    root.follow(follow)
    for leaf, followers in follow.items():
        for follower in followers:
            automaton.add_transition(ids[leaf], ids[follower])

    automaton.prune_unreachable()
    if minimized:
        minimize(automaton)
    return automaton.validate()


def compile_ruleset(
    patterns,
    name="ruleset",
    ignore_case=False,
    minimized=True,
):
    """Compile many patterns into one machine (disjoint union).

    ``patterns`` is an iterable of regex strings or ``(regex, report_code)``
    pairs.  Each pattern keeps its own reporting states; report codes
    default to the pattern's index, which is how rulesets such as Snort
    identify the matched rule.
    """
    combined = Automaton(name=name, bits=8)
    count = 0
    for index, entry in enumerate(patterns):
        if isinstance(entry, tuple):
            pattern, report_code = entry
        else:
            pattern, report_code = entry, index
        rule = compile_pattern(
            pattern,
            name="%s_r%d" % (name, index),
            report_code=report_code,
            ignore_case=ignore_case,
            minimized=minimized,
        )
        combined.merge_in(rule, "r%d_" % index)
        count += 1
    if count == 0:
        raise RegexError("ruleset is empty")
    return combined.validate()
