"""Recursive-descent parser for the regex subset the benchmarks need.

Supported syntax (byte alphabet, PCRE-flavoured):

- literals, ``.`` (any byte), escapes ``\\xHH \\n \\r \\t \\0 \\d \\D \\w
  \\W \\s \\S`` and backslashed metacharacters
- character classes ``[...]`` with ranges and negation
- grouping ``(...)`` (non-capturing; capture semantics are irrelevant for
  acceptance), alternation ``|``
- quantifiers ``* + ? {m} {m,} {m,n}``
- a leading ``^`` anchors the pattern to the start of input; otherwise the
  pattern is compiled *unanchored* (matched at every input offset), which
  is how ANMLZoo's regex rulesets behave

Unsupported (rejected with :class:`RegexError`): backreferences,
lookaround, ``$`` anchors, and lazy quantifiers.
"""

from ..automata.symbolset import SymbolSet
from ..errors import RegexError
from . import ast

_CLASS_ESCAPES = {
    "d": SymbolSet.from_ranges(8, [(ord("0"), ord("9"))]),
    "w": SymbolSet.from_ranges(
        8,
        [(ord("a"), ord("z")), (ord("A"), ord("Z")), (ord("0"), ord("9"))],
    ) | SymbolSet.single(8, ord("_")),
    "s": SymbolSet.of(8, [ord(" "), ord("\t"), ord("\n"), ord("\r"), 0x0B, 0x0C]),
}
_SIMPLE_ESCAPES = {
    "n": ord("\n"),
    "r": ord("\r"),
    "t": ord("\t"),
    "0": 0,
    "a": 0x07,
    "f": 0x0C,
    "v": 0x0B,
}
_METACHARACTERS = set("\\^$.|?*+()[]{}-/")


class _Parser:
    def __init__(self, pattern, ignore_case=False):
        self.pattern = pattern
        self.index = 0
        self.ignore_case = ignore_case
        self.anchored = False

    # -- plumbing -------------------------------------------------------
    def error(self, message):
        raise RegexError(message, pattern=self.pattern, position=self.index)

    def peek(self):
        if self.index < len(self.pattern):
            return self.pattern[self.index]
        return None

    def take(self):
        char = self.peek()
        if char is None:
            self.error("unexpected end of pattern")
        self.index += 1
        return char

    def expect(self, char):
        if self.peek() != char:
            self.error("expected %r" % char)
        self.index += 1

    # -- grammar --------------------------------------------------------
    def parse(self):
        if self.peek() == "^":
            self.anchored = True
            self.index += 1
        node = self.alternation()
        if self.index != len(self.pattern):
            self.error("unexpected %r" % self.peek())
        return node

    def alternation(self):
        options = [self.concatenation()]
        while self.peek() == "|":
            self.index += 1
            options.append(self.concatenation())
        if len(options) == 1:
            return options[0]
        return ast.Alternation(options)

    def concatenation(self):
        parts = []
        while self.peek() not in (None, "|", ")"):
            parts.append(self.quantified())
        if not parts:
            return ast.Empty()
        if len(parts) == 1:
            return parts[0]
        return ast.Concat(parts)

    def quantified(self):
        atom = self.atom()
        while True:
            char = self.peek()
            if char == "*":
                self.index += 1
                atom = ast.Star(atom)
            elif char == "+":
                self.index += 1
                atom = ast.plus(atom)
            elif char == "?":
                self.index += 1
                atom = ast.optional(atom)
            elif char == "{":
                atom = self.bounded(atom)
            else:
                return atom
            if self.peek() == "?":
                self.error("lazy quantifiers are not supported")

    def bounded(self, atom):
        self.expect("{")
        minimum = self.integer()
        maximum = minimum
        if self.peek() == ",":
            self.index += 1
            if self.peek() == "}":
                maximum = None
            else:
                maximum = self.integer()
        self.expect("}")
        return ast.repeat(atom, minimum, maximum)

    def integer(self):
        digits = ""
        while self.peek() is not None and self.peek().isdigit():
            digits += self.take()
        if not digits:
            self.error("expected a number")
        return int(digits)

    def atom(self):
        char = self.peek()
        if char == "(":
            self.index += 1
            if self.pattern[self.index:self.index + 2] == "?:":
                self.index += 2
            elif self.peek() == "?":
                self.error("only (?: ...) groups are supported")
            inner = self.alternation()
            self.expect(")")
            return inner
        if char == "[":
            return ast.Leaf(self.char_class())
        if char == ".":
            self.index += 1
            return ast.Leaf(SymbolSet.full(8))
        if char == "\\":
            return ast.Leaf(self.escape())
        if char == "$":
            self.error("$ anchors are not supported")
        if char in ")|*+?{":
            self.error("unexpected %r" % char)
        self.index += 1
        return ast.Leaf(self.literal_set(ord(char)))

    def literal_set(self, value):
        sset = SymbolSet.single(8, value)
        if self.ignore_case:
            if ord("a") <= value <= ord("z"):
                sset = sset | SymbolSet.single(8, value - 32)
            elif ord("A") <= value <= ord("Z"):
                sset = sset | SymbolSet.single(8, value + 32)
        return sset

    def escape(self):
        self.expect("\\")
        char = self.take()
        if char == "x":
            hex_digits = self.pattern[self.index:self.index + 2]
            if len(hex_digits) != 2:
                self.error("bad \\x escape")
            try:
                value = int(hex_digits, 16)
            except ValueError:
                self.error("bad \\x escape")
            self.index += 2
            return self.literal_set(value)
        lowered = char.lower()
        if lowered in _CLASS_ESCAPES:
            sset = _CLASS_ESCAPES[lowered]
            if char.isupper():
                sset = ~sset
            return sset
        if char in _SIMPLE_ESCAPES:
            return SymbolSet.single(8, _SIMPLE_ESCAPES[char])
        if char in _METACHARACTERS:
            return SymbolSet.single(8, ord(char))
        if char.isdigit():
            self.error("backreferences are not supported")
        self.error("unknown escape \\%s" % char)

    def char_class(self):
        self.expect("[")
        negate = False
        if self.peek() == "^":
            negate = True
            self.index += 1
        members = SymbolSet.empty(8)
        first = True
        while True:
            char = self.peek()
            if char is None:
                self.error("unterminated character class")
            if char == "]" and not first:
                self.index += 1
                break
            low = self.class_symbol()
            if isinstance(low, SymbolSet):
                members = members | low
            elif (
                self.peek() == "-"
                and self.index + 1 < len(self.pattern)
                and self.pattern[self.index + 1] != "]"
            ):
                self.index += 1
                high = self.class_symbol()
                if isinstance(high, SymbolSet):
                    self.error("a class escape cannot end a range")
                if low > high:
                    self.error("character range out of order")
                members = members | SymbolSet.from_ranges(8, [(low, high)])
                if self.ignore_case:
                    members = members | _case_fold_range(low, high)
            else:
                members = members | self.literal_set(low)
            first = False
        if negate:
            members = ~members
        if members.is_empty():
            self.error("character class matches nothing")
        return members

    def class_symbol(self):
        """One symbol inside a class: an int, or a SymbolSet for \\d etc."""
        char = self.take()
        if char != "\\":
            return ord(char)
        escape = self.take()
        if escape == "x":
            hex_digits = self.pattern[self.index:self.index + 2]
            if len(hex_digits) != 2:
                self.error("bad \\x escape")
            try:
                value = int(hex_digits, 16)
            except ValueError:
                self.error("bad \\x escape")
            self.index += 2
            return value
        lowered = escape.lower()
        if lowered in _CLASS_ESCAPES:
            sset = _CLASS_ESCAPES[lowered]
            if escape.isupper():
                sset = ~sset
            return sset
        if escape in _SIMPLE_ESCAPES:
            return _SIMPLE_ESCAPES[escape]
        if escape in _METACHARACTERS or escape == "b":
            return ord(escape) if escape != "b" else 0x08
        self.error("unknown escape \\%s in class" % escape)


def _case_fold_range(low, high):
    """Case-folded companions for the byte range [low, high]."""
    extra = SymbolSet.empty(8)
    for value in range(low, high + 1):
        if ord("a") <= value <= ord("z"):
            extra = extra | SymbolSet.single(8, value - 32)
        elif ord("A") <= value <= ord("Z"):
            extra = extra | SymbolSet.single(8, value + 32)
    return extra


def parse(pattern, ignore_case=False):
    """Parse ``pattern``; returns ``(ast_root, anchored)``."""
    parser = _Parser(pattern, ignore_case=ignore_case)
    root = parser.parse()
    return root, parser.anchored
