"""Stage-graph runtime: content-addressed, deduplicated experiment stages.

Public surface:

- :mod:`repro.runtime.store` — the shared two-tier
  :class:`~repro.runtime.store.ArtifactStore` (generalized from the
  transform cache) plus the process-wide instance
  (:func:`~repro.runtime.store.get_store` /
  :func:`~repro.runtime.store.configure`);
- :mod:`repro.runtime.artifacts` — codecs for workload instances,
  simulation runs, automata, and JSON rows;
- :mod:`repro.runtime.stages` — the registered stage taxonomy;
- :mod:`repro.runtime.graph` — :class:`~repro.runtime.graph.StageGraph`
  construction and the :class:`~repro.runtime.graph.Runtime` scheduler.

Only the store is imported eagerly: :mod:`repro.transform.cache`
subclasses :class:`~repro.runtime.store.ArtifactStore`, and the
artifact/stage modules import the transform pipeline back, so the
higher layers resolve lazily (PEP 562) to keep that cycle open.
"""

from importlib import import_module

from .store import (ENV_VAR, ArtifactStore, Codec, JsonCodec,  # noqa: F401
                    artifact_key, configure, get_store)

#: Lazily exported names -> the submodule that defines them.
_LAZY = {
    "AUTOMATON_CODEC": "artifacts",
    "INSTANCE_CODEC": "artifacts",
    "JSON_CODEC": "artifacts",
    "SIMRUN_CODEC": "artifacts",
    "SimRun": "artifacts",
    "REGISTRY": "stages",
    "Stage": "stages",
    "canonical": "stages",
    "get_stage": "stages",
    "stage": "stages",
    "Runtime": "graph",
    "StageGraph": "graph",
    "Task": "graph",
}


def __getattr__(name):
    submodule = _LAZY.get(name)
    if submodule is None:
        raise AttributeError("module %r has no attribute %r"
                             % (__name__, name))
    value = getattr(import_module("." + submodule, __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
