"""Artifact kinds cached by the stage-graph runtime.

Each kind pairs a value type with a :class:`~repro.runtime.store.Codec`
so the shared :class:`~repro.runtime.store.ArtifactStore` can persist it
with a versioned serialization and serve defensive copies:

- **workload instances** (:class:`~repro.workloads.base.WorkloadInstance`)
  — the ``generate`` stage's output: automaton + planted input stream +
  provenance;
- **simulation runs** (:class:`SimRun`) — one functional-simulator pass:
  the full :class:`~repro.sim.reports.ReportRecorder` stream plus the
  cycle count and active-state statistics the Table 1 columns need;
- **automata** — reuses the transform cache's
  :class:`~repro.transform.cache.AutomatonCodec`;
- **plain JSON values** — result rows and summaries.
"""

import base64
import json

from ..automata.automaton import Automaton
from ..errors import ArtifactError
from ..sim.reports import ReportRecorder
from ..transform.cache import AUTOMATON_CODEC
from ..workloads.base import WorkloadInstance
from .store import Codec, JsonCodec

#: Versioned serialization identifiers.
INSTANCE_FORMAT = "repro-instance"
INSTANCE_VERSION = 1
SIMRUN_FORMAT = "repro-simrun"
SIMRUN_VERSION = 1


class SimRun:
    """One functional-simulator pass, ready for replay.

    ``recorder`` is the full report stream; ``cycles`` the stream length
    in vector cycles (bytes for an 8-bit machine, vectors for a strided
    one); the active-state statistics feed Table 1's dynamic columns.
    """

    __slots__ = ("recorder", "cycles", "max_active_states",
                 "avg_active_states")

    def __init__(self, recorder, cycles, max_active_states=0,
                 avg_active_states=0.0):
        self.recorder = recorder
        self.cycles = cycles
        self.max_active_states = max_active_states
        self.avg_active_states = avg_active_states

    @classmethod
    def from_engine(cls, engine, recorder, cycles):
        """Build a run from a just-executed engine's active-count history.

        Works for plain, sharded, and batched-lane executions alike:
        every engine path leaves ``active_count_history`` holding the
        serial-equivalent per-cycle counts, so the Table 1 dynamic
        statistics come out identical regardless of execution strategy.
        """
        history = engine.active_count_history
        return cls(
            recorder, cycles,
            max_active_states=max(history) if history else 0,
            avg_active_states=sum(history) / cycles if cycles else 0.0,
        )

    def summary(self):
        """The recorder's Table 1 dynamic columns plus run statistics."""
        row = self.recorder.summary(self.cycles)
        row["cycles"] = self.cycles
        row["max_active_states"] = self.max_active_states
        row["avg_active_states"] = self.avg_active_states
        return row

    def __repr__(self):
        return "SimRun(cycles=%d, reports=%d)" % (
            self.cycles, self.recorder.total_reports)


class SimRunCodec(Codec):
    """Codec for :class:`SimRun` artifacts."""

    kind = "simrun"

    def encode(self, obj):
        return json.dumps({
            "format": SIMRUN_FORMAT,
            "version": SIMRUN_VERSION,
            "cycles": obj.cycles,
            "max_active_states": obj.max_active_states,
            "avg_active_states": obj.avg_active_states,
            "recorder": obj.recorder.to_payload(),
        }, separators=(",", ":"))

    def decode(self, text):
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, TypeError) as error:
            raise ArtifactError("undecodable simrun artifact: %s" % error)
        try:
            if payload.get("format") != SIMRUN_FORMAT:
                raise ArtifactError(
                    "unknown simrun format %r" % (payload.get("format"),))
            if payload.get("version") != SIMRUN_VERSION:
                raise ArtifactError(
                    "unsupported simrun version %r"
                    % (payload.get("version"),))
            return SimRun(
                recorder=ReportRecorder.from_payload(payload["recorder"]),
                cycles=int(payload["cycles"]),
                max_active_states=payload["max_active_states"],
                avg_active_states=payload["avg_active_states"],
            )
        except ArtifactError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise ArtifactError("malformed simrun payload: %s" % error)

    def copy(self, obj):
        # Events are treated as immutable by every consumer; copying the
        # containers (not the events) keeps hits cheap but independent.
        recorder = ReportRecorder(keep_events=obj.recorder.keep_events,
                                  position_limit=obj.recorder.position_limit)
        recorder.total_reports = obj.recorder.total_reports
        recorder.reports_per_cycle = obj.recorder.reports_per_cycle.copy()
        recorder.events = list(obj.recorder.events)
        return SimRun(recorder, obj.cycles, obj.max_active_states,
                      obj.avg_active_states)


class InstanceCodec(Codec):
    """Codec for :class:`~repro.workloads.base.WorkloadInstance` artifacts."""

    kind = "instance"

    def encode(self, obj):
        return json.dumps({
            "format": INSTANCE_FORMAT,
            "version": INSTANCE_VERSION,
            "name": obj.name,
            "family": obj.family,
            "paper_row": obj.paper_row,
            "input_b64": base64.b64encode(obj.input_bytes).decode("ascii"),
            "automaton": obj.automaton.to_payload(),
        }, separators=(",", ":"))

    def decode(self, text):
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, TypeError) as error:
            raise ArtifactError("undecodable instance artifact: %s" % error)
        try:
            if payload.get("format") != INSTANCE_FORMAT:
                raise ArtifactError(
                    "unknown instance format %r" % (payload.get("format"),))
            if payload.get("version") != INSTANCE_VERSION:
                raise ArtifactError(
                    "unsupported instance version %r"
                    % (payload.get("version"),))
            return WorkloadInstance(
                name=payload["name"],
                family=payload["family"],
                automaton=Automaton.from_payload(payload["automaton"]),
                input_bytes=base64.b64decode(payload["input_b64"]),
                paper_row=payload["paper_row"],
            )
        except ArtifactError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise ArtifactError("malformed instance payload: %s" % error)

    def copy(self, obj):
        return WorkloadInstance(
            name=obj.name,
            family=obj.family,
            automaton=obj.automaton.copy(),
            input_bytes=obj.input_bytes,
            paper_row=dict(obj.paper_row),
        )


#: Shared codec instances (all stateless).
SIMRUN_CODEC = SimRunCodec()
INSTANCE_CODEC = InstanceCodec()
JSON_CODEC = JsonCodec()

#: Codec registry by kind slug (used for key prefixes and diagnostics).
CODECS = {
    codec.kind: codec
    for codec in (AUTOMATON_CODEC, SIMRUN_CODEC, INSTANCE_CODEC, JSON_CODEC)
}
