"""Stage-graph construction and execution.

Experiments declare their work as a DAG of :class:`Task` nodes — one per
(stage, params, dependencies) triple — and a :class:`Runtime` executes
the graph:

1. **demand pruning** (reverse topological pass): starting from the
   requested targets, each demanded cacheable task is probed in the
   artifact store; a hit satisfies the task *and removes the demand on
   its dependencies*, so a warm store skips the expensive generate /
   simulate / transform stages entirely;
2. **wave execution** (forward pass): remaining tasks run in dependency
   waves, each wave fanned through
   :class:`~repro.sim.parallel.ParallelRunner` in task order — results
   are byte-identical at any worker count because every stage is pure
   and wave order is deterministic;
3. **artifact write-back**: cacheable results are stored under their
   content-addressed keys for the next experiment (or process) to hit.

Task deduplication happens at construction: adding the same (stage,
params, deps) twice returns the same node, so one scorecard graph runs
each shared stage once even when several experiments declare it.
"""

from ..errors import StageGraphError
from ..obs import OBS, trace_span
from ..sim.parallel import ParallelRunner
from .stages import _execute_stage_job, canonical, get_stage
from .store import artifact_key, get_store


class Task:
    """One node of a stage graph (identity = stage + params + deps)."""

    __slots__ = ("stage", "params", "deps", "signature", "key", "depth")

    def __init__(self, stage, params, deps, signature, key):
        self.stage = stage
        self.params = params
        self.deps = deps
        self.signature = signature
        self.key = key
        self.depth = 1 + max((dep.depth for dep in deps), default=0)

    def __repr__(self):
        return "Task(%s, %s%s)" % (
            self.stage.name, canonical(self.params),
            ", key=%s..." % self.key[:16] if self.key else "")


class StageGraph:
    """A deduplicating DAG builder over the registered stages."""

    def __init__(self):
        self._by_signature = {}
        self.order = []  # insertion order; topological by construction

    def task(self, stage_name, params=None, deps=()):
        """Add (or reuse) the task for ``(stage, params, deps)``.

        Dependencies must already belong to this graph, which makes the
        insertion order a valid topological order for free.
        """
        entry = get_stage(stage_name)
        deps = tuple(deps)
        for dep in deps:
            if self._by_signature.get(dep.signature) is not dep:
                raise StageGraphError(
                    "dependency %r does not belong to this graph" % (dep,))
        params = dict(params or {})
        signature = "%s(%s)<-[%s]" % (
            stage_name, canonical(params),
            ",".join(dep.signature for dep in deps))
        found = self._by_signature.get(signature)
        if found is not None:
            return found
        key = self._key(entry, params, deps)
        task = Task(entry, params, deps, signature, key)
        self._by_signature[signature] = task
        self.order.append(task)
        return task

    @staticmethod
    def _key(entry, params, deps):
        """Content-addressed artifact key (None for uncacheable stages).

        The key chains through dependencies by *their* keys, so changing
        any upstream artifact (or salt) re-addresses everything below
        it.  A cacheable stage therefore may only depend on cacheable
        stages — an uncacheable value has no content address to chain.
        """
        if not entry.cacheable:
            return None
        chained = []
        for dep in deps:
            if dep.key is None:
                raise StageGraphError(
                    "cacheable stage %r cannot depend on uncached stage %r"
                    % (entry.name, dep.stage.name))
            chained.append(dep.key)
        parts = [entry.name, canonical(params)]
        if entry.salt is not None:
            parts.append(entry.salt(params))
        return artifact_key(entry.codec.kind, *(parts + chained))

    def __len__(self):
        return len(self.order)


class Runtime:
    """Executes stage graphs against an artifact store and a worker pool."""

    def __init__(self, store=None, workers=1):
        self.store = store if store is not None else get_store()
        self.workers = workers

    def execute(self, graph, targets=None):
        """Evaluate ``targets`` (default: every task); returns {task: value}.

        Cache accounting per stage lands in
        ``repro_runtime_stage_{hits,misses}_total`` and executed-stage
        timings in ``repro_runtime_stage_seconds`` when a collector is
        attached.
        """
        if targets is None:
            targets = list(graph.order)
        results = {}
        demanded = set()
        for task in targets:
            if graph._by_signature.get(task.signature) is not task:
                raise StageGraphError(
                    "target %r does not belong to this graph" % (task,))
            demanded.add(task)
        # Reverse pass: probe the store top-down so a cached target
        # removes the demand on its whole upstream subgraph.
        for task in reversed(graph.order):
            if task not in demanded:
                continue
            if task.key is not None:
                value = self.store.get(task.key, task.stage.codec,
                                       context=task.stage.name)
                if value is not None:
                    results[task] = value
                    self._record_hit(task)
                    continue
            demanded.update(task.deps)
        # Forward pass: execute what remains, one dependency wave at a
        # time, fanning each wave through the parallel runner.
        pending = [task for task in graph.order
                   if task in demanded and task not in results]
        runner = ParallelRunner(self.workers)
        while pending:
            depth = min(task.depth for task in pending)
            wave = [task for task in pending if task.depth == depth]
            pending = [task for task in pending if task.depth != depth]
            jobs = [(task.stage.name, task.params,
                     [results[dep] for dep in task.deps]) for task in wave]
            # One span per dependency wave: under --workers the per-stage
            # spans live in worker processes and are stitched back beneath
            # this wave's parallel.map span, so stage-level time
            # attribution in the merged timeline stays correct.
            stages = ",".join(sorted({task.stage.name for task in wave}))
            with trace_span("runtime.wave", depth=depth, tasks=len(wave),
                            stages=stages):
                outcomes = runner.map(_execute_stage_job, jobs)
            for task, (value, seconds) in zip(wave, outcomes):
                if task.key is not None:
                    self.store.put(task.key, value, task.stage.codec,
                                   context=task.stage.name)
                results[task] = value
                self._record_miss(task, seconds)
        return results

    @staticmethod
    def _record_hit(task):
        if OBS.active:
            OBS.instruments.runtime_stage_hits.labels(
                stage=task.stage.name).inc()

    @staticmethod
    def _record_miss(task, seconds):
        if not OBS.active:
            return
        instruments = OBS.instruments
        instruments.runtime_stage_misses.labels(stage=task.stage.name).inc()
        instruments.runtime_stage_seconds.labels(
            stage=task.stage.name).observe(seconds)
