"""The stage taxonomy: named, pure units of experiment work.

A *stage* is one step of an experiment pipeline — generate a workload,
simulate it, transform it to a processing rate, replay its report stream
through a buffer model, derive a result row.  Every stage function is
pure: its output is fully determined by its picklable ``params`` dict
plus the values of its dependency stages, which is what lets the
scheduler (:mod:`repro.runtime.graph`)

- **content-address** cacheable stages in the shared
  :class:`~repro.runtime.store.ArtifactStore` (key = runtime salt +
  stage name + params + dependency keys),
- **deduplicate** identical stages across experiments (Table 1 and
  Table 4 share ``generate``/``simulate8``; Table 3 and Table 4 share
  ``to_rate``), and
- **fan stages out** through :class:`~repro.sim.parallel.ParallelRunner`
  with byte-identical results at any worker count.

Cacheable stages name a codec; stages without one (placement, the
buffer-model replays, figure aggregations) re-run every time — they are
cheap, and their inputs are exactly the expensive cached artifacts.
"""

from time import perf_counter

from ..baselines.ap import ApReportingModel
from ..core.config import SunderConfig
from ..core.mapping import place
from ..core.packed import resolve_fidelity
from ..core.perfmodel import (ReportingPerfModel, pu_fill_cycles_from_events,
                              sensitivity_slowdown)
from ..errors import StageGraphError
from ..exec.plan import ExecutionPlan
from ..hwmodel import area
from ..obs import stage_progress, trace_span
from ..prefilter import gated_simulation
from ..sim.engine import DEFAULT_STEP_CACHE, BitsetEngine
from ..sim.inputs import stream_for, stream_shape
from ..sim.reports import ReportRecorder
from ..sim.stats import static_statistics
from ..transform import cache as transform_cache
from ..transform.pipeline import to_rate
from ..workloads import registry as workloads
from .artifacts import (AUTOMATON_CODEC, INSTANCE_CODEC, JSON_CODEC,
                        SIMRUN_CODEC, SimRun)


class Stage:
    """One registered stage kind.

    ``codec`` names the artifact codec for cacheable stages (``None``
    means the stage re-runs every time); ``salt`` optionally derives
    extra key material from the params (generator/transform versions) so
    bumping an upstream code version invalidates cached results.
    """

    def __init__(self, name, func, codec=None, salt=None):
        self.name = name
        self.func = func
        self.codec = codec
        self.salt = salt

    @property
    def cacheable(self):
        return self.codec is not None

    def __repr__(self):
        return "Stage(%s%s)" % (self.name,
                                ", cached" if self.cacheable else "")


#: All registered stages by name.
REGISTRY = {}


def stage(name, codec=None, salt=None):
    """Register a module-level function as the stage ``name``."""
    def register(func):
        if name in REGISTRY:
            raise StageGraphError("stage %r registered twice" % name)
        REGISTRY[name] = Stage(name, func, codec=codec, salt=salt)
        return func
    return register


def get_stage(name):
    """Look up a registered stage (raises StageGraphError if unknown)."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise StageGraphError(
            "unknown stage %r (registered: %s)"
            % (name, ", ".join(sorted(REGISTRY))))


def canonical(value):
    """Deterministic string form of a params value for keys/signatures.

    Dicts are sorted, sequences recursed, and objects carrying state in
    ``__dict__`` (e.g. :class:`~repro.core.config.SunderConfig`) are
    expanded field-by-field — two configs differing in any knob must
    never collide, and ``repr`` alone does not guarantee that.
    """
    if isinstance(value, dict):
        return "{%s}" % ",".join(
            "%s=%s" % (key, canonical(value[key])) for key in sorted(value))
    if isinstance(value, (list, tuple)):
        return "[%s]" % ",".join(canonical(item) for item in value)
    if hasattr(value, "__dict__") and vars(value):
        return "%s%s" % (type(value).__name__, canonical(vars(value)))
    return repr(value)


def _execute_stage_job(job):
    """Run one stage from a picklable ``(name, params, dep_values)`` spec.

    Module-level so :class:`~repro.sim.parallel.ParallelRunner` can ship
    it to worker processes.  Returns ``(result, seconds)`` — timing is
    measured here so the parent can observe ``repro_runtime_stage_seconds``
    even for pool-executed stages (whose own collectors are detached).
    """
    name, params, dep_values = job
    entry = get_stage(name)
    # "name" would collide with trace_span's positional argument; the
    # params slot it fills is always the benchmark name.
    attrs = {("benchmark" if key == "name" else key): value
             for key, value in params.items()
             if isinstance(value, (str, int, float, bool))}
    start = perf_counter()
    stage_progress(name, 0.0)
    with trace_span("stage." + name, **attrs):
        result = entry.func(params, *dep_values)
    stage_progress(name, 1.0)
    return result, perf_counter() - start


# ----------------------------------------------------------------------
# Cacheable stages (expensive, content-addressed)
# ----------------------------------------------------------------------

def _generator_salt(params):
    return workloads.instance_fingerprint(
        params["name"], params["scale"], params["seed"])


@stage("generate", codec=INSTANCE_CODEC, salt=_generator_salt)
def _generate(params):
    """Build one synthetic benchmark instance (automaton + input)."""
    return workloads.generate(params["name"], scale=params["scale"],
                              seed=params["seed"])


def _stage_plan(params):
    """The :class:`ExecutionPlan` a stage's params select.

    A ``plan`` key (the minimal ``param_payload`` form) wins; otherwise
    the legacy per-knob keys (``batch``/``shards``/``prefilter``/
    ``hotcold``/``fidelity``) map through
    :meth:`ExecutionPlan.from_flags`, so both param surfaces funnel into
    one validated value.  Either way the params are the sole key-salt
    source: the experiment layer adds keys only when non-default, so
    pre-existing artifact keys (and warm stores) are untouched for
    default runs while planned/batched/sharded/gated runs are
    content-addressed separately through :func:`canonical`.
    """
    payload = params.get("plan")
    if payload is not None:
        return ExecutionPlan.from_payload(payload)
    return ExecutionPlan.from_flags(
        batch=params.get("batch", 1),
        shards=params.get("shards", 1),
        prefilter=bool(params.get("prefilter")),
        hotcold=params.get("hotcold"),
        fidelity=params.get("fidelity", "auto"))


def _stage_engine(automaton, plan):
    """An engine honoring the plan's kernel/step-cache knobs."""
    step_cache = (DEFAULT_STEP_CACHE if plan.step_cache is None
                  else plan.step_cache)
    return BitsetEngine(automaton, kernel=plan.kernel, step_cache=step_cache)


def _run_simulation(engine, vectors, recorder, plan):
    """Dispatch a stage simulation through the plan's engine strategy.

    ``shards=K`` splits the stream into K overlap-replayed blocks run
    back to back; ``batch=N`` runs the same N blocks as interleaved
    lanes of one pass (both are bit-exact vs ``engine.run``, pinned by
    tests/test_batch_shard.py).
    """
    if plan.shards == "auto" or plan.shards > 1:
        engine.run_sharded(vectors, plan.shards, recorder, interleave=False)
    elif plan.batch > 1:
        engine.run_sharded(vectors, plan.batch, recorder, interleave=True)
    else:
        engine.run(vectors, recorder)
    return recorder


@stage("simulate8", codec=SIMRUN_CODEC)
def _simulate8(params, instance):
    """Functional simulation of the 8-bit machine over its input.

    Records the full event stream (Table 4's AP replay needs it) and the
    active-state statistics (Table 1's dynamic columns need them).

    The execution strategy comes from the params' single ``plan`` value
    (or the legacy per-knob keys; see :func:`_stage_plan`).  A gating
    plan routes the run through the two-stage literal prefilter
    (:func:`repro.prefilter.gated_simulation`): reports stay bit-exact,
    but active-state statistics are only kept when the gate bypasses (a
    gated run skips most cycles).  Non-default strategies are salted
    into the key through :func:`canonical` because the experiment layer
    adds the params only when enabled, so planned and default artifacts
    never alias.
    """
    plan = _stage_plan(params)
    if plan.prefilter:
        recorder = ReportRecorder(keep_events=True)
        engine, gated = gated_simulation(
            instance.automaton, instance.input_bytes, recorder,
            hotcold_coverage=plan.hotcold_coverage)
        cycles, _ = stream_shape(instance.automaton, instance.input_bytes)
        if engine is not None and not gated:
            return SimRun.from_engine(engine, recorder, cycles)
        return SimRun(recorder, cycles)
    engine = _stage_engine(instance.automaton, plan)
    recorder = ReportRecorder(keep_events=True)
    stream = list(instance.input_bytes)
    _run_simulation(engine, stream, recorder, plan)
    return SimRun.from_engine(engine, recorder, len(stream))


def _transform_salt(params):
    return "transform:%s" % transform_cache.CODE_VERSION


@stage("to_rate", codec=AUTOMATON_CODEC, salt=_transform_salt)
def _to_rate(params, instance):
    """Section 4 pipeline: 8-bit machine -> ``rate`` nibbles per cycle."""
    return to_rate(instance.automaton, params["rate"])


@stage("simulate_strided", codec=SIMRUN_CODEC)
def _simulate_strided(params, instance, strided):
    """Functional simulation of the strided machine over the same input.

    A gating plan (or legacy ``prefilter=True``) gates the run on
    literals extracted from the 8-bit *source* machine; windows are
    mapped onto the strided machine's cycles (see
    :func:`repro.prefilter.gated_simulation`).
    """
    plan = _stage_plan(params)
    if plan.prefilter:
        cycles, limit = stream_shape(strided, instance.input_bytes)
        recorder = ReportRecorder(keep_events=True, position_limit=limit)
        gated_simulation(strided, instance.input_bytes, recorder,
                         source=instance.automaton,
                         hotcold_coverage=plan.hotcold_coverage)
        return SimRun(recorder, cycles)
    vectors, limit = stream_for(strided, instance.input_bytes)
    recorder = ReportRecorder(keep_events=True, position_limit=limit)
    _run_simulation(_stage_engine(strided, plan), vectors, recorder, plan)
    return SimRun(recorder, len(vectors))


@stage("table1_row", codec=JSON_CODEC)
def _table1_row(params, instance, run8):
    """Table 1 row: static + dynamic columns next to the paper's."""
    row = {}
    row.update(static_statistics(instance.automaton))
    row.update(run8.summary())
    row["benchmark"] = instance.name
    row["family"] = instance.family
    row["input_bytes"] = len(instance.input_bytes)
    row["paper_report_state_pct"] = instance.paper_row.get("report_state_pct")
    row["paper_report_cycle_pct"] = instance.paper_row.get("report_cycle_pct")
    row["paper_reports_per_report_cycle"] = instance.paper_row.get(
        "reports_per_report_cycle")
    return row


@stage("table3_row", codec=JSON_CODEC)
def _table3_row(params, instance, *machines):
    """Table 3 row: state/transition blowup per rate vs the 8-bit base."""
    base_states = len(instance.automaton)
    base_transitions = instance.automaton.num_transitions()
    row = {"benchmark": instance.name}
    for rate, machine in zip(params["rates"], machines):
        row["states_%d" % rate] = len(machine) / base_states
        row["transitions_%d" % rate] = (
            machine.num_transitions() / base_transitions
            if base_transitions else float("nan"))
    return row


# ----------------------------------------------------------------------
# Uncacheable stages (cheap model replays and aggregations)
# ----------------------------------------------------------------------

@stage("place")
def _place(params, strided):
    """Map the strided machine onto Sunder PUs.

    Device-bearing stages carry the device-fidelity knob in their params
    as key-salt material: should these stages ever become cacheable,
    packed and literal results must not alias in a shared artifact store
    (see docs/architecture.md).  Resolving it here also fails fast on a
    bad knob value.
    """
    resolve_fidelity(_stage_plan(params).fidelity)
    return place(strided, SunderConfig(rate_nibbles=params["rate"]))


def drain_row(instance, run8, strided_run, placement, rate, scale,
              config=None):
    """Table 4 row: replay both report streams through every buffer model.

    Shared by the ``report_drain`` stage and
    :func:`repro.experiments.table4.evaluate_benchmark` (the direct path
    for custom instances) so the two can never drift.
    """
    if config is None:
        config = SunderConfig(rate_nibbles=rate)
    report_ids = [state.id for state in instance.automaton.report_states()]
    byte_cycles = run8.cycles
    ap = ApReportingModel(rad=False, scale=scale).evaluate(
        run8.recorder.events, report_ids, byte_cycles)
    rad = ApReportingModel(rad=True, scale=scale).evaluate(
        run8.recorder.events, report_ids, byte_cycles)
    fills = pu_fill_cycles_from_events(strided_run.recorder.events, placement)
    no_fifo = ReportingPerfModel(_with_fifo(config, False)).evaluate(
        fills, strided_run.cycles, capacity_scale=scale)
    fifo = ReportingPerfModel(_with_fifo(config, True)).evaluate(
        fills, strided_run.cycles, capacity_scale=scale)
    paper = (workloads.PAPER_TABLE4.get(instance.name, {})
             if instance.paper_row else {})
    return {
        "benchmark": instance.name,
        "sunder_flushes": no_fifo.flushes,
        "sunder_overhead": no_fifo.slowdown,
        "sunder_fifo_flushes": fifo.flushes,
        "sunder_fifo_overhead": fifo.slowdown,
        "ap_overhead": ap.slowdown,
        "rad_overhead": rad.slowdown,
        "paper_sunder": paper.get("sunder"),
        "paper_sunder_fifo": paper.get("sunder_fifo"),
        "paper_ap": paper.get("ap"),
        "paper_rad": paper.get("ap_rad"),
        "pus": len(placement.pus_used()),
        "byte_cycles": byte_cycles,
        "vector_cycles": strided_run.cycles,
    }


def _with_fifo(config, fifo):
    """Clone a config with the FIFO strategy toggled."""
    return SunderConfig(
        rate_nibbles=config.rate_nibbles,
        report_bits=config.report_bits,
        metadata_bits=config.metadata_bits,
        fifo=fifo,
        flush_rows_per_cycle=config.flush_rows_per_cycle,
        fifo_drain_rows_per_cycle=config.fifo_drain_rows_per_cycle,
        summarize_batch_rows=config.summarize_batch_rows,
        summarize_stall_cycles=config.summarize_stall_cycles,
    )


@stage("report_drain")
def _report_drain(params, instance, run8, strided_run, placement):
    """Table 4 row for one benchmark (AP, AP+RAD, Sunder, Sunder+FIFO).

    Carries the device-fidelity knob in its params for the same
    key-salting reason as ``place``.
    """
    resolve_fidelity(_stage_plan(params).fidelity)
    return drain_row(instance, run8, strided_run, placement,
                     rate=params["rate"], scale=params["scale"])


@stage("figure9_arch")
def _figure9_arch(params):
    """Component areas (um2) of one architecture at ``num_states``."""
    model = area._AREA_MODELS[params["arch"]]
    return model(params["num_states"])


@stage("figure10_point")
def _figure10_point(params):
    """One sensitivity-sweep point (slowdown with/without summarization)."""
    resolve_fidelity(_stage_plan(params).fidelity)
    fraction = params["pct"] / 100.0
    config = params["config"]
    return {
        "report_cycle_pct": params["pct"],
        "slowdown": sensitivity_slowdown(fraction, summarize=False,
                                         config=config),
        "slowdown_summarized": sensitivity_slowdown(
            fraction, summarize=True, config=config),
    }
