"""Shared content-addressed artifact store for the stage-graph runtime.

:class:`ArtifactStore` is the generalization of the transform cache's
two-tier design (PR 3): an in-process LRU of decoded master objects plus
an optional on-disk artifact directory of versioned JSON payloads,
addressed by ``CODE_VERSION``-salted SHA-256 keys.  Where the transform
cache stores only automata, the artifact store is *kind-agnostic*: every
``get``/``put`` names a :class:`Codec` that owns the (de)serialization
and the defensive copying of one artifact kind — automata, workload
instances, simulation report streams, plain JSON rows.

Guarantees shared with the transform cache (whose :class:`TransformCache
<repro.transform.cache.TransformCache>` is now a subclass of this store):

- **memory tier** — an LRU of master objects; hits return
  ``codec.copy(master)`` so callers can mutate freely;
- **disk tier** — ``<key>.json`` files written through a temporary file
  plus :func:`os.replace`, so concurrent writers and readers never see a
  partial entry;
- **corruption degrades to a miss** — an undecodable artifact counts as
  ``corrupt``, is left in place for post-mortem inspection, and the
  caller rebuilds.

Keys produced by :func:`artifact_key` are prefixed with the codec kind
(``simreport-<sha256>``), which keeps the artifact directory
self-describing and collision-free across kinds.
"""

import hashlib
import json
import os
import threading
from collections import OrderedDict

from ..errors import ArtifactError, ReproError
from ..obs import OBS

#: Runtime code-version salt mixed into every stage/artifact key.  Bump
#: whenever the semantics of a cached stage (generation, simulation,
#: serialization formats) change so stale artifacts can never be served.
CODE_VERSION = "2026.08-runtime-1"

#: Environment variable naming the on-disk artifact directory for the
#: process-wide store.  When unset, the store is memory-only.
ENV_VAR = "REPRO_ARTIFACT_DIR"

#: Default capacity (entries) of the in-process LRU tier.  Sized so one
#: full-suite scorecard run (instances + report streams + strided
#: machines + cached rows for 19 benchmarks) fits without eviction.
DEFAULT_MEMORY_ENTRIES = 256

_STAT_KEYS = ("memory_hits", "disk_hits", "misses", "stores",
              "evictions", "corrupt")


class Codec:
    """Serialization contract for one artifact kind.

    Subclasses (or instances built via :func:`json_codec`) provide:

    - ``kind`` — short slug used in key prefixes and diagnostics;
    - ``encode(obj) -> str`` — versioned JSON text;
    - ``decode(text) -> obj`` — inverse; must raise a
      :class:`~repro.errors.ReproError` subclass (usually
      :class:`~repro.errors.ArtifactError`) on any malformed payload so
      the store can degrade to a miss;
    - ``copy(obj) -> obj`` — defensive copy served on memory-tier hits.
    """

    kind = "artifact"

    def encode(self, obj):
        raise NotImplementedError

    def decode(self, text):
        raise NotImplementedError

    def copy(self, obj):
        return obj


class JsonCodec(Codec):
    """Codec for plain JSON-serializable values (rows, summaries)."""

    def __init__(self, kind="json"):
        self.kind = kind

    def encode(self, obj):
        return json.dumps({"format": "repro-json", "version": 1,
                           "value": obj}, separators=(",", ":"))

    def decode(self, text):
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, TypeError) as error:
            raise ArtifactError("undecodable json artifact: %s" % error)
        if not isinstance(payload, dict) or payload.get("format") != "repro-json":
            raise ArtifactError("unknown json artifact format")
        if payload.get("version") != 1:
            raise ArtifactError("unsupported json artifact version %r"
                                % (payload.get("version"),))
        try:
            return payload["value"]
        except KeyError:
            raise ArtifactError("json artifact lacks a value")

    def copy(self, obj):
        # Round-tripping keeps served values decoupled from the master
        # and enforces JSON-serializability at store time.
        return json.loads(json.dumps(obj))


def artifact_key(kind, *parts):
    """Content-addressed key: ``<kind>-sha256(salt, kind, parts...)``.

    ``parts`` are strings (fingerprints, parameter reprs, upstream
    keys); the :data:`CODE_VERSION` salt invalidates every existing
    entry when cached-stage semantics change.
    """
    digest = hashlib.sha256()
    digest.update(("%s\x00%s\x00" % (CODE_VERSION, kind)).encode("utf-8"))
    for part in parts:
        digest.update(("%s\x00" % (part,)).encode("utf-8", "surrogatepass"))
    return "%s-%s" % (kind, digest.hexdigest())


class ArtifactStore:
    """Two-tier (memory LRU + disk directory) content-addressed store."""

    def __init__(self, directory=None, memory_entries=DEFAULT_MEMORY_ENTRIES):
        self.directory = os.path.abspath(directory) if directory else None
        self.memory_entries = max(0, int(memory_entries))
        self._memory = OrderedDict()
        self._lock = threading.Lock()
        self._tls = threading.local()
        self.stats = dict.fromkeys(_STAT_KEYS, 0)

    # -- lookup / store ------------------------------------------------
    def get(self, key, codec, context="?"):
        """Cached artifact for ``key`` (a fresh copy) or ``None``.

        A disk hit is promoted into the memory tier.  Undecodable disk
        artifacts count as ``corrupt`` misses and are left in place for
        post-mortem inspection (the next store overwrites them).
        """
        with self._lock:
            entry = self._memory.get(key)
            if entry is not None:
                self._memory.move_to_end(key)
        if entry is not None:
            master_codec, master = entry
            self._record("memory_hits", context=context, tier="memory")
            return master_codec.copy(master)
        master = self._disk_get(key, codec, context)
        if master is not None:
            self._remember(key, codec, master)
            self._record("disk_hits", context=context, tier="disk")
            return codec.copy(master)
        self._record("misses", context=context)
        return None

    def put(self, key, obj, codec, context="?"):
        """Store ``obj`` under ``key`` in every configured tier."""
        self._remember(key, codec, codec.copy(obj))
        self._record("stores", context=context)
        if self.directory is None:
            return
        self._disk_put(key, codec.encode(obj))

    def _disk_put(self, key, text):
        """Atomically write one artifact to the disk tier."""
        path = self._path(key)
        tmp = "%s.tmp.%d.%d" % (path, os.getpid(), threading.get_ident())
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self._record_written(len(text))

    def fetch(self, key, codec, build, context="?"):
        """Memoize ``build()``: return ``(artifact, hit)``.

        ``hit`` is the serving tier (``"memory"``/``"disk"``) or ``None``
        when ``build`` actually ran.
        """
        found = self.get(key, codec, context=context)
        if found is not None:
            return found, self._last_tier
        result = build()
        self.put(key, result, codec, context=context)
        return result, None

    # -- maintenance ---------------------------------------------------
    def info(self):
        """Snapshot of configuration, occupancy, and counters."""
        disk_entries = 0
        disk_bytes = 0
        for path in self._disk_paths():
            try:
                disk_bytes += os.path.getsize(path)
                disk_entries += 1
            except OSError:
                continue
        with self._lock:
            memory_used = len(self._memory)
        return {
            "directory": self.directory,
            "code_version": self._code_version(),
            "memory_entries": self.memory_entries,
            "memory_used": memory_used,
            "disk_entries": disk_entries,
            "disk_bytes": disk_bytes,
            "stats": dict(self.stats),
        }

    def clear(self, memory=True, disk=True):
        """Drop cached entries; returns the number removed."""
        removed = 0
        if memory:
            with self._lock:
                removed += len(self._memory)
                self._memory.clear()
        if disk:
            for path in self._disk_paths():
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    continue
        return removed

    # -- internals -----------------------------------------------------
    @property
    def _last_tier(self):
        """Serving tier of this thread's last lookup (None on miss)."""
        return getattr(self._tls, "tier", None)

    def _code_version(self):
        """Salt reported by :meth:`info` (subclasses override)."""
        return CODE_VERSION

    def _path(self, key):
        return os.path.join(self.directory, key + ".json")

    def _disk_paths(self):
        if self.directory is None:
            return []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return [os.path.join(self.directory, name)
                for name in sorted(names) if name.endswith(".json")]

    def _disk_get(self, key, codec, context):
        if self.directory is None:
            return None
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return None
        try:
            return codec.decode(text)
        except ReproError:
            self._record("corrupt", context=context)
            return None

    def _remember(self, key, codec, master):
        if self.memory_entries == 0:
            return
        evicted = 0
        with self._lock:
            self._memory[key] = (codec, master)
            self._memory.move_to_end(key)
            while len(self._memory) > self.memory_entries:
                self._memory.popitem(last=False)
                evicted += 1
        for _ in range(evicted):
            self._record("evictions")

    def _record(self, stat, context=None, tier=None):
        self.stats[stat] += 1
        if stat.endswith("_hits"):
            self._tls.tier = tier
        elif stat == "misses":
            self._tls.tier = None
        self._emit(stat, context=context, tier=tier)

    def _emit(self, stat, context=None, tier=None):
        """Metric hook; the base store records nothing per lookup.

        Stage-level hit/miss accounting belongs to the runtime scheduler
        (``repro_runtime_stage_{hits,misses}_total``); subclasses with
        their own catalogue entries (the transform cache) override this.
        """

    def _record_written(self, nbytes):
        if OBS.active:
            OBS.instruments.runtime_artifact_bytes_written.inc(nbytes)


_ACTIVE = None
_ACTIVE_LOCK = threading.Lock()


def get_store():
    """The process-wide store (created on first use from :data:`ENV_VAR`)."""
    global _ACTIVE
    if _ACTIVE is None:
        with _ACTIVE_LOCK:
            if _ACTIVE is None:
                _ACTIVE = ArtifactStore(
                    directory=os.environ.get(ENV_VAR) or None)
    return _ACTIVE


def configure(directory=None, memory_entries=DEFAULT_MEMORY_ENTRIES):
    """Replace the process-wide store; returns the new one.

    The CLI's ``--artifact-dir`` flag and ``ParallelRunner`` worker
    initializers call this so every process shares one artifact
    directory.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = ArtifactStore(
            directory=directory, memory_entries=memory_entries)
    return _ACTIVE
