"""Functional automata simulation (the repo's VASim stand-in)."""

from .analysis import (
    buffer_pressure,
    burst_widths,
    density_timeline,
    inter_report_gaps,
    per_code_counts,
    summarize_analysis,
)
from .engine import DEFAULT_STEP_CACHE, BitsetEngine, NaiveEngine
from .parallel import ParallelRunner, default_workers, parallel_map
from .inputs import (
    PAD_NIBBLE,
    bytes_to_nibbles,
    nibble_position_to_byte,
    nibbles_to_bytes,
    stream_for,
    vectorize,
)
from .reports import ReportEvent, ReportRecorder
from .stats import dynamic_statistics, reporting_behavior, static_statistics
from .trace import CycleTrace, Tracer

__all__ = [
    "BitsetEngine",
    "CycleTrace",
    "DEFAULT_STEP_CACHE",
    "NaiveEngine",
    "ParallelRunner",
    "Tracer",
    "default_workers",
    "parallel_map",
    "ReportEvent",
    "ReportRecorder",
    "PAD_NIBBLE",
    "buffer_pressure",
    "burst_widths",
    "bytes_to_nibbles",
    "density_timeline",
    "inter_report_gaps",
    "per_code_counts",
    "summarize_analysis",
    "nibbles_to_bytes",
    "nibble_position_to_byte",
    "stream_for",
    "vectorize",
    "dynamic_statistics",
    "reporting_behavior",
    "static_statistics",
]
