"""Report-stream analytics.

Table 1 summarizes reporting behaviour with a handful of aggregates; this
module provides the richer diagnostics used when calibrating workloads
and sizing reporting buffers: inter-report-cycle gaps, windowed report
density, burst-width distribution, and per-rule match counts.
"""

from collections import Counter

from ..errors import SimulationError


def inter_report_gaps(recorder):
    """Gaps (in cycles) between consecutive reporting cycles.

    The distribution that decides buffer pressure: dense reporters have
    small gaps (SPM ~30), sparse ones large (Fermi ~3000).
    """
    cycles = sorted(recorder.reports_per_cycle)
    return [b - a for a, b in zip(cycles, cycles[1:])]


def burst_widths(recorder):
    """Counter of per-report-cycle widths (reports in the same cycle).

    SPM's signature is a heavy tail here (paper: 1394-wide bursts).
    """
    return Counter(recorder.reports_per_cycle.values())


def per_code_counts(recorder):
    """Counter of report codes — which rules actually fire.

    Requires ``keep_events=True`` on the recorder.
    """
    if not recorder.keep_events:
        raise SimulationError("per-code counts need keep_events=True")
    return Counter(event.report_code for event in recorder.events)


def density_timeline(recorder, total_cycles, windows=20):
    """Report counts over ``windows`` equal slices of the run.

    Reveals phase behaviour (e.g. a trace whose second half goes quiet)
    that the global aggregates hide.
    """
    if total_cycles <= 0:
        raise SimulationError("total_cycles must be positive")
    if windows <= 0:
        raise SimulationError("windows must be positive")
    width = max(1, -(-total_cycles // windows))
    timeline = [0] * windows
    for cycle, count in recorder.reports_per_cycle.items():
        index = min(windows - 1, cycle // width)
        timeline[index] += count
    return timeline


def buffer_pressure(recorder, capacity, total_cycles, drain_per_cycle=0.0):
    """Peak and final occupancy of a ``capacity``-entry report buffer.

    Replays the report-cycle stream against a single buffer with an
    optional continuous drain: the quick answer to "would this workload
    overflow an N-entry region?" without the full performance model.
    Returns ``(peak, overflows, final)``.
    """
    if capacity < 1:
        raise SimulationError("capacity must be positive")
    level = 0.0
    peak = 0.0
    overflows = 0
    previous = 0
    for cycle in sorted(recorder.reports_per_cycle):
        if cycle >= total_cycles:
            raise SimulationError("report beyond total_cycles")
        level = max(0.0, level - drain_per_cycle * (cycle - previous))
        previous = cycle
        level += 1.0  # one entry per reporting cycle
        if level > capacity:
            overflows += 1
            level = 1.0
        peak = max(peak, level)
    level = max(0.0, level - drain_per_cycle * (total_cycles - previous))
    return peak, overflows, level


def summarize_analysis(recorder, total_cycles):
    """One-stop dict of the analytics above (events optional)."""
    gaps = inter_report_gaps(recorder)
    widths = burst_widths(recorder)
    result = {
        "report_cycles": recorder.report_cycles,
        "total_reports": recorder.total_reports,
        "min_gap": min(gaps) if gaps else None,
        "median_gap": sorted(gaps)[len(gaps) // 2] if gaps else None,
        "max_burst": max(widths) if widths else 0,
        "timeline": density_timeline(recorder, total_cycles)
        if total_cycles > 0 else [],
    }
    if recorder.keep_events and recorder.events:
        result["hot_codes"] = per_code_counts(recorder).most_common(5)
    return result
