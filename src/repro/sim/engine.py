"""Functional NFA execution engines.

Two engines with identical semantics:

- :class:`BitsetEngine` — production engine.  The active-state set is a
  Python int used as a bitmask and per-(position, symbol) match masks
  are precomputed.  Successor propagation runs one of two kernels:

  - ``"sliced"`` (default) — the state space is sliced into 8-bit
    *blocks*; for each (block, byte-value) pair the OR of that block's
    successor masks is table-driven, so one lookup covers up to eight
    active states at once (the CAMA-style compaction argument: iterate
    table entries, not states).
  - ``"scan"`` — the original per-active-bit loop, kept as a fallback
    and as a second differential-testing axis.

  On top of either kernel sits an LRU *step cache* mapping
  ``(active_mask, vector, start-phase)`` to ``(next_active,
  reporting_mask)`` — the calibrated benchmark streams revisit the same
  subset-construction states constantly (DFA-style subset caching), so
  most cycles collapse into one dictionary hit.
- :class:`NaiveEngine` — direct set-of-states implementation kept as a
  differential-testing oracle.

Cycle semantics (matching VASim and the paper's Figure 1):

1. ``enabled(t) = successors(active(t-1)) | all-input starts (if t is a
   start-period boundary) | start-of-data starts (if t == 0)``
2. ``active(t) = {q in enabled(t) : input(t) matches q.symbols}``
3. every active reporting state emits one report per report offset.
"""

from collections import deque
from time import perf_counter

from ..errors import SimulationError
from ..automata.ste import StartKind
from ..obs import OBS, trace_span
from .reports import ReportRecorder

#: Default LRU step-cache capacity (entries); 0 disables the cache.
DEFAULT_STEP_CACHE = 1 << 16

#: Automata at or below this many states get their (block, byte) tables
#: filled eagerly at construction; larger ones fill entries on first use
#: so construction cost and memory stay proportional to what the stream
#: actually exercises.
EAGER_SLICE_STATES = 512

_KERNELS = ("auto", "sliced", "scan")


class BitsetEngine:
    """Bitmask-based cycle-accurate simulator for one automaton.

    The engine is reusable: call :meth:`run` for whole streams, or
    :meth:`reset` + :meth:`step` for streaming use.

    Parameters
    ----------
    kernel:
        ``"sliced"`` (block-sliced successor tables), ``"scan"`` (the
        per-active-bit loop), or ``"auto"`` (currently ``"sliced"``).
    step_cache:
        Capacity of the LRU step cache; ``0`` disables memoization.
        The cache survives :meth:`reset` — entries are pure functions
        of the automaton, so reuse across runs is sound and is where
        repeated-stream workloads win the most.
    history_limit:
        ``None`` (default) keeps the full per-cycle
        ``active_count_history`` list as before; ``N > 0`` keeps a ring
        buffer of the most recent ``N`` counts; ``0`` disables history
        bookkeeping entirely (recommended for unbounded streaming use).
    """

    def __init__(self, automaton, kernel="auto", step_cache=DEFAULT_STEP_CACHE,
                 history_limit=None):
        automaton.validate()
        if kernel not in _KERNELS:
            raise SimulationError(
                "unknown kernel %r (choose from %s)" % (kernel, _KERNELS))
        if step_cache < 0:
            raise SimulationError("step_cache capacity must be >= 0")
        if history_limit is not None and history_limit < 0:
            raise SimulationError("history_limit must be None or >= 0")
        self.automaton = automaton
        self.kernel = "sliced" if kernel == "auto" else kernel
        self._ids = automaton.state_ids()
        self._index = {state_id: i for i, state_id in enumerate(self._ids)}
        size = len(self._ids)
        self._size = size
        self._start_period = automaton.start_period

        self._succ_mask = [0] * size
        for src, dst in automaton.transitions():
            self._succ_mask[self._index[src]] |= 1 << self._index[dst]

        self._all_input_mask = 0
        self._start_of_data_mask = 0
        self._report_mask = 0
        self._report_info = {}
        for state in automaton:
            bit = 1 << self._index[state.id]
            if state.start is StartKind.ALL_INPUT:
                self._all_input_mask |= bit
            elif state.start is StartKind.START_OF_DATA:
                self._start_of_data_mask |= bit
            if state.report:
                self._report_mask |= bit
                self._report_info[self._index[state.id]] = (
                    state.id, state.report_code, state.report_offsets,
                )

        alphabet = 1 << automaton.bits
        self._match_masks = [[0] * alphabet for _ in range(automaton.arity)]
        for state in automaton:
            bit = 1 << self._index[state.id]
            for position, sset in enumerate(state.symbols):
                column = self._match_masks[position]
                for value in sset:
                    column[value] |= bit

        if self.kernel == "sliced":
            self._build_block_tables()

        self._step_cache_limit = step_cache
        self._step_cache = {} if step_cache else None
        self._cache_hits = 0
        self._cache_misses = 0
        self._history_limit = history_limit
        self.reset()

    def _build_block_tables(self):
        """Slice the state space into 8-bit blocks of successor ORs.

        ``_block_tables[b][v]`` is the OR of the successor masks of the
        states in block ``b`` whose bit is set in byte-value ``v``.
        Small automata are filled eagerly (with the subset-doubling
        recurrence ``table[v] = table[v without lowest bit] | succ``);
        large ones leave entries as ``None`` to be filled on first use.
        """
        succ = self._succ_mask
        n_blocks = (self._size + 7) >> 3
        self._block_clear = [~(0xFF << (b << 3)) for b in range(n_blocks)]
        tables = []
        if self._size <= EAGER_SLICE_STATES:
            for block in range(n_blocks):
                base = block << 3
                width = min(8, self._size - base)
                table = [0] * 256
                for value in range(1, 1 << width):
                    low = value & -value
                    table[value] = (table[value ^ low]
                                    | succ[base + low.bit_length() - 1])
                if width < 8:  # bits beyond the state space never occur
                    for value in range(1 << width, 256):
                        table[value] = table[value & ((1 << width) - 1)]
                tables.append(table)
        else:
            tables = [[None] * 256 for _ in range(n_blocks)]
        self._block_tables = tables

    def _fill_block_entry(self, block, value):
        """Lazily compute and store one (block, byte-value) table entry."""
        succ = self._succ_mask
        base = block << 3
        entry = 0
        bits = value
        while bits:
            low = bits & -bits
            entry |= succ[base + low.bit_length() - 1]
            bits ^= low
        self._block_tables[block][value] = entry
        return entry

    # ------------------------------------------------------------------
    def reset(self):
        """Return to the pre-input state (cycle 0 next).

        The step cache is deliberately *not* cleared: its entries
        depend only on the automaton, never on stream position.
        """
        self._active = 0
        self._cycle = 0
        limit = self._history_limit
        if limit is None:
            self.active_count_history = []
        else:
            self.active_count_history = deque(maxlen=limit)

    @property
    def cycle(self):
        """Next cycle index to be executed."""
        return self._cycle

    def active_ids(self):
        """Ids of currently active states (after the last step)."""
        return [self._ids[i] for i in _iter_bits(self._active)]

    def step_cache_info(self):
        """Cache statistics: hits/misses since construction, size, limit."""
        lookups = self._cache_hits + self._cache_misses
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "hit_rate": self._cache_hits / lookups if lookups else 0.0,
            "size": len(self._step_cache) if self._step_cache is not None else 0,
            "limit": self._step_cache_limit,
        }

    def _enabled_mask(self):
        enabled = 0
        active = self._active
        if self.kernel == "sliced":
            tables = self._block_tables
            clear = self._block_clear
            while active:
                low = active & -active
                block = (low.bit_length() - 1) >> 3
                value = (active >> (block << 3)) & 0xFF
                entry = tables[block][value]
                if entry is None:
                    entry = self._fill_block_entry(block, value)
                enabled |= entry
                active &= clear[block]
        else:
            succ = self._succ_mask
            while active:
                low = active & -active
                enabled |= succ[low.bit_length() - 1]
                active ^= low
        if self._cycle % self._start_period == 0:
            enabled |= self._all_input_mask
        if self._cycle == 0:
            enabled |= self._start_of_data_mask
        return enabled

    def match_mask(self, vector):
        """Bitmask of states whose symbols match ``vector``."""
        masks = self._match_masks
        try:
            result = masks[0][vector[0]]
            for position in range(1, len(vector)):
                result &= masks[position][vector[position]]
        except IndexError:
            raise SimulationError(
                "input vector %r out of range for %d-bit arity-%d automaton"
                % (vector, self.automaton.bits, self.automaton.arity)
            ) from None
        return result

    def _report_plan(self, reporting):
        """Decode a reporting mask into ((offset, state_id, code), ...).

        Cached alongside the next-active mask so hot (cached) cycles
        record reports with a direct loop instead of re-walking bits.
        """
        plan = []
        for index in _iter_bits(reporting):
            state_id, code, offsets = self._report_info[index]
            for offset in offsets:
                plan.append((offset, state_id, code))
        return tuple(plan)

    def _step_key(self, vector):
        """Memoization key for the next step on ``vector``.

        The phase component folds in everything :meth:`_enabled_mask`
        reads besides the active mask: 2 = start-of-data cycle, 1 =
        start-period boundary, 0 = mid-period cycle.
        """
        cycle = self._cycle
        phase = 2 if cycle == 0 else (1 if cycle % self._start_period == 0
                                      else 0)
        return (self._active,
                vector if type(vector) is tuple else tuple(vector),
                phase)

    def step(self, vector, recorder=None):
        """Advance one cycle on ``vector``; returns the active bitmask."""
        cache = self._step_cache
        plan = None
        if cache is not None:
            key = self._step_key(vector)
            cached = cache.get(key)
            if cached is not None:
                self._cache_hits += 1
                del cache[key]  # LRU touch: re-insert at the newest end
                cache[key] = cached
                active, plan = cached
            else:
                self._cache_misses += 1
                active = self._enabled_mask() & self.match_mask(vector)
                plan = self._report_plan(active & self._report_mask)
                if len(cache) >= self._step_cache_limit:
                    cache.pop(next(iter(cache)))  # evict least recent
                cache[key] = (active, plan)
        else:
            active = self._enabled_mask() & self.match_mask(vector)
            if active & self._report_mask:
                plan = self._report_plan(active & self._report_mask)
        self._active = active
        if plan and recorder is not None:
            base = self._cycle * self.automaton.arity
            for offset, state_id, code in plan:
                recorder.record(base + offset, self._cycle, state_id, code)
        if self._history_limit != 0:
            self.active_count_history.append(_popcount(active))
        self._cycle += 1
        return active

    def _execute(self, vectors, recorder):
        """The hot run loop: :meth:`step` semantics with hoisted locals.

        Bit-exact with calling :meth:`step` per vector (the differential
        suite pins this); the win is skipping per-cycle attribute and
        method lookups, and touching the LRU order only once the cache
        is past half capacity (eviction precision only matters when an
        eviction is actually near).
        """
        cache = self._step_cache
        if cache is None:
            for vector in vectors:
                self.step(vector, recorder)
            return
        limit = self._step_cache_limit
        touch_floor = limit >> 1
        period = self._start_period
        report_mask = self._report_mask
        arity = self.automaton.arity
        history = (self.active_count_history
                   if self._history_limit != 0 else None)
        popcount = _popcount
        cache_get = cache.get
        record = recorder.record if recorder is not None else None
        active = self._active
        cycle = self._cycle
        hits = misses = 0
        single_period = period == 1
        for vector in vectors:
            phase = (2 if cycle == 0 else
                     1 if single_period or cycle % period == 0 else 0)
            key = (active, vector, phase)
            cached = cache_get(key)
            if cached is None:
                misses += 1
                self._active = active  # sync for _enabled_mask
                self._cycle = cycle
                nxt = self._enabled_mask() & self.match_mask(vector)
                cached = (nxt, self._report_plan(nxt & report_mask))
                if len(cache) >= limit:
                    cache.pop(next(iter(cache)))
                cache[key] = cached
            else:
                hits += 1
                if len(cache) > touch_floor:
                    del cache[key]
                    cache[key] = cached
            active, plan = cached
            if plan and record is not None:
                base = cycle * arity
                for offset, state_id, code in plan:
                    record(base + offset, cycle, state_id, code)
            if history is not None:
                history.append(popcount(active))
            cycle += 1
        self._active = active
        self._cycle = cycle
        self._cache_hits += hits
        self._cache_misses += misses

    def run(self, stream, recorder=None, position_limit=None):
        """Execute a whole stream; returns the :class:`ReportRecorder` used.

        ``stream`` may be flat ints (arity 1) or vectors.  When ``recorder``
        is None a fresh one (with ``position_limit``) is created.
        """
        if recorder is None:
            recorder = ReportRecorder(position_limit=position_limit)
        if OBS.active:  # single attribute check when no collector attached
            return self._run_observed(stream, recorder)
        self.reset()
        self._execute(_normalize_stream(self.automaton, stream), recorder)
        return recorder

    def _run_observed(self, stream, recorder):
        """`run` with the telemetry hooks live (collector attached)."""
        instruments = OBS.instruments
        reports_before = recorder.total_reports
        hits_before = self._cache_hits
        misses_before = self._cache_misses
        vectors = _normalize_stream(self.automaton, stream)
        with trace_span("engine.run", engine="bitset",
                        automaton=self.automaton.name,
                        cycles=len(vectors)):
            start = perf_counter()
            self.reset()
            self._execute(vectors, recorder)
            elapsed = perf_counter() - start
        instruments.engine_runs.labels(engine="bitset").inc()
        instruments.engine_cycles.labels(engine="bitset").inc(len(vectors))
        instruments.engine_reports.labels(engine="bitset").inc(
            recorder.total_reports - reports_before)
        instruments.engine_run_seconds.labels(engine="bitset").observe(elapsed)
        instruments.engine_step_cache_hits.labels(engine="bitset").inc(
            self._cache_hits - hits_before)
        instruments.engine_step_cache_misses.labels(engine="bitset").inc(
            self._cache_misses - misses_before)
        active_histogram = instruments.engine_active_states.labels(
            engine="bitset")
        for count in self.active_count_history:
            active_histogram.observe(count)
        return recorder


class NaiveEngine:
    """Reference set-based simulator (slow, obviously-correct)."""

    def __init__(self, automaton):
        automaton.validate()
        self.automaton = automaton
        self.reset()

    def reset(self):
        """Return to the pre-input state (cycle 0 next)."""
        self._active = set()
        self._cycle = 0

    def active_ids(self):
        """Ids of currently active states (after the last step)."""
        return sorted(self._active)

    def step(self, vector, recorder=None):
        """Advance one cycle on ``vector``; returns the active id set."""
        automaton = self.automaton
        enabled = set()
        for state_id in self._active:
            enabled |= automaton.successors(state_id)
        for state in automaton:
            if state.start is StartKind.ALL_INPUT:
                if self._cycle % automaton.start_period == 0:
                    enabled.add(state.id)
            elif state.start is StartKind.START_OF_DATA and self._cycle == 0:
                enabled.add(state.id)
        active = {
            state_id for state_id in enabled
            if automaton.state(state_id).matches(vector)
        }
        if recorder is not None:
            base = self._cycle * automaton.arity
            for state_id in active:
                state = automaton.state(state_id)
                if state.report:
                    for offset in state.report_offsets:
                        recorder.record(
                            base + offset, self._cycle, state_id, state.report_code
                        )
        self._active = active
        self._cycle += 1
        return active

    def run(self, stream, recorder=None, position_limit=None):
        """Execute a whole stream; mirrors :meth:`BitsetEngine.run`."""
        if recorder is None:
            recorder = ReportRecorder(position_limit=position_limit)
        self.reset()
        for vector in _normalize_stream(self.automaton, stream):
            self.step(vector, recorder)
        return recorder


def _normalize_stream(automaton, stream):
    """Turn a flat or vector stream into tuples of the automaton's arity."""
    vectors = []
    for item in stream:
        if isinstance(item, int):
            item = (item,)
        else:
            item = tuple(item)
        if len(item) != automaton.arity:
            raise SimulationError(
                "input vector %r does not match automaton arity %d"
                % (item, automaton.arity)
            )
        vectors.append(item)
    return vectors


def _iter_bits(mask):
    """Yield the indices of set bits in ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


try:
    _popcount = int.bit_count  # Python >= 3.10: C-speed population count
except AttributeError:  # pragma: no cover - exercised on older interpreters
    def _popcount(mask):
        return bin(mask).count("1")
