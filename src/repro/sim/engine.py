"""Functional NFA execution engines.

Two engines with identical semantics:

- :class:`BitsetEngine` — production engine.  The active-state set is a
  Python int used as a bitmask and per-(position, symbol) match masks
  are precomputed.  Successor propagation runs one of two kernels:

  - ``"sliced"`` (default) — the state space is sliced into 8-bit
    *blocks*; for each (block, byte-value) pair the OR of that block's
    successor masks is table-driven, so one lookup covers up to eight
    active states at once (the CAMA-style compaction argument: iterate
    table entries, not states).
  - ``"scan"`` — the original per-active-bit loop, kept as a fallback
    and as a second differential-testing axis.

  On top of either kernel sits an LRU *step cache* mapping
  ``(active_mask, vector, start-phase)`` to ``(next_active,
  reporting_mask)`` — the calibrated benchmark streams revisit the same
  subset-construction states constantly (DFA-style subset caching), so
  most cycles collapse into one dictionary hit.
- :class:`NaiveEngine` — direct set-of-states implementation kept as a
  differential-testing oracle.

On top of the single-stream path sit two aggregate-throughput modes:

- :meth:`BitsetEngine.run_batch` drives N independent streams through
  the compiled automaton in one pass (per-lane active masks, per-lane
  recorders, one shared step cache — identical ``(active, vector,
  phase)`` work is paid once per batch instead of once per stream);
- :meth:`BitsetEngine.run_sharded` splits one long stream into blocks
  whose warm-up overlap is bounded by
  :meth:`~repro.automata.automaton.Automaton.depth_bound` and stitches
  the block results bit-exact with the single-pass run (cyclic
  machines, whose history is unbounded, fall back to the serial path).

Cycle semantics (matching VASim and the paper's Figure 1):

1. ``enabled(t) = successors(active(t-1)) | all-input starts (if t is a
   start-period boundary) | start-of-data starts (if t == 0)``
2. ``active(t) = {q in enabled(t) : input(t) matches q.symbols}``
3. every active reporting state emits one report per report offset.
"""

from collections import deque
from time import perf_counter

from ..errors import SimulationError
from ..automata.ste import StartKind
from ..obs import OBS, ProgressReporter, trace_span
from .reports import ReportRecorder

#: Vectors per hot-loop slice between progress updates in observed runs.
#: Large enough that the loop overhead of slicing is invisible (<0.1%),
#: small enough that paper-scale streams report every few seconds.
_PROGRESS_CHUNK = 65536

#: Default LRU step-cache capacity (entries); 0 disables the cache.
DEFAULT_STEP_CACHE = 1 << 16

#: Automata at or below this many states get their (block, byte) tables
#: filled eagerly at construction; larger ones fill entries on first use
#: so construction cost and memory stay proportional to what the stream
#: actually exercises.
EAGER_SLICE_STATES = 512

_KERNELS = ("auto", "sliced", "scan")

#: Accepted ``batch_layout`` values for :meth:`BitsetEngine.run_batch`.
#: ``"lanes"`` keeps one active int per lane; ``"wide"`` packs every
#: lane into a single wide int at a padded-state-count stride.  Both
#: share the step cache per lane (each lane consumes its own input
#: vector, so there is no cross-lane work to share); benchmarking shows
#: the lane list wins — the wide int pays extract/insert shifts on an
#: ever-growing integer for no algorithmic gain — so ``"auto"`` selects
#: ``"lanes"`` (see docs/performance.md).
BATCH_LAYOUTS = ("auto", "lanes", "wide")

#: ``run_sharded(shards="auto")`` falls back to the serial path below
#: this stream length (in vector cycles): the documented pathological
#: pool case (0.05-0.15x at scale 0.01, docs/performance.md) is exactly
#: short streams, where per-shard warm-up replay and pool shipping
#: dwarf the work being split.
AUTO_SHARD_MIN_CYCLES = 1 << 16

#: Shard count ``"auto"`` picks for in-process (no runner) sharding of
#: streams above the threshold.
AUTO_SHARD_DEFAULT = 4


def _resolve_layout(batch_layout):
    if batch_layout not in BATCH_LAYOUTS:
        raise SimulationError(
            "unknown batch_layout %r (choose from %s)"
            % (batch_layout, BATCH_LAYOUTS))
    return "lanes" if batch_layout == "auto" else batch_layout


class BitsetEngine:
    """Bitmask-based cycle-accurate simulator for one automaton.

    The engine is reusable: call :meth:`run` for whole streams, or
    :meth:`reset` + :meth:`step` for streaming use.

    Parameters
    ----------
    kernel:
        ``"sliced"`` (block-sliced successor tables), ``"scan"`` (the
        per-active-bit loop), or ``"auto"`` (currently ``"sliced"``).
    step_cache:
        Capacity of the LRU step cache; ``0`` disables memoization.
        The cache survives :meth:`reset` — entries are pure functions
        of the automaton, so reuse across runs is sound and is where
        repeated-stream workloads win the most.
    history_limit:
        ``None`` (default) keeps the full per-cycle
        ``active_count_history`` list as before; ``N > 0`` keeps a ring
        buffer of the most recent ``N`` counts; ``0`` disables history
        bookkeeping entirely (recommended for unbounded streaming use).
    """

    def __init__(self, automaton, kernel="auto", step_cache=DEFAULT_STEP_CACHE,
                 history_limit=None):
        automaton.validate()
        if kernel not in _KERNELS:
            raise SimulationError(
                "unknown kernel %r (choose from %s)" % (kernel, _KERNELS))
        if step_cache < 0:
            raise SimulationError("step_cache capacity must be >= 0")
        if history_limit is not None and history_limit < 0:
            raise SimulationError("history_limit must be None or >= 0")
        self.automaton = automaton
        self.kernel = "sliced" if kernel == "auto" else kernel
        self._ids = automaton.state_ids()
        self._index = {state_id: i for i, state_id in enumerate(self._ids)}
        size = len(self._ids)
        self._size = size
        self._start_period = automaton.start_period

        self._succ_mask = [0] * size
        for src, dst in automaton.transitions():
            self._succ_mask[self._index[src]] |= 1 << self._index[dst]

        self._all_input_mask = 0
        self._start_of_data_mask = 0
        self._report_mask = 0
        self._report_info = {}
        for state in automaton:
            bit = 1 << self._index[state.id]
            if state.start is StartKind.ALL_INPUT:
                self._all_input_mask |= bit
            elif state.start is StartKind.START_OF_DATA:
                self._start_of_data_mask |= bit
            if state.report:
                self._report_mask |= bit
                self._report_info[self._index[state.id]] = (
                    state.id, state.report_code, state.report_offsets,
                )

        alphabet = 1 << automaton.bits
        self._match_masks = [[0] * alphabet for _ in range(automaton.arity)]
        for state in automaton:
            bit = 1 << self._index[state.id]
            for position, sset in enumerate(state.symbols):
                column = self._match_masks[position]
                for value in sset:
                    column[value] |= bit

        if self.kernel == "sliced":
            self._build_block_tables()

        self._step_cache_limit = step_cache
        self._step_cache = {} if step_cache else None
        self._cache_hits = 0
        self._cache_misses = 0
        self._history_limit = history_limit
        #: Per-lane active-count histories of the last :meth:`run_batch`
        #: (or in-process :meth:`run_sharded`) call; empty otherwise.
        self.lane_histories = []
        self.reset()

    def _build_block_tables(self):
        """Slice the state space into 8-bit blocks of successor ORs.

        ``_block_tables[b][v]`` is the OR of the successor masks of the
        states in block ``b`` whose bit is set in byte-value ``v``.
        Small automata are filled eagerly (with the subset-doubling
        recurrence ``table[v] = table[v without lowest bit] | succ``);
        large ones leave entries as ``None`` to be filled on first use.
        """
        succ = self._succ_mask
        n_blocks = (self._size + 7) >> 3
        self._block_clear = [~(0xFF << (b << 3)) for b in range(n_blocks)]
        tables = []
        if self._size <= EAGER_SLICE_STATES:
            for block in range(n_blocks):
                base = block << 3
                width = min(8, self._size - base)
                table = [0] * 256
                for value in range(1, 1 << width):
                    low = value & -value
                    table[value] = (table[value ^ low]
                                    | succ[base + low.bit_length() - 1])
                if width < 8:  # bits beyond the state space never occur
                    for value in range(1 << width, 256):
                        table[value] = table[value & ((1 << width) - 1)]
                tables.append(table)
        else:
            tables = [[None] * 256 for _ in range(n_blocks)]
        self._block_tables = tables

    def _fill_block_entry(self, block, value):
        """Lazily compute and store one (block, byte-value) table entry."""
        succ = self._succ_mask
        base = block << 3
        entry = 0
        bits = value
        while bits:
            low = bits & -bits
            entry |= succ[base + low.bit_length() - 1]
            bits ^= low
        self._block_tables[block][value] = entry
        return entry

    # ------------------------------------------------------------------
    def reset(self):
        """Return to the pre-input state (cycle 0 next).

        The step cache is deliberately *not* cleared: its entries
        depend only on the automaton, never on stream position.
        """
        self._active = 0
        self._cycle = 0
        self.active_count_history = self._new_history()

    def _new_history(self):
        """Fresh history container honoring ``history_limit``."""
        limit = self._history_limit
        return [] if limit is None else deque(maxlen=limit)

    @property
    def cycle(self):
        """Next cycle index to be executed."""
        return self._cycle

    def active_ids(self):
        """Ids of currently active states (after the last step)."""
        return [self._ids[i] for i in _iter_bits(self._active)]

    def step_cache_info(self):
        """Cache statistics: hits/misses since construction, size, limit."""
        lookups = self._cache_hits + self._cache_misses
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "hit_rate": self._cache_hits / lookups if lookups else 0.0,
            "size": len(self._step_cache) if self._step_cache is not None else 0,
            "limit": self._step_cache_limit,
        }

    def _propagate(self, active):
        """Successor-union of an active mask (start states excluded)."""
        enabled = 0
        if self.kernel == "sliced":
            tables = self._block_tables
            clear = self._block_clear
            while active:
                low = active & -active
                block = (low.bit_length() - 1) >> 3
                value = (active >> (block << 3)) & 0xFF
                entry = tables[block][value]
                if entry is None:
                    entry = self._fill_block_entry(block, value)
                enabled |= entry
                active &= clear[block]
        else:
            succ = self._succ_mask
            while active:
                low = active & -active
                enabled |= succ[low.bit_length() - 1]
                active ^= low
        return enabled

    def _enabled_from(self, active, phase):
        """Enabled mask as a pure function of ``(active, phase)``.

        ``phase`` is the step-key phase: 2 = start-of-data cycle (both
        start kinds self-enable), 1 = start-period boundary (all-input
        starts only), 0 = mid-period.  Pure in its arguments so batch
        lanes and shard replays — which never own ``self._cycle`` —
        share one transition function with the streaming path.
        """
        enabled = self._propagate(active)
        if phase:
            enabled |= self._all_input_mask
            if phase == 2:
                enabled |= self._start_of_data_mask
        return enabled

    def _enabled_mask(self):
        cycle = self._cycle
        phase = 2 if cycle == 0 else (1 if cycle % self._start_period == 0
                                      else 0)
        return self._enabled_from(self._active, phase)

    def match_mask(self, vector):
        """Bitmask of states whose symbols match ``vector``."""
        masks = self._match_masks
        try:
            result = masks[0][vector[0]]
            for position in range(1, len(vector)):
                result &= masks[position][vector[position]]
        except IndexError:
            raise SimulationError(
                "input vector %r out of range for %d-bit arity-%d automaton"
                % (vector, self.automaton.bits, self.automaton.arity)
            ) from None
        return result

    def _report_plan(self, reporting):
        """Decode a reporting mask into ((offset, state_id, code), ...).

        Cached alongside the next-active mask so hot (cached) cycles
        record reports with a direct loop instead of re-walking bits.
        """
        plan = []
        for index in _iter_bits(reporting):
            state_id, code, offsets = self._report_info[index]
            for offset in offsets:
                plan.append((offset, state_id, code))
        return tuple(plan)

    def _step_key(self, vector):
        """Memoization key for the next step on ``vector``.

        The phase component folds in everything :meth:`_enabled_mask`
        reads besides the active mask: 2 = start-of-data cycle, 1 =
        start-period boundary, 0 = mid-period cycle.
        """
        cycle = self._cycle
        phase = 2 if cycle == 0 else (1 if cycle % self._start_period == 0
                                      else 0)
        return (self._active,
                vector if type(vector) is tuple else tuple(vector),
                phase)

    def step(self, vector, recorder=None):
        """Advance one cycle on ``vector``; returns the active bitmask."""
        cache = self._step_cache
        plan = None
        if cache is not None:
            key = self._step_key(vector)
            cached = cache.get(key)
            if cached is not None:
                self._cache_hits += 1
                del cache[key]  # LRU touch: re-insert at the newest end
                cache[key] = cached
                active, plan = cached
            else:
                self._cache_misses += 1
                active = self._enabled_mask() & self.match_mask(vector)
                plan = self._report_plan(active & self._report_mask)
                if len(cache) >= self._step_cache_limit:
                    cache.pop(next(iter(cache)))  # evict least recent
                cache[key] = (active, plan)
        else:
            active = self._enabled_mask() & self.match_mask(vector)
            if active & self._report_mask:
                plan = self._report_plan(active & self._report_mask)
        self._active = active
        if plan and recorder is not None:
            base = self._cycle * self.automaton.arity
            for offset, state_id, code in plan:
                recorder.record(base + offset, self._cycle, state_id, code)
        if self._history_limit != 0:
            self.active_count_history.append(_popcount(active))
        self._cycle += 1
        return active

    def _execute(self, vectors, recorder):
        """The hot run loop: :meth:`step` semantics with hoisted locals.

        Bit-exact with calling :meth:`step` per vector (the differential
        suite pins this); the win is skipping per-cycle attribute and
        method lookups, and touching the LRU order only once the cache
        is past half capacity (eviction precision only matters when an
        eviction is actually near).
        """
        cache = self._step_cache
        if cache is None:
            for vector in vectors:
                self.step(vector, recorder)
            return
        limit = self._step_cache_limit
        touch_floor = limit >> 1
        period = self._start_period
        report_mask = self._report_mask
        arity = self.automaton.arity
        history = (self.active_count_history
                   if self._history_limit != 0 else None)
        popcount = _popcount
        cache_get = cache.get
        record = recorder.record if recorder is not None else None
        active = self._active
        cycle = self._cycle
        hits = misses = 0
        single_period = period == 1
        for vector in vectors:
            phase = (2 if cycle == 0 else
                     1 if single_period or cycle % period == 0 else 0)
            key = (active, vector, phase)
            cached = cache_get(key)
            if cached is None:
                misses += 1
                nxt = self._enabled_from(active, phase) & self.match_mask(vector)
                cached = (nxt, self._report_plan(nxt & report_mask))
                if len(cache) >= limit:
                    cache.pop(next(iter(cache)))
                cache[key] = cached
            else:
                hits += 1
                if len(cache) > touch_floor:
                    del cache[key]
                    cache[key] = cached
            active, plan = cached
            if plan and record is not None:
                base = cycle * arity
                for offset, state_id, code in plan:
                    record(base + offset, cycle, state_id, code)
            if history is not None:
                history.append(popcount(active))
            cycle += 1
        self._active = active
        self._cycle = cycle
        self._cache_hits += hits
        self._cache_misses += misses

    def run(self, stream, recorder=None, position_limit=None):
        """Execute a whole stream; returns the :class:`ReportRecorder` used.

        ``stream`` may be flat ints (arity 1) or vectors.  When ``recorder``
        is None a fresh one (with ``position_limit``) is created.
        """
        if recorder is None:
            recorder = ReportRecorder(position_limit=position_limit)
        if OBS.active:  # single attribute check when no collector attached
            return self._run_observed(stream, recorder)
        self.reset()
        self._execute(_normalize_stream(self.automaton, stream), recorder)
        return recorder

    def _run_observed(self, stream, recorder):
        """`run` with the telemetry hooks live (collector attached).

        Label children are pre-resolved once per process via
        ``engine_handles`` (the run-setup hoist): run hot paths never
        pay per-run ``labels(...)`` dictionary work again.
        """
        handles = OBS.instruments.engine_handles("bitset")
        reports_before = recorder.total_reports
        hits_before = self._cache_hits
        misses_before = self._cache_misses
        vectors = _normalize_stream(self.automaton, stream)
        with trace_span("engine.run", engine="bitset",
                        automaton=self.automaton.name,
                        cycles=len(vectors)):
            start = perf_counter()
            self.reset()
            # _execute keeps self._active/self._cycle across calls, so
            # slicing the stream is bit-exact with one big call; the
            # chunk boundary is where paper-scale runs report progress.
            total = len(vectors)
            if total > _PROGRESS_CHUNK:
                progress = ProgressReporter(
                    "simulate", total, detail=self.automaton.name)
                for begin in range(0, total, _PROGRESS_CHUNK):
                    self._execute(
                        vectors[begin:begin + _PROGRESS_CHUNK], recorder)
                    progress.update(begin + _PROGRESS_CHUNK)
                progress.finish()
            else:
                self._execute(vectors, recorder)
            elapsed = perf_counter() - start
        handles.runs.inc()
        handles.cycles.inc(len(vectors))
        handles.reports.inc(recorder.total_reports - reports_before)
        handles.run_seconds.observe(elapsed)
        handles.cache_hits.inc(self._cache_hits - hits_before)
        handles.cache_misses.inc(self._cache_misses - misses_before)
        observe_active = handles.active_states.observe
        for count in self.active_count_history:
            observe_active(count)
        return recorder

    # ------------------------------------------------------------------
    # Batched multi-stream execution
    # ------------------------------------------------------------------
    def run_batch(self, streams, recorders=None, position_limit=None,
                  batch_layout="auto"):
        """Drive N independent streams through the automaton in one pass.

        Each lane behaves exactly as a fresh :meth:`run` over its stream
        (the differential suite pins bit-exactness); lanes may have
        different lengths — exhausted lanes freeze while the rest
        continue.  The step cache is shared across lanes, so identical
        ``(active, vector, phase)`` work is paid once per batch instead
        of once per stream.  Returns the list of per-lane recorders;
        per-lane active-count histories land in ``self.lane_histories``
        and the engine's own streaming state is reset afterwards.

        ``batch_layout`` selects the active-mask representation (see
        :data:`BATCH_LAYOUTS`); ``"auto"`` picks the benchmarked winner.
        """
        layout = _resolve_layout(batch_layout)
        lane_vectors = [_normalize_stream(self.automaton, stream)
                        for stream in streams]
        if recorders is None:
            recorders = [ReportRecorder(position_limit=position_limit)
                         for _ in lane_vectors]
        elif len(recorders) != len(lane_vectors):
            raise SimulationError(
                "run_batch got %d recorders for %d streams"
                % (len(recorders), len(lane_vectors)))
        histories = (None if self._history_limit == 0
                     else [self._new_history() for _ in lane_vectors])
        if OBS.active:
            self._run_batch_observed(lane_vectors, recorders, layout,
                                     histories)
        else:
            self._execute_lanes(lane_vectors, recorders, layout,
                                histories=histories)
        self.lane_histories = histories if histories is not None else []
        self.reset()
        return recorders

    def _run_batch_observed(self, lane_vectors, recorders, layout,
                            histories):
        """`run_batch` with the telemetry hooks live."""
        handles = OBS.instruments.engine_handles("bitset")
        reports_before = sum(r.total_reports for r in recorders)
        total_cycles = sum(len(vectors) for vectors in lane_vectors)
        with trace_span("engine.run_batch", engine="bitset",
                        automaton=self.automaton.name,
                        lanes=len(lane_vectors), cycles=total_cycles,
                        layout=layout):
            start = perf_counter()
            lane_hits, lane_misses = self._execute_lanes(
                lane_vectors, recorders, layout, histories=histories)
            elapsed = perf_counter() - start
        # Lane-for-lane parity with N serial runs: counters move by the
        # same amounts a loop of run() calls would move them.
        handles.runs.inc(len(lane_vectors))
        handles.cycles.inc(total_cycles)
        handles.reports.inc(
            sum(r.total_reports for r in recorders) - reports_before)
        handles.run_seconds.observe(elapsed)
        handles.cache_hits.inc(sum(lane_hits))
        handles.cache_misses.inc(sum(lane_misses))
        handles.batch_lanes.observe(len(lane_vectors))
        handles.batch_lane_cache_hits.inc(sum(lane_hits))
        handles.batch_lane_cache_misses.inc(sum(lane_misses))
        if histories is not None:
            observe_active = handles.active_states.observe
            for history in histories:
                for count in history:
                    observe_active(count)

    def _execute_lanes(self, lane_vectors, recorders, layout,
                       start_cycles=None, record_from=None, histories=None):
        """The batched hot loop: N lanes, one shared step cache.

        ``start_cycles`` gives each lane's absolute first cycle (shard
        replays start mid-stream; phases derive from absolute cycles so
        start-period boundaries line up with the serial run) and
        ``record_from`` suppresses reports/history before a lane's true
        block start (warm-up cycles exist only to rebuild the active
        mask).  Returns per-lane ``(hits, misses)`` lists.
        """
        count = len(lane_vectors)
        if start_cycles is None:
            start_cycles = (0,) * count
        if record_from is None:
            record_from = start_cycles
        cache = self._step_cache
        limit = self._step_cache_limit
        touch_floor = limit >> 1
        period = self._start_period
        report_mask = self._report_mask
        arity = self.automaton.arity
        popcount = _popcount
        cache_get = cache.get if cache is not None else None
        enabled_from = self._enabled_from
        match_mask = self.match_mask
        report_plan = self._report_plan
        wide = 0
        stride = lane_mask = 0
        if layout == "wide":
            # Lane stride: state count padded to whole 8-bit blocks.
            stride = ((self._size + 7) & ~7) or 8
            lane_mask = (1 << self._size) - 1
        actives = [0] * count
        lane_hits = [0] * count
        lane_misses = [0] * count
        lane_lengths = [len(vectors) for vectors in lane_vectors]
        for index in range(max(lane_lengths, default=0)):
            for lane in range(count):
                if index >= lane_lengths[lane]:
                    continue
                vector = lane_vectors[lane][index]
                cycle = start_cycles[lane] + index
                phase = (2 if cycle == 0 else
                         1 if cycle % period == 0 else 0)
                if layout == "wide":
                    shift = lane * stride
                    active = (wide >> shift) & lane_mask
                else:
                    active = actives[lane]
                if cache is not None:
                    key = (active, vector, phase)
                    cached = cache_get(key)
                    if cached is None:
                        lane_misses[lane] += 1
                        nxt = enabled_from(active, phase) & match_mask(vector)
                        cached = (nxt, report_plan(nxt & report_mask))
                        if len(cache) >= limit:
                            cache.pop(next(iter(cache)))
                        cache[key] = cached
                    else:
                        lane_hits[lane] += 1
                        if len(cache) > touch_floor:
                            del cache[key]
                            cache[key] = cached
                    active, plan = cached
                else:
                    lane_misses[lane] += 1
                    active = enabled_from(active, phase) & match_mask(vector)
                    plan = (report_plan(active & report_mask)
                            if active & report_mask else ())
                if layout == "wide":
                    wide = (wide & ~(lane_mask << shift)) | (active << shift)
                else:
                    actives[lane] = active
                if cycle >= record_from[lane]:
                    if plan:
                        recorder = recorders[lane]
                        if recorder is not None:
                            base = cycle * arity
                            for offset, state_id, code in plan:
                                recorder.record(base + offset, cycle,
                                                state_id, code)
                    if histories is not None:
                        histories[lane].append(popcount(active))
        self._cache_hits += sum(lane_hits)
        self._cache_misses += sum(lane_misses)
        return lane_hits, lane_misses

    # ------------------------------------------------------------------
    # Sharded single-stream execution
    # ------------------------------------------------------------------
    def run_sharded(self, stream, shards, recorder=None, position_limit=None,
                    runner=None, interleave=True):
        """Split one stream into ``shards`` blocks and stitch the results.

        Every block after the first replays an *overlap prefix* of
        ``depth_bound()`` vectors from an empty active mask before its
        own range: a state at edge-distance ``d`` from a start only
        remembers ``d`` cycles of history, so the replayed active mask
        is exact by the block's first true cycle, and reports inside the
        overlap window are suppressed (they belong to the previous
        block).  The stitched recorder and active-count history are
        bit-exact with :meth:`run` — cyclic machines (``depth_bound()``
        is None) and degenerate splits fall back to it outright.

        ``runner`` fans blocks across a
        :class:`~repro.sim.parallel.ParallelRunner` pool (workers
        rebuild the engine from the pickled automaton); without one the
        blocks run in-process — ``interleave=True`` drives them as lanes
        of one batched pass sharing this engine's step cache,
        ``interleave=False`` replays them sequentially.

        ``shards="auto"`` sizes the split itself: the pool's worker
        count (or :data:`AUTO_SHARD_DEFAULT` in-process), falling back
        to the serial path outright below
        :data:`AUTO_SHARD_MIN_CYCLES` vectors — the regime where
        sharding is a documented pessimization.  The threshold is
        recorded on the ``engine.run_sharded`` span either way.
        """
        vectors = _normalize_stream(self.automaton, stream)
        if recorder is None:
            recorder = ReportRecorder(position_limit=position_limit)
        auto = shards == "auto"
        if auto:
            shards = self._auto_shards(len(vectors), runner)
        shards = max(1, min(int(shards), len(vectors)))
        depth = self.automaton.depth_bound()
        if shards <= 1 or depth is None:
            if auto:
                with trace_span("engine.run_sharded", engine="bitset",
                                automaton=self.automaton.name, shards=1,
                                depth_bound=depth, cycles=len(vectors),
                                auto_threshold=AUTO_SHARD_MIN_CYCLES,
                                fallback="serial"):
                    return self.run(vectors, recorder)
            return self.run(vectors, recorder)
        spans = _shard_spans(len(vectors), shards)
        blocks = [(vectors[max(0, start - depth):end],
                   max(0, start - depth), start)
                  for start, end in spans]
        if OBS.active:
            arity = self.automaton.arity
            overlap = OBS.instruments.shard_overlap_bytes
            for _, warm_start, start in blocks[1:]:
                overlap.observe((start - warm_start) * arity)
        with trace_span("engine.run_sharded", engine="bitset",
                        automaton=self.automaton.name, shards=shards,
                        depth_bound=depth, cycles=len(vectors),
                        auto_threshold=AUTO_SHARD_MIN_CYCLES):
            parts, histories = self._run_shard_blocks(
                blocks, recorder, runner, interleave)
        for part in parts:
            recorder.absorb(part)
        self.reset()
        if histories is not None:
            stitched = self.active_count_history
            for history in histories:
                stitched.extend(history)
        return recorder

    def _run_shard_blocks(self, blocks, recorder, runner, interleave):
        """Execute shard blocks; returns (part recorders, histories)."""
        keep_history = self._history_limit != 0
        if runner is not None and runner.workers > 1:
            jobs = [(self.automaton, self.kernel, self._step_cache_limit,
                     block_vectors, start_cycle, record_from,
                     recorder.keep_events, recorder.position_limit,
                     keep_history)
                    for block_vectors, start_cycle, record_from in blocks]
            outcomes = runner.map(_shard_job, jobs)
            parts = [ReportRecorder.from_payload(payload)
                     for payload, _ in outcomes]
            histories = ([history for _, history in outcomes]
                         if keep_history else None)
            return parts, histories
        parts = [ReportRecorder(keep_events=recorder.keep_events,
                                position_limit=recorder.position_limit)
                 for _ in blocks]
        histories = [[] for _ in blocks] if keep_history else None
        lane_vectors = [block_vectors for block_vectors, _, _ in blocks]
        start_cycles = [start_cycle for _, start_cycle, _ in blocks]
        record_from = [record for _, _, record in blocks]
        if interleave:
            self._execute_lanes(lane_vectors, parts, "lanes",
                                start_cycles=start_cycles,
                                record_from=record_from,
                                histories=histories)
        else:
            for index in range(len(blocks)):
                self._execute_lanes(
                    [lane_vectors[index]], [parts[index]], "lanes",
                    start_cycles=[start_cycles[index]],
                    record_from=[record_from[index]],
                    histories=[histories[index]] if histories else None)
        return parts, histories

    @staticmethod
    def _auto_shards(cycle_count, runner):
        """Shard count for ``shards="auto"`` (1 means run serial)."""
        if cycle_count < AUTO_SHARD_MIN_CYCLES:
            return 1
        if runner is not None and runner.workers > 1:
            return runner.workers
        return AUTO_SHARD_DEFAULT

    # ------------------------------------------------------------------
    # Prefilter-gated window execution
    # ------------------------------------------------------------------
    def run_windows(self, vectors, windows, recorder=None,
                    position_limit=None):
        """Execute only the given windows of one stream; returns the recorder.

        ``windows`` are ascending, disjoint ``(start, record_from,
        end)`` cycle triples from :func:`repro.prefilter.gate.
        plan_windows`: each runs as a lane from an empty active mask at
        absolute cycle ``start`` (phases align with the serial run) and
        suppresses reports before ``record_from`` — the same warm-up
        replay :meth:`run_sharded` uses, so provided ``record_from -
        start >= depth_bound()`` (or ``start == 0``) the recorded
        events are bit-exact with the corresponding slice of
        :meth:`run`.  Parts are stitched in window order, which is
        cycle order.  No active-count history is kept: a gated run
        skips most cycles, so per-cycle statistics would not be
        comparable with an ungated run's.
        """
        vectors = _normalize_stream(self.automaton, vectors)
        if recorder is None:
            recorder = ReportRecorder(position_limit=position_limit)
        if not windows:
            return recorder
        lane_vectors = [vectors[start:end] for start, _, end in windows]
        starts = [start for start, _, _ in windows]
        record_from = [record for _, record, _ in windows]
        return self.run_window_lanes(lane_vectors, starts, record_from,
                                     recorder, total_cycles=len(vectors))

    def run_window_lanes(self, lane_vectors, start_cycles, record_from,
                         recorder, total_cycles=None):
        """The lane-level form of :meth:`run_windows`.

        The gate calls this directly with window slices built by
        :func:`~repro.sim.inputs.stream_slice`, so a gated run never
        materializes the full vector stream — its Python-level work
        stays proportional to the windows, not the input length.
        """
        parts = [ReportRecorder(keep_events=recorder.keep_events,
                                position_limit=recorder.position_limit)
                 for _ in lane_vectors]
        if OBS.active:
            self._run_windows_observed(lane_vectors, parts, start_cycles,
                                       record_from, total_cycles)
        else:
            self._execute_lanes(lane_vectors, parts, "lanes",
                                start_cycles=start_cycles,
                                record_from=record_from)
        for part in parts:
            recorder.absorb(part)
        self.reset()
        return recorder

    def _run_windows_observed(self, lane_vectors, parts, starts,
                              record_from, total_cycles):
        """`run_windows` with the telemetry hooks live."""
        handles = OBS.instruments.engine_handles("bitset")
        executed = sum(len(vectors) for vectors in lane_vectors)
        if total_cycles is None:
            total_cycles = executed
        with trace_span("engine.run_windows", engine="bitset",
                        automaton=self.automaton.name,
                        windows=len(lane_vectors), cycles=executed,
                        total_cycles=total_cycles):
            start = perf_counter()
            lane_hits, lane_misses = self._execute_lanes(
                lane_vectors, parts, "lanes", start_cycles=starts,
                record_from=record_from)
            elapsed = perf_counter() - start
        handles.runs.inc()
        handles.cycles.inc(executed)
        handles.reports.inc(sum(part.total_reports for part in parts))
        handles.run_seconds.observe(elapsed)
        handles.cache_hits.inc(sum(lane_hits))
        handles.cache_misses.inc(sum(lane_misses))


class NaiveEngine:
    """Reference set-based simulator (slow, obviously-correct)."""

    def __init__(self, automaton):
        automaton.validate()
        self.automaton = automaton
        self.reset()

    def reset(self):
        """Return to the pre-input state (cycle 0 next)."""
        self._active = set()
        self._cycle = 0

    def active_ids(self):
        """Ids of currently active states (after the last step)."""
        return sorted(self._active)

    def step(self, vector, recorder=None):
        """Advance one cycle on ``vector``; returns the active id set."""
        automaton = self.automaton
        enabled = set()
        for state_id in self._active:
            enabled |= automaton.successors(state_id)
        for state in automaton:
            if state.start is StartKind.ALL_INPUT:
                if self._cycle % automaton.start_period == 0:
                    enabled.add(state.id)
            elif state.start is StartKind.START_OF_DATA and self._cycle == 0:
                enabled.add(state.id)
        active = {
            state_id for state_id in enabled
            if automaton.state(state_id).matches(vector)
        }
        if recorder is not None:
            base = self._cycle * automaton.arity
            for state_id in active:
                state = automaton.state(state_id)
                if state.report:
                    for offset in state.report_offsets:
                        recorder.record(
                            base + offset, self._cycle, state_id, state.report_code
                        )
        self._active = active
        self._cycle += 1
        return active

    def run(self, stream, recorder=None, position_limit=None):
        """Execute a whole stream; mirrors :meth:`BitsetEngine.run`."""
        if recorder is None:
            recorder = ReportRecorder(position_limit=position_limit)
        self.reset()
        for vector in _normalize_stream(self.automaton, stream):
            self.step(vector, recorder)
        return recorder


def _shard_spans(total, shards):
    """Near-equal ``[start, end)`` block boundaries covering ``total``."""
    return [(index * total // shards, (index + 1) * total // shards)
            for index in range(shards)]


def _shard_job(job):
    """Replay one shard block in a pool worker.

    Module-level so :class:`~repro.sim.parallel.ParallelRunner` can
    pickle it; the worker rebuilds a private engine from the shipped
    automaton (step-cache state does not cross processes).  Returns
    ``(recorder_payload, history_list)``.
    """
    (automaton, kernel, step_cache, vectors, start_cycle, record_from,
     keep_events, position_limit, keep_history) = job
    engine = BitsetEngine(automaton, kernel=kernel, step_cache=step_cache,
                          history_limit=0)
    part = ReportRecorder(keep_events=keep_events,
                          position_limit=position_limit)
    history = [] if keep_history else None
    engine._execute_lanes(
        [vectors], [part], "lanes",
        start_cycles=[start_cycle], record_from=[record_from],
        histories=[history] if keep_history else None)
    return part.to_payload(), history


def _normalize_stream(automaton, stream):
    """Turn a flat or vector stream into tuples of the automaton's arity."""
    vectors = []
    for item in stream:
        if isinstance(item, int):
            item = (item,)
        else:
            item = tuple(item)
        if len(item) != automaton.arity:
            raise SimulationError(
                "input vector %r does not match automaton arity %d"
                % (item, automaton.arity)
            )
        vectors.append(item)
    return vectors


def _iter_bits(mask):
    """Yield the indices of set bits in ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


try:
    _popcount = int.bit_count  # Python >= 3.10: C-speed population count
except AttributeError:  # pragma: no cover - exercised on older interpreters
    def _popcount(mask):
        return bin(mask).count("1")
