"""Functional NFA execution engines.

Two engines with identical semantics:

- :class:`BitsetEngine` — production engine.  The active-state set is a
  Python int used as a bitmask, per-(position, symbol) match masks are
  precomputed, and successor masks are ORed per active state.  This mirrors
  how the hardware computes ``active = enabled AND match`` each cycle.
- :class:`NaiveEngine` — direct set-of-states implementation kept as a
  differential-testing oracle.

Cycle semantics (matching VASim and the paper's Figure 1):

1. ``enabled(t) = successors(active(t-1)) | all-input starts (if t is a
   start-period boundary) | start-of-data starts (if t == 0)``
2. ``active(t) = {q in enabled(t) : input(t) matches q.symbols}``
3. every active reporting state emits one report per report offset.
"""

from time import perf_counter

from ..errors import SimulationError
from ..automata.ste import StartKind
from ..obs import OBS, trace_span
from .reports import ReportRecorder


def _normalize_stream(automaton, stream):
    """Turn a flat or vector stream into tuples of the automaton's arity."""
    vectors = []
    for item in stream:
        if isinstance(item, int):
            item = (item,)
        else:
            item = tuple(item)
        if len(item) != automaton.arity:
            raise SimulationError(
                "input vector %r does not match automaton arity %d"
                % (item, automaton.arity)
            )
        vectors.append(item)
    return vectors


class BitsetEngine:
    """Bitmask-based cycle-accurate simulator for one automaton.

    The engine is reusable: call :meth:`run` for whole streams, or
    :meth:`reset` + :meth:`step` for streaming use.
    """

    def __init__(self, automaton):
        automaton.validate()
        self.automaton = automaton
        self._ids = automaton.state_ids()
        self._index = {state_id: i for i, state_id in enumerate(self._ids)}
        size = len(self._ids)
        self._size = size

        self._succ_mask = [0] * size
        for src, dst in automaton.transitions():
            self._succ_mask[self._index[src]] |= 1 << self._index[dst]

        self._all_input_mask = 0
        self._start_of_data_mask = 0
        self._report_mask = 0
        self._report_info = {}
        for state in automaton:
            bit = 1 << self._index[state.id]
            if state.start is StartKind.ALL_INPUT:
                self._all_input_mask |= bit
            elif state.start is StartKind.START_OF_DATA:
                self._start_of_data_mask |= bit
            if state.report:
                self._report_mask |= bit
                self._report_info[self._index[state.id]] = (
                    state.id, state.report_code, state.report_offsets,
                )

        alphabet = 1 << automaton.bits
        self._match_masks = [[0] * alphabet for _ in range(automaton.arity)]
        for state in automaton:
            bit = 1 << self._index[state.id]
            for position, sset in enumerate(state.symbols):
                column = self._match_masks[position]
                for value in sset:
                    column[value] |= bit

        self.reset()

    # ------------------------------------------------------------------
    def reset(self):
        """Return to the pre-input state (cycle 0 next)."""
        self._active = 0
        self._cycle = 0
        self.active_count_history = []

    @property
    def cycle(self):
        """Next cycle index to be executed."""
        return self._cycle

    def active_ids(self):
        """Ids of currently active states (after the last step)."""
        return [self._ids[i] for i in _iter_bits(self._active)]

    def _enabled_mask(self):
        enabled = 0
        active = self._active
        succ = self._succ_mask
        while active:
            low = active & -active
            enabled |= succ[low.bit_length() - 1]
            active ^= low
        if self._cycle % self.automaton.start_period == 0:
            enabled |= self._all_input_mask
        if self._cycle == 0:
            enabled |= self._start_of_data_mask
        return enabled

    def match_mask(self, vector):
        """Bitmask of states whose symbols match ``vector``."""
        masks = self._match_masks
        try:
            result = masks[0][vector[0]]
            for position in range(1, len(vector)):
                result &= masks[position][vector[position]]
        except IndexError:
            raise SimulationError(
                "input vector %r out of range for %d-bit arity-%d automaton"
                % (vector, self.automaton.bits, self.automaton.arity)
            ) from None
        return result

    def step(self, vector, recorder=None):
        """Advance one cycle on ``vector``; returns the active bitmask."""
        enabled = self._enabled_mask()
        active = enabled & self.match_mask(vector)
        self._active = active
        reporting = active & self._report_mask
        if reporting and recorder is not None:
            arity = self.automaton.arity
            base = self._cycle * arity
            for index in _iter_bits(reporting):
                state_id, code, offsets = self._report_info[index]
                for offset in offsets:
                    recorder.record(base + offset, self._cycle, state_id, code)
        self.active_count_history.append(_popcount(active))
        self._cycle += 1
        return active

    def run(self, stream, recorder=None, position_limit=None):
        """Execute a whole stream; returns the :class:`ReportRecorder` used.

        ``stream`` may be flat ints (arity 1) or vectors.  When ``recorder``
        is None a fresh one (with ``position_limit``) is created.
        """
        if recorder is None:
            recorder = ReportRecorder(position_limit=position_limit)
        if OBS.active:  # single attribute check when no collector attached
            return self._run_observed(stream, recorder)
        self.reset()
        for vector in _normalize_stream(self.automaton, stream):
            self.step(vector, recorder)
        return recorder

    def _run_observed(self, stream, recorder):
        """`run` with the telemetry hooks live (collector attached)."""
        instruments = OBS.instruments
        reports_before = recorder.total_reports
        vectors = _normalize_stream(self.automaton, stream)
        with trace_span("engine.run", engine="bitset",
                        automaton=self.automaton.name,
                        cycles=len(vectors)):
            start = perf_counter()
            self.reset()
            for vector in vectors:
                self.step(vector, recorder)
            elapsed = perf_counter() - start
        instruments.engine_runs.labels(engine="bitset").inc()
        instruments.engine_cycles.labels(engine="bitset").inc(len(vectors))
        instruments.engine_reports.labels(engine="bitset").inc(
            recorder.total_reports - reports_before)
        instruments.engine_run_seconds.labels(engine="bitset").observe(elapsed)
        active_histogram = instruments.engine_active_states.labels(
            engine="bitset")
        for count in self.active_count_history:
            active_histogram.observe(count)
        return recorder


class NaiveEngine:
    """Reference set-based simulator (slow, obviously-correct)."""

    def __init__(self, automaton):
        automaton.validate()
        self.automaton = automaton
        self.reset()

    def reset(self):
        """Return to the pre-input state (cycle 0 next)."""
        self._active = set()
        self._cycle = 0

    def active_ids(self):
        """Ids of currently active states (after the last step)."""
        return sorted(self._active)

    def step(self, vector, recorder=None):
        """Advance one cycle on ``vector``; returns the active id set."""
        automaton = self.automaton
        enabled = set()
        for state_id in self._active:
            enabled |= automaton.successors(state_id)
        for state in automaton:
            if state.start is StartKind.ALL_INPUT:
                if self._cycle % automaton.start_period == 0:
                    enabled.add(state.id)
            elif state.start is StartKind.START_OF_DATA and self._cycle == 0:
                enabled.add(state.id)
        active = {
            state_id for state_id in enabled
            if automaton.state(state_id).matches(vector)
        }
        if recorder is not None:
            base = self._cycle * automaton.arity
            for state_id in active:
                state = automaton.state(state_id)
                if state.report:
                    for offset in state.report_offsets:
                        recorder.record(
                            base + offset, self._cycle, state_id, state.report_code
                        )
        self._active = active
        self._cycle += 1
        return active

    def run(self, stream, recorder=None, position_limit=None):
        """Execute a whole stream; mirrors :meth:`BitsetEngine.run`."""
        if recorder is None:
            recorder = ReportRecorder(position_limit=position_limit)
        self.reset()
        for vector in _normalize_stream(self.automaton, stream):
            self.step(vector, recorder)
        return recorder


def _iter_bits(mask):
    """Yield the indices of set bits in ``mask``, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _popcount(mask):
    return bin(mask).count("1")
