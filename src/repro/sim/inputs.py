"""Input stream conversion between byte, nibble, and strided-vector domains.

The nibble transformation (paper Section 4) changes the *input* alphabet as
well as the automaton: a byte stream becomes a nibble stream (high nibble
first, matching FlexAmata's big-endian bit ordering), and temporal striding
groups consecutive nibbles into fixed-arity vectors, padding the tail.
"""

from ..errors import SimulationError

#: Pad value appended when the stream length is not a multiple of the
#: stride.  Any value works because pad-position reports are filtered by
#: position; zero matches the paper's "concatenated with all zeros".
PAD_NIBBLE = 0


def bytes_to_nibbles(data):
    """Split each byte into (high, low) nibbles, high nibble first."""
    nibbles = []
    for value in data:
        if not 0 <= value <= 0xFF:
            raise SimulationError("byte value %r out of range" % (value,))
        nibbles.append(value >> 4)
        nibbles.append(value & 0xF)
    return nibbles


def nibbles_to_bytes(nibbles):
    """Inverse of :func:`bytes_to_nibbles`; length must be even."""
    if len(nibbles) % 2 != 0:
        raise SimulationError("nibble stream has odd length %d" % len(nibbles))
    return bytes(
        (nibbles[index] << 4) | nibbles[index + 1]
        for index in range(0, len(nibbles), 2)
    )


def vectorize(symbols, arity, pad=PAD_NIBBLE):
    """Group a flat symbol stream into arity-sized tuples, padding the tail.

    Returns ``(vectors, original_length)`` where ``original_length`` is the
    pre-padding symbol count — callers pass it to the report recorder's
    ``position_limit`` so pad-position reports are discarded.
    """
    if arity < 1:
        raise SimulationError("arity must be positive")
    symbols = list(symbols)
    original_length = len(symbols)
    remainder = original_length % arity
    if remainder:
        symbols.extend([pad] * (arity - remainder))
    vectors = [
        tuple(symbols[index:index + arity])
        for index in range(0, len(symbols), arity)
    ]
    return vectors, original_length


def stream_for(automaton, data):
    """Convert a byte string into the stream shape ``automaton`` consumes.

    Returns ``(vectors, position_limit)``:

    - 8-bit arity-1 automata consume the bytes directly;
    - 4-bit automata consume nibbles, grouped into arity-sized vectors.

    ``position_limit`` is in the automaton's sub-symbol units and already
    accounts for padding.
    """
    if automaton.bits == 8:
        if automaton.arity != 1:
            raise SimulationError("strided 8-bit automata are not modelled")
        return [(value,) for value in data], len(data)
    if automaton.bits == 4:
        nibbles = bytes_to_nibbles(data)
        vectors, original_length = vectorize(nibbles, automaton.arity)
        return vectors, original_length
    raise SimulationError(
        "no byte-stream conversion for %d-bit automata" % automaton.bits
    )


def nibble_position_to_byte(position):
    """Map a nibble-stream report position back to its byte index."""
    return position // 2


def stream_shape(automaton, data):
    """``(cycle_count, position_limit)`` of :func:`stream_for` — without
    materializing the vectors.

    The prefilter gate plans its replay windows from the stream *shape*
    alone; on a quiet stream the vectors themselves are never built
    (that per-byte Python work would dominate a gated run).
    """
    if automaton.bits == 8:
        if automaton.arity != 1:
            raise SimulationError("strided 8-bit automata are not modelled")
        return len(data), len(data)
    if automaton.bits == 4:
        nibbles = 2 * len(data)
        arity = automaton.arity
        return (nibbles + arity - 1) // arity, nibbles
    raise SimulationError(
        "no byte-stream conversion for %d-bit automata" % automaton.bits
    )


def stream_slice(automaton, data, start_cycle, end_cycle):
    """Vectors for cycles ``[start_cycle, end_cycle)`` of the stream.

    Equal to ``stream_for(automaton, data)[0][start_cycle:end_cycle]``,
    but touches only the bytes those cycles consume — the gate's window
    replays stay proportional to the windows, not the stream.
    """
    if automaton.bits == 8:
        if automaton.arity != 1:
            raise SimulationError("strided 8-bit automata are not modelled")
        return [(value,) for value in data[start_cycle:end_cycle]]
    if automaton.bits != 4:
        raise SimulationError(
            "no byte-stream conversion for %d-bit automata" % automaton.bits
        )
    arity = automaton.arity
    total_nibbles = 2 * len(data)
    total_cycles = (total_nibbles + arity - 1) // arity
    end_cycle = min(end_cycle, total_cycles)
    if start_cycle >= end_cycle:
        return []
    first_nibble = start_cycle * arity
    last_nibble = end_cycle * arity  # exclusive; may run into padding
    chunk = bytes_to_nibbles(
        data[first_nibble // 2:(min(last_nibble, total_nibbles) + 1) // 2])
    offset = first_nibble % 2
    nibbles = chunk[offset:offset + (last_nibble - first_nibble)]
    pad = (last_nibble - first_nibble) - len(nibbles)
    if pad:
        nibbles.extend([PAD_NIBBLE] * pad)
    return [tuple(nibbles[index:index + arity])
            for index in range(0, len(nibbles), arity)]
