"""Parallel experiment fan-out built on :mod:`concurrent.futures`.

The experiment harnesses (Table 1/3/4, Figures 8-10) evaluate one
benchmark or sweep point at a time, and every evaluation is a pure
function of a small picklable job spec (benchmark name, scale, seed,
...).  :class:`ParallelRunner` fans those jobs out across a process
pool while keeping the contract the tables rely on:

- **deterministic ordering** — results come back in job order
  regardless of completion order, so rendered tables are byte-identical
  at any worker count;
- **picklable job specs** — workers regenerate workloads from the spec,
  so nothing heavyweight crosses the process boundary;
- **graceful serial fallback** — ``workers=1`` (the default), an
  unpicklable function/job, or a broken/unavailable pool all degrade to
  an in-process loop with identical results.

Telemetry: when a collector is attached in the *parent* process the
runner records ``repro_parallel_jobs_total{mode=serial|process}``,
``repro_parallel_job_seconds{mode}`` (per-job wall time, so pool
imbalance is visible), and ``repro_parallel_workers``.  On the pool
path each job additionally runs under :mod:`repro.obs.fleet` capture:
workers snapshot their own registry and span buffer per job and ship
them back in result envelopes, which the parent merges in job order —
so a ``--workers N`` profile aggregates worker-side engine/device/
transform metrics and stitches worker spans under the ``parallel.map``
span (see docs/observability.md for the merge semantics).
"""

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter

from ..errors import SimulationError
from ..obs import OBS, fleet, trace_span

#: Errors that mean "the pool cannot run this", not "the job failed".
_FALLBACK_ERRORS = (pickle.PicklingError, AttributeError, TypeError,
                    BrokenProcessPool, OSError, RuntimeError)


def default_workers():
    """Worker count used for ``workers=0`` ("all cores")."""
    return os.cpu_count() or 1


def _initialize_worker(cache_directory, artifact_directory=None):
    """Process-pool initializer: point the worker's transform cache and
    stage-graph artifact store at the parent's directories so workers
    share compiled automata and stage artifacts through the disk tiers
    instead of recomputing per process."""
    from ..obs import OBS, detach
    from ..runtime.store import configure as configure_store
    from ..transform.cache import configure

    configure(directory=cache_directory)
    configure_store(directory=artifact_directory)
    # Under fork the child inherits the parent's attached collector; a
    # worker recording into that forked copy would lose every sample, so
    # start blind and let fleet capture attach per job.
    if OBS.active:
        detach()


class ParallelRunner:
    """Deterministic-order parallel ``map`` with serial fallback.

    Parameters
    ----------
    workers:
        ``1`` runs serially in-process (no pool, no pickling), ``N > 1``
        uses a process pool of up to ``N`` workers, and ``0`` means
        "one worker per CPU core".
    chunksize:
        Forwarded to ``ProcessPoolExecutor.map``; raise it for many
        tiny jobs to amortize IPC.  ``None`` (the default) picks
        ``max(1, jobs // (4 * workers))`` per map call — about four
        chunks per worker, enough slack for the pool to rebalance
        uneven jobs while still batching tiny ones.
    """

    def __init__(self, workers=1, chunksize=None):
        if workers is None:
            workers = 1
        if workers < 0:
            raise SimulationError("workers must be >= 0 (0 = all cores)")
        if chunksize is not None and chunksize < 1:
            raise SimulationError("chunksize must be >= 1 (None = auto)")
        self.workers = default_workers() if workers == 0 else workers
        self.chunksize = chunksize

    def _resolve_chunksize(self, jobs, pool_workers):
        """The explicit chunksize, or the auto heuristic for this map."""
        if self.chunksize is not None:
            return self.chunksize
        return max(1, jobs // (4 * pool_workers))

    def map(self, func, jobs):
        """``[func(job) for job in jobs]``, possibly across processes.

        ``func`` must be a module-level callable and each job spec
        picklable for the pool path; anything else silently degrades to
        the serial path.  Results preserve job order.  Exceptions raised
        by ``func`` itself propagate (after at most one serial retry
        when they surfaced through the pool machinery).
        """
        jobs = list(jobs)
        mode = "serial"
        results = None
        pool_workers = min(self.workers, len(jobs)) if jobs else 1
        if pool_workers > 1:
            from ..runtime.store import get_store
            from ..transform.cache import get_cache
            cache_directory = get_cache().directory
            artifact_directory = get_store().directory
            chunksize = self._resolve_chunksize(len(jobs), pool_workers)
            with trace_span("parallel.map", workers=pool_workers,
                            jobs=len(jobs), chunksize=chunksize) as span:
                capture = OBS.active
                try:
                    with ProcessPoolExecutor(
                            max_workers=pool_workers,
                            initializer=_initialize_worker,
                            initargs=(cache_directory,
                                      artifact_directory)) as pool:
                        if capture:
                            payloads = fleet.observed_jobs(
                                func, jobs, context=span.context,
                                capture_spans=OBS.trace is not None)
                            outcomes = list(pool.map(
                                fleet.run_observed_job, payloads,
                                chunksize=chunksize))
                            results = [result for result, _ in outcomes]
                            fleet.merge_envelopes(
                                envelope for _, envelope in outcomes)
                        else:
                            results = list(pool.map(
                                func, jobs, chunksize=chunksize))
                    mode = "process"
                except _FALLBACK_ERRORS:
                    results = None  # degrade to the serial path below
        if results is None:
            with trace_span("parallel.map", workers=1, jobs=len(jobs)):
                results = self._run_serial(func, jobs)
        self._record(mode, len(jobs), pool_workers if mode == "process" else 1)
        return results

    @staticmethod
    def _run_serial(func, jobs):
        """In-process loop; times each job when a collector is attached."""
        if not OBS.active:
            return [func(job) for job in jobs]
        observe = OBS.instruments.parallel_job_seconds.labels(
            mode="serial").observe
        results = []
        for job in jobs:
            start = perf_counter()
            results.append(func(job))
            observe(perf_counter() - start)
        return results

    @staticmethod
    def _record(mode, jobs, workers):
        if not OBS.active:
            return
        instruments = OBS.instruments
        instruments.parallel_jobs.labels(mode=mode).inc(jobs)
        instruments.parallel_workers.set(workers)


def parallel_map(func, jobs, workers=1, chunksize=None):
    """One-shot convenience wrapper around :class:`ParallelRunner`."""
    return ParallelRunner(workers=workers, chunksize=chunksize).map(func, jobs)
