"""Report events and recorders for automata simulation.

A *report* is the architectural event the whole paper is about: a reporting
STE matched, and (position, which-state) must reach the host.  The recorder
keeps both the raw event list and the per-cycle aggregates that drive the
reporting-architecture models (Table 1's dynamic columns, the AP buffer
model, and Sunder's in-subarray reporting region).
"""

from collections import Counter

from ..errors import ArtifactError

#: Versioned serialization identifiers for recorder payloads (consumed
#: by the stage-graph runtime's artifact store).
PAYLOAD_FORMAT = "repro-report-stream"
PAYLOAD_VERSION = 1


class ReportEvent:
    """One report occurrence.

    Attributes
    ----------
    position:
        Index in *sub-symbol* units from the start of the stream (for a
        nibble automaton this counts nibbles, for a byte automaton bytes).
    cycle:
        The vector cycle in which the event fired (``position // arity``).
    state_id / report_code:
        Identity of the reporting STE and its stable report code.
    """

    __slots__ = ("position", "cycle", "state_id", "report_code")

    def __init__(self, position, cycle, state_id, report_code):
        self.position = position
        self.cycle = cycle
        self.state_id = state_id
        self.report_code = report_code

    def key(self):
        """(position, report_code) pair used for equivalence checking."""
        return (self.position, self.report_code)

    def to_record(self):
        """Compact JSON-serializable form (see :meth:`from_record`)."""
        return [self.position, self.cycle, self.state_id, self.report_code]

    @classmethod
    def from_record(cls, record):
        """Rebuild an event from :meth:`to_record` output."""
        position, cycle, state_id, report_code = record
        return cls(position, cycle, state_id, report_code)

    def __repr__(self):
        return "ReportEvent(pos=%d, cycle=%d, state=%r, code=%r)" % (
            self.position, self.cycle, self.state_id, self.report_code,
        )

    def __eq__(self, other):
        return (
            isinstance(other, ReportEvent)
            and self.position == other.position
            and self.state_id == other.state_id
            and self.report_code == other.report_code
        )

    def __hash__(self):
        return hash((self.position, self.state_id, self.report_code))


class ReportRecorder:
    """Accumulates report events and per-cycle statistics.

    Parameters
    ----------
    keep_events:
        When False, only aggregates are kept — useful for long streams where
        the event list itself would dominate memory.
    position_limit:
        Events at or beyond this sub-symbol position are dropped.  The
        striding transformation pads the final input vector; reports that
        fire on pad positions are artifacts and must be filtered.
    """

    def __init__(self, keep_events=True, position_limit=None):
        self.keep_events = keep_events
        self.position_limit = position_limit
        self.events = []
        self.reports_per_cycle = Counter()
        self.total_reports = 0

    def record(self, position, cycle, state_id, report_code):
        """Log one report occurrence."""
        if self.position_limit is not None and position >= self.position_limit:
            return
        self.total_reports += 1
        self.reports_per_cycle[cycle] += 1
        if self.keep_events:
            self.events.append(ReportEvent(position, cycle, state_id, report_code))

    def absorb(self, other):
        """Fold another recorder's events and aggregates into this one.

        Events and per-cycle counts are appended in ``other``'s own
        order, so stitching shard recorders in block order reproduces
        the serial run's recorder exactly (the differential suite pins
        payload-level identity).  ``other``'s events must already
        respect this recorder's ``position_limit`` — shard executions
        build their block recorders with the target's parameters.
        """
        self.total_reports += other.total_reports
        per_cycle = self.reports_per_cycle
        for cycle, count in other.reports_per_cycle.items():
            per_cycle[cycle] += count
        if self.keep_events:
            self.events.extend(other.events)
        return self

    # ------------------------------------------------------------------
    @property
    def report_cycles(self):
        """Number of cycles in which at least one report fired."""
        return len(self.reports_per_cycle)

    def max_reports_in_a_cycle(self):
        """Burstiness: the largest per-cycle report count."""
        return max(self.reports_per_cycle.values()) if self.reports_per_cycle else 0

    def event_keys(self):
        """Set of (position, report_code) pairs (requires keep_events)."""
        return {event.key() for event in self.events}

    def positions(self):
        """Sorted distinct report positions (requires keep_events)."""
        return sorted({event.position for event in self.events})

    def cycle_profile(self, total_cycles):
        """Per-cycle report counts as a list of ints of length total_cycles.

        This is the exact input the reporting-architecture models consume:
        element ``t`` is the number of reports generated in cycle ``t``.
        """
        profile = [0] * total_cycles
        for cycle, count in self.reports_per_cycle.items():
            if cycle < total_cycles:
                profile[cycle] = count
        return profile

    # ------------------------------------------------------------------
    # Versioned serialization (artifact-store payloads)
    # ------------------------------------------------------------------
    def to_payload(self):
        """Versioned JSON-serializable dict capturing the full recorder.

        Event order, per-cycle aggregate insertion order, and the
        recording parameters all round-trip exactly through
        :meth:`from_payload`, so a replayed recorder drives the
        reporting-architecture models identically to the original.
        """
        return {
            "format": PAYLOAD_FORMAT,
            "version": PAYLOAD_VERSION,
            "keep_events": self.keep_events,
            "position_limit": self.position_limit,
            "total_reports": self.total_reports,
            "reports_per_cycle": [
                [cycle, count]
                for cycle, count in self.reports_per_cycle.items()
            ],
            "events": [event.to_record() for event in self.events],
        }

    @classmethod
    def from_payload(cls, payload):
        """Rebuild a recorder from a :meth:`to_payload` dict.

        Raises :class:`~repro.errors.ArtifactError` on any malformed or
        version-mismatched payload, so the artifact store can treat
        corruption as a recoverable miss.
        """
        try:
            if payload.get("format") != PAYLOAD_FORMAT:
                raise ArtifactError(
                    "unknown report-stream format %r" % (payload.get("format"),))
            if payload.get("version") != PAYLOAD_VERSION:
                raise ArtifactError(
                    "unsupported report-stream version %r"
                    % (payload.get("version"),))
            recorder = cls(keep_events=bool(payload["keep_events"]),
                           position_limit=payload["position_limit"])
            recorder.total_reports = int(payload["total_reports"])
            for cycle, count in payload["reports_per_cycle"]:
                recorder.reports_per_cycle[cycle] = count
            recorder.events = [ReportEvent.from_record(record)
                               for record in payload["events"]]
        except ArtifactError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise ArtifactError("malformed report-stream payload: %s" % error)
        return recorder

    def summary(self, total_cycles):
        """Table 1's dynamic columns for this run."""
        report_cycles = self.report_cycles
        return {
            "reports": self.total_reports,
            "report_cycles": report_cycles,
            "reports_per_cycle": (
                self.total_reports / total_cycles if total_cycles else 0.0
            ),
            "reports_per_report_cycle": (
                self.total_reports / report_cycles if report_cycles else 0.0
            ),
            "report_cycle_pct": (
                100.0 * report_cycles / total_cycles if total_cycles else 0.0
            ),
        }
