"""Reporting-behaviour statistics — the columns of the paper's Table 1.

Given an automaton and a simulated run, these helpers compute the static
columns (#states, #report states, report-state %) and dynamic columns
(#reports, #report cycles, reports/cycle, reports/report-cycle, and
report-cycle %) exactly as the paper defines them.
"""

from .engine import BitsetEngine
from .reports import ReportRecorder


def static_statistics(automaton):
    """Table 1 static columns for one automaton."""
    n_states = len(automaton)
    n_report = len(automaton.report_states())
    return {
        "states": n_states,
        "report_states": n_report,
        "report_state_pct": (100.0 * n_report / n_states) if n_states else 0.0,
    }


def dynamic_statistics(automaton, stream, position_limit=None, keep_events=False):
    """Table 1 dynamic columns from actually simulating ``stream``.

    Returns the recorder summary plus ``cycles`` (the stream length in
    vector cycles) and the recorder itself for downstream models.
    """
    engine = BitsetEngine(automaton)
    recorder = ReportRecorder(keep_events=keep_events, position_limit=position_limit)
    stream = list(stream)
    engine.run(stream, recorder)
    cycles = len(stream)
    result = recorder.summary(cycles)
    result["cycles"] = cycles
    result["recorder"] = recorder
    result["max_active_states"] = (
        max(engine.active_count_history) if engine.active_count_history else 0
    )
    result["avg_active_states"] = (
        sum(engine.active_count_history) / cycles if cycles else 0.0
    )
    return result


def reporting_behavior(automaton, stream, position_limit=None):
    """Full Table 1 row (static + dynamic) for one automaton and stream."""
    row = {"benchmark": automaton.name}
    row.update(static_statistics(automaton))
    dynamic = dynamic_statistics(automaton, stream, position_limit=position_limit)
    recorder = dynamic.pop("recorder")
    row.update(dynamic)
    row["recorder"] = recorder
    return row
