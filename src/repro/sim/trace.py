"""Execution tracing: per-cycle visibility into a running automaton.

Wraps :class:`~repro.sim.engine.BitsetEngine` and records, per cycle, the
input vector, the active state ids, and any reports — the debugging view
VASim provides with its ``--debug`` flag.  Traces render as aligned text
or export as structured dicts for programmatic analysis.

Long streams need not store every cycle: ``Tracer(machine,
max_cycles=N)`` keeps only the last ``N`` records in a ring buffer, and
``Tracer(machine, on_cycle=fn)`` streams each :class:`CycleTrace` to the
callback instead of storing it (combine both to also keep the tail).
"""

from collections import deque

from .engine import BitsetEngine
from .reports import ReportRecorder


class CycleTrace:
    """One cycle of execution."""

    __slots__ = ("cycle", "vector", "active", "reports")

    def __init__(self, cycle, vector, active, reports):
        self.cycle = cycle
        self.vector = vector
        self.active = active
        self.reports = reports

    def as_dict(self):
        """Plain-dict form for JSON export."""
        return {
            "cycle": self.cycle,
            "vector": list(self.vector),
            "active": list(self.active),
            "reports": [
                {"state": state_id, "code": code}
                for state_id, code in self.reports
            ],
        }


class Tracer:
    """Run an automaton while capturing a full execution trace.

    By default every cycle is stored (memory-hungry: one record per
    cycle, fine for debugging runs).  For long/benchmark streams pass
    ``max_cycles`` to keep only the most recent records in a ring
    buffer, and/or ``on_cycle`` — a callable receiving each
    :class:`CycleTrace` as it happens.  In callback-only mode
    (``on_cycle`` set, ``max_cycles`` unset) nothing is stored at all.
    """

    def __init__(self, automaton, max_cycles=None, on_cycle=None):
        if max_cycles is not None and max_cycles < 1:
            raise ValueError("max_cycles must be a positive integer")
        self.automaton = automaton
        self.engine = BitsetEngine(automaton)
        self.max_cycles = max_cycles
        self.on_cycle = on_cycle
        #: Total cycles executed by the last run (>= len(cycles)).
        self.cycles_seen = 0
        self.cycles = self._new_storage()

    def _new_storage(self):
        if self.max_cycles is not None:
            return deque(maxlen=self.max_cycles)
        return []

    @property
    def _storing(self):
        return self.max_cycles is not None or self.on_cycle is None

    def run(self, stream, position_limit=None):
        """Execute ``stream``; returns the report recorder."""
        recorder = ReportRecorder(position_limit=position_limit)
        self.engine.reset()
        self.cycles = self._new_storage()
        self.cycles_seen = 0
        storing = self._storing
        for raw in stream:
            vector = (raw,) if isinstance(raw, int) else tuple(raw)
            events_before = len(recorder.events)
            self.engine.step(vector, recorder)
            new_events = recorder.events[events_before:]
            trace = CycleTrace(
                self.cycles_seen,
                vector,
                self.engine.active_ids(),
                [(event.state_id, event.report_code) for event in new_events],
            )
            self.cycles_seen += 1
            if self.on_cycle is not None:
                self.on_cycle(trace)
            if storing:
                self.cycles.append(trace)
        return recorder

    # ------------------------------------------------------------------
    def render(self, max_cycles=None, symbol_renderer=None):
        """Aligned text rendering of the trace.

        ``symbol_renderer`` maps an input vector to display text (default:
        printable ASCII for byte automata, hex for nibbles).
        """
        if symbol_renderer is None:
            symbol_renderer = _default_symbol_renderer(self.automaton.bits)
        lines = ["cycle  input      active states"]
        stored = list(self.cycles)
        shown = stored if max_cycles is None else stored[:max_cycles]
        for trace in shown:
            report_text = ""
            if trace.reports:
                report_text = "  REPORT " + ",".join(
                    str(code) for _, code in trace.reports
                )
            lines.append("%5d  %-9s  %s%s" % (
                trace.cycle,
                symbol_renderer(trace.vector),
                ",".join(map(str, trace.active)) or "-",
                report_text,
            ))
        if max_cycles is not None and len(stored) > max_cycles:
            lines.append("... %d more cycles" % (len(stored) - max_cycles))
        return "\n".join(lines)

    def active_counts(self):
        """Per-stored-cycle active-state counts (enabled-set pressure)."""
        return [len(trace.active) for trace in self.cycles]

    def report_cycles(self):
        """Stored cycle indices at which at least one report fired."""
        return [trace.cycle for trace in self.cycles if trace.reports]


def _default_symbol_renderer(bits):
    def render(vector):
        if bits == 8 and len(vector) == 1 and 0x20 <= vector[0] <= 0x7E:
            return "%r" % chr(vector[0])
        return "/".join("%x" % value for value in vector)
    return render
