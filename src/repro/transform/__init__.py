"""Hardware-aware automata transformations (paper Section 4)."""

from .cache import (
    CODE_VERSION,
    ENV_VAR,
    TransformCache,
    configure,
    get_cache,
    last_call_was_hit,
    memoize,
)
from .equivalence import byte_reports, check_equivalent
from .nibble import (
    nibble_report_position_to_byte,
    to_nibbles,
    wide_report_position_to_symbol,
    wide_symbols_to_nibbles,
)
from .pipeline import SUPPORTED_RATES, to_rate, transform_overhead
from .striding import square, stride, verify_offset_invariant

__all__ = [
    "CODE_VERSION",
    "ENV_VAR",
    "SUPPORTED_RATES",
    "TransformCache",
    "byte_reports",
    "check_equivalent",
    "configure",
    "get_cache",
    "last_call_was_hit",
    "memoize",
    "nibble_report_position_to_byte",
    "square",
    "stride",
    "to_nibbles",
    "to_rate",
    "transform_overhead",
    "verify_offset_invariant",
    "wide_report_position_to_symbol",
    "wide_symbols_to_nibbles",
]
