"""Content-addressed cache for transformation pipeline results.

The Section 4 pipeline (``to_nibbles`` -> ``square``/``stride``) is pure:
its output is fully determined by the source automaton's structure and
the transform parameters.  Like Impala's offline 4-bit transformation,
it is a one-time compilation cost — so results are cached under a
content-addressed key and reused across experiments (Table 3 and Table 4
share the intermediate nibble machine), across repeated CLI runs, and
across ``ParallelRunner`` worker processes.

:class:`TransformCache` is the automaton-kind specialization of the
shared two-tier :class:`~repro.runtime.store.ArtifactStore` (the generic
machinery — memory LRU of masters served as copies, atomic disk
artifacts, corruption-degrades-to-miss — lives there; the stage-graph
runtime uses the same store for workload instances and simulation report
streams).  This module keeps the transform-specific parts: SHA-256 keys
salted by the pipeline :data:`CODE_VERSION`, the ``transform.cache``
span, and the ``repro_transform_cache_*`` metric family.

The salt (:data:`CODE_VERSION`) must be bumped whenever the semantics of
any cached transform change, which invalidates every existing entry.
"""

import hashlib
import os
import threading

from ..automata.automaton import Automaton
from ..obs import OBS, trace_span
from ..runtime.store import ArtifactStore, Codec, JsonCodec

#: Pipeline code-version salt mixed into every cache key.  Bump this
#: whenever ``to_nibbles``/``square``/``stride``/``minimize`` semantics
#: change so stale artifacts from older code can never be returned.
CODE_VERSION = "2026.08-1"

#: Environment variable naming the on-disk artifact directory.  When
#: unset, the cache is memory-only.
ENV_VAR = "REPRO_TRANSFORM_CACHE"

#: Default capacity (entries) of the in-process LRU tier.
DEFAULT_MEMORY_ENTRIES = 128


class AutomatonCodec(Codec):
    """Artifact codec for compiled automata (compact JSON v1 payloads)."""

    kind = "automaton"

    def encode(self, obj):
        return obj.dumps()

    def decode(self, text):
        # Automaton.loads raises AutomatonError (a ReproError) on any
        # malformed payload, which the store degrades to a corrupt miss.
        return Automaton.loads(text)

    def copy(self, obj):
        return obj.copy()


#: Shared codec instance (stateless).
AUTOMATON_CODEC = AutomatonCodec()

#: Codec for tiny presence markers (e.g. "this fingerprint is minimal").
MARKER_CODEC = JsonCodec(kind="marker")


class TransformCache(ArtifactStore):
    """Two-tier (memory LRU + disk directory) automaton store."""

    def __init__(self, directory=None, memory_entries=DEFAULT_MEMORY_ENTRIES):
        super().__init__(directory=directory, memory_entries=memory_entries)

    # -- keys ----------------------------------------------------------
    @staticmethod
    def key(op, source, **params):
        """Content-addressed key: op + salt + source structure + params."""
        digest = hashlib.sha256()
        digest.update(("%s\x00%s\x00%s\x00" % (
            CODE_VERSION, op, source.fingerprint(),
        )).encode("utf-8"))
        for name in sorted(params):
            digest.update(("%s=%r\x00" % (name, params[name])).encode(
                "utf-8", "surrogatepass"))
        return digest.hexdigest()

    # -- lookup / store ------------------------------------------------
    def get(self, key, op="?"):
        """Cached automaton for ``key`` (a fresh copy) or ``None``."""
        return super().get(key, AUTOMATON_CODEC, context=op)

    def put(self, key, automaton, op="?"):
        """Store ``automaton`` under ``key`` in every configured tier."""
        super().put(key, automaton, AUTOMATON_CODEC, context=op)

    def fetch(self, op, source, build, **params):
        """Memoize ``build()``: return ``(automaton, hit)``.

        ``hit`` is the serving tier (``"memory"``/``"disk"``) or ``None``
        when ``build`` actually ran.
        """
        key = self.key(op, source, **params)
        if OBS.active:
            with trace_span("transform.cache", op=op, key=key[:16]) as span:
                found = self.get(key, op=op)
                span.set_attr(tier=self._last_tier if found is not None
                              else "miss")
        else:
            found = self.get(key, op=op)
        if found is not None:
            return found, self._last_tier
        result = build()
        self.put(key, result, op=op)
        return result, None

    # -- presence markers ----------------------------------------------
    @staticmethod
    def marker_key(op, fingerprint):
        """Content-addressed key for a fingerprint presence marker."""
        digest = hashlib.sha256()
        digest.update(("%s\x00%s\x00%s" % (
            CODE_VERSION, op, fingerprint,
        )).encode("utf-8"))
        return "marker-%s" % digest.hexdigest()

    def has_marker(self, op, fingerprint):
        """Whether a marker for ``(op, fingerprint)`` is on disk.

        Markers skip the memory LRU on purpose: callers keep their own
        in-process memo (see ``repro.automata.ops``), and letting tiny
        flags churn the LRU would evict real automaton masters.
        """
        if self.directory is None:
            return False
        return self._disk_get(self.marker_key(op, fingerprint),
                              MARKER_CODEC, op) is not None

    def put_marker(self, op, fingerprint):
        """Record a ``(op, fingerprint)`` marker in the disk tier."""
        if self.directory is None:
            return
        self._disk_put(self.marker_key(op, fingerprint),
                       MARKER_CODEC.encode(True))

    # -- telemetry -----------------------------------------------------
    def _code_version(self):
        return CODE_VERSION

    def _emit(self, stat, context=None, tier=None):
        if not OBS.active:
            return
        instruments = OBS.instruments
        if stat.endswith("_hits"):
            instruments.transform_cache_hits.labels(tier=tier).inc()
        elif stat == "misses":
            instruments.transform_cache_misses.inc()
        elif stat == "evictions":
            instruments.transform_cache_evictions.inc()
        elif stat == "corrupt":
            instruments.transform_cache_corrupt.inc()

    def _record_written(self, nbytes):
        if OBS.active:
            OBS.instruments.transform_cache_bytes_written.inc(nbytes)


class _ThreadState(threading.local):
    hit = None


_STATE = _ThreadState()
_ACTIVE = None
_ACTIVE_LOCK = threading.Lock()


def get_cache():
    """The process-wide cache (created on first use from :data:`ENV_VAR`)."""
    global _ACTIVE
    if _ACTIVE is None:
        with _ACTIVE_LOCK:
            if _ACTIVE is None:
                _ACTIVE = TransformCache(
                    directory=os.environ.get(ENV_VAR) or None)
    return _ACTIVE


def configure(directory=None, memory_entries=DEFAULT_MEMORY_ENTRIES):
    """Replace the process-wide cache; returns the new one.

    ``ParallelRunner`` workers call this from their initializer so every
    process shares one artifact directory.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = TransformCache(
            directory=directory, memory_entries=memory_entries)
    return _ACTIVE


def memoize(op, source, build, **params):
    """Serve ``build()`` through the process-wide cache.

    Records whether the *outermost* memoized call of the current
    pipeline stage was a hit (see :func:`last_call_was_hit`): the flag
    is written after ``build`` returns, so inner hits during an outer
    miss — e.g. a cached ``square`` inside an uncached ``stride`` — do
    not mislabel the stage.
    """
    result, tier = get_cache().fetch(op, source, build, **params)
    _STATE.hit = tier is not None
    return result


def last_call_was_hit():
    """Whether the last top-level :func:`memoize` on this thread hit."""
    return bool(_STATE.hit)
