"""Content-addressed cache for transformation pipeline results.

The Section 4 pipeline (``to_nibbles`` -> ``square``/``stride``) is pure:
its output is fully determined by the source automaton's structure and
the transform parameters.  Like Impala's offline 4-bit transformation,
it is a one-time compilation cost — so results are cached under a
content-addressed key and reused across experiments (Table 3 and Table 4
share the intermediate nibble machine), across repeated CLI runs, and
across ``ParallelRunner`` worker processes.

Two tiers:

- **memory** — an in-process LRU of master automata; hits return a
  :meth:`~repro.automata.Automaton.copy` so callers can mutate freely.
- **disk** — an artifact directory of versioned compact JSON payloads
  (``<key>.json``), shared between processes.  Writes go through a
  temporary file plus :func:`os.replace` so concurrent writers and
  readers never observe a partial entry; a corrupt or truncated
  artifact degrades to a miss (and a warning metric), never a crash.

Keys are ``sha256(op, code-version salt, source fingerprint, params)``.
The salt (:data:`CODE_VERSION`) must be bumped whenever the semantics of
any cached transform change, which invalidates every existing entry.
"""

import hashlib
import os
import threading
from collections import OrderedDict

from ..automata.automaton import Automaton
from ..errors import AutomatonError
from ..obs import OBS, trace_span

#: Pipeline code-version salt mixed into every cache key.  Bump this
#: whenever ``to_nibbles``/``square``/``stride``/``minimize`` semantics
#: change so stale artifacts from older code can never be returned.
CODE_VERSION = "2026.08-1"

#: Environment variable naming the on-disk artifact directory.  When
#: unset, the cache is memory-only.
ENV_VAR = "REPRO_TRANSFORM_CACHE"

#: Default capacity (entries) of the in-process LRU tier.
DEFAULT_MEMORY_ENTRIES = 128

_STAT_KEYS = ("memory_hits", "disk_hits", "misses", "stores",
              "evictions", "corrupt")


class TransformCache:
    """Two-tier (memory LRU + disk directory) content-addressed store."""

    def __init__(self, directory=None, memory_entries=DEFAULT_MEMORY_ENTRIES):
        self.directory = os.path.abspath(directory) if directory else None
        self.memory_entries = max(0, int(memory_entries))
        self._memory = OrderedDict()
        self._lock = threading.Lock()
        self._tls = threading.local()
        self.stats = dict.fromkeys(_STAT_KEYS, 0)

    # -- keys ----------------------------------------------------------
    @staticmethod
    def key(op, source, **params):
        """Content-addressed key: op + salt + source structure + params."""
        digest = hashlib.sha256()
        digest.update(("%s\x00%s\x00%s\x00" % (
            CODE_VERSION, op, source.fingerprint(),
        )).encode("utf-8"))
        for name in sorted(params):
            digest.update(("%s=%r\x00" % (name, params[name])).encode(
                "utf-8", "surrogatepass"))
        return digest.hexdigest()

    # -- lookup / store ------------------------------------------------
    def get(self, key, op="?"):
        """Cached automaton for ``key`` (a fresh copy) or ``None``.

        A disk hit is promoted into the memory tier.  Undecodable disk
        artifacts count as ``corrupt`` misses and are left in place for
        post-mortem inspection (the next store overwrites them).
        """
        with self._lock:
            master = self._memory.get(key)
            if master is not None:
                self._memory.move_to_end(key)
        if master is not None:
            self._record("memory_hits", op=op, tier="memory")
            return master.copy()
        master = self._disk_get(key, op)
        if master is not None:
            self._remember(key, master)
            self._record("disk_hits", op=op, tier="disk")
            return master.copy()
        self._record("misses", op=op)
        return None

    def put(self, key, automaton, op="?"):
        """Store ``automaton`` under ``key`` in every configured tier."""
        self._remember(key, automaton.copy())
        self._record("stores", op=op)
        if self.directory is None:
            return
        text = automaton.dumps()
        path = self._path(key)
        tmp = "%s.tmp.%d.%d" % (path, os.getpid(), threading.get_ident())
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        if OBS.active:
            OBS.instruments.transform_cache_bytes_written.inc(len(text))

    def fetch(self, op, source, build, **params):
        """Memoize ``build()``: return ``(automaton, hit)``.

        ``hit`` is the serving tier (``"memory"``/``"disk"``) or ``None``
        when ``build`` actually ran.
        """
        key = self.key(op, source, **params)
        if OBS.active:
            with trace_span("transform.cache", op=op, key=key[:16]) as span:
                found = self.get(key, op=op)
                span.set_attr(tier=self._last_tier if found is not None
                              else "miss")
        else:
            found = self.get(key, op=op)
        if found is not None:
            return found, self._last_tier
        result = build()
        self.put(key, result, op=op)
        return result, None

    # -- maintenance ---------------------------------------------------
    def info(self):
        """Snapshot of configuration, occupancy, and counters."""
        disk_entries = 0
        disk_bytes = 0
        for path in self._disk_paths():
            try:
                disk_bytes += os.path.getsize(path)
                disk_entries += 1
            except OSError:
                continue
        with self._lock:
            memory_used = len(self._memory)
        return {
            "directory": self.directory,
            "code_version": CODE_VERSION,
            "memory_entries": self.memory_entries,
            "memory_used": memory_used,
            "disk_entries": disk_entries,
            "disk_bytes": disk_bytes,
            "stats": dict(self.stats),
        }

    def clear(self, memory=True, disk=True):
        """Drop cached entries; returns the number removed."""
        removed = 0
        if memory:
            with self._lock:
                removed += len(self._memory)
                self._memory.clear()
        if disk:
            for path in self._disk_paths():
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    continue
        return removed

    # -- internals -----------------------------------------------------
    @property
    def _last_tier(self):
        """Serving tier of this thread's last lookup (None on miss)."""
        return getattr(self._tls, "tier", None)

    def _path(self, key):
        return os.path.join(self.directory, key + ".json")

    def _disk_paths(self):
        if self.directory is None:
            return []
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return [os.path.join(self.directory, name)
                for name in sorted(names) if name.endswith(".json")]

    def _disk_get(self, key, op):
        if self.directory is None:
            return None
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return None
        try:
            return Automaton.loads(text)
        except AutomatonError:
            self._record("corrupt", op=op)
            return None

    def _remember(self, key, master):
        if self.memory_entries == 0:
            return
        evicted = 0
        with self._lock:
            self._memory[key] = master
            self._memory.move_to_end(key)
            while len(self._memory) > self.memory_entries:
                self._memory.popitem(last=False)
                evicted += 1
        for _ in range(evicted):
            self._record("evictions")

    def _record(self, stat, op=None, tier=None):
        self.stats[stat] += 1
        if stat.endswith("_hits"):
            self._tls.tier = tier
        elif stat == "misses":
            self._tls.tier = None
        if not OBS.active:
            return
        instruments = OBS.instruments
        if stat.endswith("_hits"):
            instruments.transform_cache_hits.labels(tier=tier).inc()
        elif stat == "misses":
            instruments.transform_cache_misses.inc()
        elif stat == "evictions":
            instruments.transform_cache_evictions.inc()
        elif stat == "corrupt":
            instruments.transform_cache_corrupt.inc()


class _ThreadState(threading.local):
    hit = None


_STATE = _ThreadState()
_ACTIVE = None
_ACTIVE_LOCK = threading.Lock()


def get_cache():
    """The process-wide cache (created on first use from :data:`ENV_VAR`)."""
    global _ACTIVE
    if _ACTIVE is None:
        with _ACTIVE_LOCK:
            if _ACTIVE is None:
                _ACTIVE = TransformCache(
                    directory=os.environ.get(ENV_VAR) or None)
    return _ACTIVE


def configure(directory=None, memory_entries=DEFAULT_MEMORY_ENTRIES):
    """Replace the process-wide cache; returns the new one.

    ``ParallelRunner`` workers call this from their initializer so every
    process shares one artifact directory.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = TransformCache(
            directory=directory, memory_entries=memory_entries)
    return _ACTIVE


def memoize(op, source, build, **params):
    """Serve ``build()`` through the process-wide cache.

    Records whether the *outermost* memoized call of the current
    pipeline stage was a hit (see :func:`last_call_was_hit`): the flag
    is written after ``build`` returns, so inner hits during an outer
    miss — e.g. a cached ``square`` inside an uncached ``stride`` — do
    not mislabel the stage.
    """
    result, tier = get_cache().fetch(op, source, build, **params)
    _STATE.hit = tier is not None
    return result


def last_call_was_hit():
    """Whether the last top-level :func:`memoize` on this thread hit."""
    return bool(_STATE.hit)
