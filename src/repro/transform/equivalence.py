"""Equivalence checking between an 8-bit automaton and its transforms.

The whole transformation pipeline is only useful if it is *exactly*
language-preserving.  These helpers run both machines on the same byte
stream and compare report sets, mapping transformed (nibble-domain)
positions back to byte indices.  They are used by the property-based test
suite and exposed publicly so users can validate their own pipelines.
"""

from ..errors import TransformError
from ..sim.engine import BitsetEngine
from ..sim.inputs import stream_for
from .nibble import nibble_report_position_to_byte


def byte_reports(automaton, data):
    """Run a byte/nibble automaton on ``data`` (bytes).

    Returns the set of ``(byte_index, report_code)`` pairs, regardless of
    whether ``automaton`` is the original 8-bit machine or any 4-bit
    transform of it.
    """
    vectors, limit = stream_for(automaton, data)
    recorder = BitsetEngine(automaton).run(vectors, position_limit=limit)
    if automaton.bits == 8:
        return {(event.position, event.report_code) for event in recorder.events}
    return {
        (nibble_report_position_to_byte(event.position), event.report_code)
        for event in recorder.events
    }


def check_equivalent(original, transformed, data):
    """Assert both machines report identically on ``data``.

    Raises :class:`TransformError` with a readable diff on mismatch;
    returns the common report set on success.
    """
    expected = byte_reports(original, data)
    actual = byte_reports(transformed, data)
    if expected != actual:
        missing = sorted(expected - actual)[:10]
        spurious = sorted(actual - expected)[:10]
        raise TransformError(
            "transformed automaton diverges on %d bytes: missing=%s spurious=%s"
            % (len(data), missing, spurious)
        )
    return expected
