"""8-bit to 4-bit (nibble) automata transformation — paper Section 4.

Each byte-matching STE is decomposed into chains of two nibble-matching
STEs (high nibble first).  The decomposition groups the state's 256-symbol
charset by distinct low-nibble sets (:meth:`SymbolSet.split_nibbles`),
which is the minimal row-partition rectangle cover — a ``[a-z]``-style
class becomes 2–3 chains, a full ``.`` exactly one.

The resulting automaton has ``bits=4, arity=1, start_period=2``: patterns
may only begin on byte boundaries, so ``ALL_INPUT`` starts self-enable
only on even nibble cycles.  A report the byte automaton raises at byte
``t`` is raised by the nibble automaton at nibble position ``2t + 1``.

FlexAmata-style minimization (prefix/suffix congruence merging) runs after
decomposition and recovers most of the naive 2x state blowup; measured
overheads land near the paper's Table 3.
"""

from ..automata.automaton import Automaton
from ..automata.ops import minimize
from ..automata.symbolset import SymbolSet
from ..errors import TransformError
from .cache import memoize


def _decompose_wide(symbol_set, nibbles):
    """Suffix-sharing decomposition of an m-bit set into nibble chains.

    Returns a list of nibble-set chains (tuples of 4-bit SymbolSets of
    length ``nibbles``) whose concatenated cross products partition the
    set — the multi-level generalization of
    :meth:`SymbolSet.split_nibbles`.  Grouping is by distinct suffix
    decomposition, which is the same minimal row-partition cover applied
    recursively.
    """
    if nibbles == 1:
        return [(SymbolSet.of(4, list(symbol_set)),)]
    shift = 4 * (nibbles - 1)
    by_high = {}
    for value in symbol_set:
        by_high.setdefault(value >> shift, set()).add(
            value & ((1 << shift) - 1)
        )
    # Group high nibbles whose suffix sets are identical, then recurse on
    # each distinct suffix set.
    by_suffix = {}
    for high, suffix in by_high.items():
        by_suffix.setdefault(frozenset(suffix), []).append(high)
    chains = []
    for suffix, highs in sorted(
        by_suffix.items(), key=lambda item: sorted(item[1])
    ):
        high_set = SymbolSet.of(4, highs)
        for tail in _decompose_wide(suffix, nibbles - 1):
            chains.append((high_set,) + tail)
    return chains


def to_nibbles(automaton, minimized=True, name=None):
    """Transform an 8- or 16-bit arity-1 automaton to 4-bit processing.

    Parameters
    ----------
    automaton:
        Source automaton (``bits in (8, 16), arity=1``).  16-bit symbols
        cover the paper's wide-alphabet applications (SPM's "millions of
        unique symbols"), decomposed into chains of four nibbles.
    minimized:
        Run congruence minimization after decomposition (on by default;
        disable to measure the naive decomposition overhead).
    name:
        Name of the produced automaton (default: ``<src>.nibble``).

    Results are served through the content-addressed transform cache
    (see :mod:`repro.transform.cache`): repeated calls with a
    structurally identical source return a copy of the first build.
    """
    if automaton.bits == 16 and automaton.arity == 1:
        build = lambda: _to_nibbles_wide(
            automaton, minimized=minimized, name=name)
    elif automaton.bits == 8 and automaton.arity == 1:
        build = lambda: _to_nibbles_bytes(
            automaton, minimized=minimized, name=name)
    else:
        raise TransformError(
            "nibble transformation expects an 8- or 16-bit arity-1 "
            "automaton, got %d-bit arity-%d"
            % (automaton.bits, automaton.arity)
        )
    return memoize("nibble", automaton, build,
                   minimized=minimized, name=name)


def _to_nibbles_bytes(automaton, minimized=True, name=None):
    """8-bit -> 4-bit decomposition: (high, low) nibble chains."""
    result = Automaton(
        name=name if name is not None else automaton.name + ".nibble",
        bits=4,
        arity=1,
        start_period=2,
    )

    # Decompose each byte state into (high, low) nibble chains.
    low_ids = {}   # original id -> list of low-state ids (exit points)
    high_ids = {}  # original id -> list of high-state ids (entry points)
    for state in automaton:
        groups = state.symbols[0].split_nibbles()
        if not groups:
            raise TransformError("state %r has an empty charset" % (state.id,))
        entries, exits = [], []
        for group_index, (high_set, low_set) in enumerate(groups):
            high_id = "%s.h%d" % (state.id, group_index)
            low_id = "%s.l%d" % (state.id, group_index)
            result.new_state(high_id, high_set, start=state.start)
            result.new_state(
                low_id,
                low_set,
                report=state.report,
                report_code=state.report_code,
            )
            result.add_transition(high_id, low_id)
            entries.append(high_id)
            exits.append(low_id)
        high_ids[state.id] = entries
        low_ids[state.id] = exits

    for src, dst in automaton.transitions():
        for exit_id in low_ids[src]:
            for entry_id in high_ids[dst]:
                result.add_transition(exit_id, entry_id)

    if minimized:
        minimize(result)
    return result.validate()


def _to_nibbles_wide(automaton, minimized=True, name=None):
    """16-bit -> 4-bit decomposition: chains of four nibble states."""
    nibbles = automaton.bits // 4
    result = Automaton(
        name=name if name is not None else automaton.name + ".nibble",
        bits=4,
        arity=1,
        start_period=nibbles,
    )
    entry_ids = {}
    exit_ids = {}
    for state in automaton:
        chains = _decompose_wide(state.symbols[0], nibbles)
        if not chains:
            raise TransformError("state %r has an empty charset" % (state.id,))
        entries, exits = [], []
        for chain_index, chain in enumerate(chains):
            previous = None
            for position, nibble_set in enumerate(chain):
                node_id = "%s.c%d_%d" % (state.id, chain_index, position)
                last = position == nibbles - 1
                result.new_state(
                    node_id,
                    nibble_set,
                    start=state.start if position == 0 else "none",
                    report=state.report and last,
                    report_code=state.report_code if last else None,
                )
                if previous is not None:
                    result.add_transition(previous, node_id)
                previous = node_id
                if position == 0:
                    entries.append(node_id)
            exits.append(previous)
        entry_ids[state.id] = entries
        exit_ids[state.id] = exits
    for src, dst in automaton.transitions():
        for exit_id in exit_ids[src]:
            for entry_id in entry_ids[dst]:
                result.add_transition(exit_id, entry_id)
    if minimized:
        minimize(result)
    return result.validate()


def wide_symbols_to_nibbles(symbols, bits=16):
    """Flatten a wide-symbol stream into nibbles, most significant first."""
    nibbles_per_symbol = bits // 4
    out = []
    for value in symbols:
        if not 0 <= value < (1 << bits):
            raise TransformError(
                "symbol %r out of range for %d-bit alphabet" % (value, bits)
            )
        for position in range(nibbles_per_symbol - 1, -1, -1):
            out.append((value >> (4 * position)) & 0xF)
    return out


def wide_report_position_to_symbol(position, bits=16):
    """Map a nibble report position back to its wide-symbol index.

    Reports land on the final nibble of a symbol; anything else is a
    transformation bug.
    """
    nibbles_per_symbol = bits // 4
    if position % nibbles_per_symbol != nibbles_per_symbol - 1:
        raise TransformError(
            "report at nibble position %d does not align with a %d-bit "
            "symbol boundary" % (position, bits)
        )
    return position // nibbles_per_symbol


def nibble_report_position_to_byte(position):
    """Map a nibble-domain report position to the originating byte index.

    Valid nibble-automaton reports always land on the low nibble (odd
    positions); raises :class:`TransformError` otherwise because an even
    position indicates a transformation bug.
    """
    if position % 2 != 1:
        raise TransformError(
            "nibble report at even position %d (must fire on the low nibble)"
            % position
        )
    return position // 2
