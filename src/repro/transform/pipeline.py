"""End-to-end transformation pipeline: byte automaton -> Sunder rate.

Sunder configures a *processing rate* of 1, 2, or 4 nibbles per cycle
(4/8/16 bits).  :func:`to_rate` runs the whole Section 4 pipeline —
nibble decomposition, then temporal striding to the requested rate — and
:func:`transform_overhead` measures the state/transition blowup that the
paper reports in Table 3.
"""

from ..errors import TransformError
from .nibble import to_nibbles
from .striding import stride

#: Processing rates Sunder supports, in nibbles per cycle.
SUPPORTED_RATES = (1, 2, 4)


def to_rate(automaton, nibbles_per_cycle, minimized=True):
    """Transform an 8-bit automaton to process ``nibbles_per_cycle`` nibbles.

    Returns a 4-bit automaton of arity ``nibbles_per_cycle``.  Report
    positions are preserved in nibble units: a byte-automaton report at
    byte ``t`` appears at nibble position ``2t + 1`` at any rate.
    """
    if nibbles_per_cycle not in SUPPORTED_RATES:
        raise TransformError(
            "unsupported rate %r (Sunder supports %s nibbles/cycle)"
            % (nibbles_per_cycle, list(SUPPORTED_RATES))
        )
    nibble_automaton = to_nibbles(automaton, minimized=minimized)
    if nibbles_per_cycle == 1:
        return nibble_automaton
    strided = stride(nibble_automaton, nibbles_per_cycle, minimized=minimized)
    strided.name = "%s.%dnibble" % (automaton.name, nibbles_per_cycle)
    return strided


def transform_overhead(automaton, rates=SUPPORTED_RATES, minimized=True):
    """State/transition overhead of each rate, normalized to the 8-bit source.

    Returns a dict ``rate -> {"states": ..., "transitions": ...,
    "state_ratio": ..., "transition_ratio": ...}`` plus a ``"base"`` entry
    with the source counts — i.e. one row of the paper's Table 3.
    """
    base_states = len(automaton)
    base_transitions = automaton.num_transitions()
    if base_states == 0:
        raise TransformError("cannot measure overhead of an empty automaton")
    result = {
        "base": {"states": base_states, "transitions": base_transitions},
    }
    nibble_automaton = to_nibbles(automaton, minimized=minimized)
    for rate in rates:
        if rate == 1:
            machine = nibble_automaton
        else:
            machine = stride(nibble_automaton, rate, minimized=minimized)
        result[rate] = {
            "states": len(machine),
            "transitions": machine.num_transitions(),
            "state_ratio": len(machine) / base_states,
            "transition_ratio": (
                machine.num_transitions() / base_transitions
                if base_transitions else float("nan")
            ),
        }
    return result
