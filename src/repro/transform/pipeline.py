"""End-to-end transformation pipeline: byte automaton -> Sunder rate.

Sunder configures a *processing rate* of 1, 2, or 4 nibbles per cycle
(4/8/16 bits).  :func:`to_rate` runs the whole Section 4 pipeline —
nibble decomposition, then temporal striding to the requested rate — and
:func:`transform_overhead` measures the state/transition blowup that the
paper reports in Table 3.
"""

from time import perf_counter

from ..errors import TransformError
from ..obs import OBS, trace_span
from .cache import last_call_was_hit
from .nibble import to_nibbles
from .striding import stride

#: Processing rates Sunder supports, in nibbles per cycle.
SUPPORTED_RATES = (1, 2, 4)


def _run_stage(stage, func, source):
    """Run one pipeline stage, recording span + metrics when collecting.

    Timing comes from the trace span itself when one is open (a
    metrics-only session falls back to one ``perf_counter`` pair).
    Cache hits are tagged ``cached=true`` on the span and excluded from
    the stage-seconds histogram, so ``repro_transform_stage_seconds``
    keeps measuring what it always did: the cost of actually running the
    transform.
    """
    if not OBS.active:  # single attribute check when no collector attached
        return func()
    states_in = max(1, len(source))
    transitions_in = max(1, source.num_transitions())
    traced = OBS.trace is not None
    start = None if traced else perf_counter()
    with trace_span("transform." + stage, automaton=source.name,
                    states_in=len(source)) as span:
        result = func()
        cached = last_call_was_hit()
        span.set_attr(states_out=len(result), cached=cached)
    elapsed = span.duration if traced else perf_counter() - start
    instruments = OBS.instruments
    instruments.transform_runs.labels(stage=stage).inc()
    if not cached:
        instruments.transform_stage_seconds.labels(stage=stage).observe(
            elapsed)
    instruments.transform_state_ratio.labels(stage=stage).observe(
        len(result) / states_in)
    instruments.transform_transition_ratio.labels(stage=stage).observe(
        result.num_transitions() / transitions_in)
    return result


def to_rate(automaton, nibbles_per_cycle, minimized=True):
    """Transform an 8-bit automaton to process ``nibbles_per_cycle`` nibbles.

    Returns a 4-bit automaton of arity ``nibbles_per_cycle``.  Report
    positions are preserved in nibble units: a byte-automaton report at
    byte ``t`` appears at nibble position ``2t + 1`` at any rate.
    """
    if nibbles_per_cycle not in SUPPORTED_RATES:
        raise TransformError(
            "unsupported rate %r (Sunder supports %s nibbles/cycle)"
            % (nibbles_per_cycle, list(SUPPORTED_RATES))
        )
    nibble_automaton = _run_stage(
        "nibble", lambda: to_nibbles(automaton, minimized=minimized),
        automaton)
    if nibbles_per_cycle == 1:
        # Same naming scheme at every rate: the caller owns the returned
        # machine (a fresh build or a cache copy), so renaming is safe.
        nibble_automaton.name = "%s.1nibble" % automaton.name
        return nibble_automaton
    strided = _run_stage(
        "stride",
        lambda: stride(nibble_automaton, nibbles_per_cycle,
                       minimized=minimized),
        nibble_automaton)
    strided.name = "%s.%dnibble" % (automaton.name, nibbles_per_cycle)
    return strided


def transform_overhead(automaton, rates=SUPPORTED_RATES, minimized=True):
    """State/transition overhead of each rate, normalized to the 8-bit source.

    Returns a dict ``rate -> {"states": ..., "transitions": ...,
    "state_ratio": ..., "transition_ratio": ...}`` plus a ``"base"`` entry
    with the source counts — i.e. one row of the paper's Table 3.
    """
    base_states = len(automaton)
    base_transitions = automaton.num_transitions()
    if base_states == 0:
        raise TransformError("cannot measure overhead of an empty automaton")
    result = {
        "base": {"states": base_states, "transitions": base_transitions},
    }
    nibble_automaton = _run_stage(
        "nibble", lambda: to_nibbles(automaton, minimized=minimized),
        automaton)
    for rate in rates:
        if rate == 1:
            machine = nibble_automaton
        else:
            machine = _run_stage(
                "stride",
                lambda rate=rate: stride(nibble_automaton, rate,
                                         minimized=minimized),
                nibble_automaton)
        result[rate] = {
            "states": len(machine),
            "transitions": machine.num_transitions(),
            "state_ratio": len(machine) / base_states,
            "transition_ratio": (
                machine.num_transitions() / base_transitions
                if base_transitions else float("nan")
            ),
        }
    return result
