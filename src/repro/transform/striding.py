"""Vectorized temporal striding — paper Section 4, after Impala.

Striding squares an automaton: the result consumes two of the source's
symbol vectors per cycle.  Applied once to a nibble automaton it yields
8-bit-per-cycle processing; applied twice, 16-bit.

Construction (homogeneous NFAs).  For a source automaton with arity ``a``:

- **pair states** ``(q1, q2)`` for every edge ``q1 -> q2``: label is the
  concatenation of both labels; the pair carries only ``q2``'s report
  offsets (shifted by ``a``) — ``q1``'s reports are hoisted into remnants
  so they cannot be suppressed by a failing second half;
- **remnant states** ``(q1, END)`` for every reporting ``q1``: label is
  ``q1``'s label padded with ``a`` wildcards, carrying ``q1``'s offsets,
  with *no* successors.  They fire ``q1``'s report regardless of what the
  second half of the vector holds, exactly as the unstrided machine would;
- **phase states** ``(ANY, q_s)`` when the source allows ``ALL_INPUT``
  starts every cycle (``start_period == 1``): a pattern may then begin in
  the *second* half of a strided vector, so a wildcard-prefixed copy of
  each start state is added.  When ``start_period == 2`` (a nibble machine
  derived from bytes) starts only align with vector boundaries and no
  phase states are needed.

Transitions: ``(x, s) -> (f, y)`` exists iff ``f in succ(s)``.  Reports
keep their *sub-symbol* positions: a state reporting at offset ``o`` in
cycle ``t`` reports at stream position ``t * arity + o``, so positions are
invariant across striding.

The key structural invariant (checked by :func:`verify_offset_invariant`)
is that every label position strictly after a report offset is a full
wildcard — which is what makes interior-offset reports independent of
future input, preserving the unstrided semantics.
"""

from ..automata.automaton import Automaton
from ..automata.ops import minimize
from ..automata.ste import StartKind
from ..automata.symbolset import SymbolSet
from ..errors import TransformError
from .cache import memoize

#: Sentinel ids for wildcard halves in generated state names.
_END = "$end"
_ANY = "$any"


def square(automaton, minimized=True, name=None):
    """Stride ``automaton`` by 2: the result consumes two vectors per cycle.

    Start-period handling: an even period ``P`` means starts align with
    every ``P``-th source cycle, which is offset 0 of every ``P/2``-th
    strided cycle — no phase states needed.  Period 1 allows mid-vector
    starts, handled by wildcard-prefixed phase states.
    """
    if automaton.start_period != 1 and automaton.start_period % 2 != 0:
        raise TransformError(
            "cannot square an automaton with odd start period %d"
            % automaton.start_period
        )
    return memoize("square", automaton,
                   lambda: _square(automaton, minimized, name),
                   minimized=minimized, name=name)


def _square(automaton, minimized, name):
    period = automaton.start_period
    arity = automaton.arity
    full = SymbolSet.full(automaton.bits)
    wildcard_half = (full,) * arity
    result = Automaton(
        name=name if name is not None else automaton.name + ".x2",
        bits=automaton.bits,
        arity=2 * arity,
        start_period=max(1, period // 2),
    )

    # ------------------------------------------------------------------
    # States.  Keyed by (first, second) where either may be a sentinel.
    # ------------------------------------------------------------------
    new_ids = {}
    entry_points = {}  # source id f -> list of new ids whose first half is f

    def add(first_state, second_state):
        """Create one strided state; returns its id."""
        first_id = first_state.id if first_state is not None else _ANY
        second_id = second_state.id if second_state is not None else _END
        key = (first_id, second_id)
        if key in new_ids:
            return new_ids[key]
        new_id = "(%s|%s)" % key

        if second_state is None:
            # Remnant: first half's reports, wildcard second half.
            label = first_state.symbols + wildcard_half
            offsets = first_state.report_offsets
            code = first_state.report_code
            start = first_state.start
        elif first_state is None:
            # Phase state: wildcard first half, real second half.
            label = wildcard_half + second_state.symbols
            offsets = tuple(arity + o for o in second_state.report_offsets)
            code = second_state.report_code
            start = StartKind.ALL_INPUT
        else:
            label = first_state.symbols + second_state.symbols
            offsets = tuple(arity + o for o in second_state.report_offsets)
            code = second_state.report_code
            start = first_state.start

        result.new_state(
            new_id,
            label,
            start=start,
            report=bool(offsets),
            report_code=code,
            report_offsets=offsets if offsets else None,
        )
        new_ids[key] = new_id
        if first_state is not None:
            entry_points.setdefault(first_state.id, []).append(new_id)
        return new_id

    for state in automaton:
        for successor_id in automaton.successors(state.id):
            add(state, automaton.state(successor_id))
        if state.report:
            add(state, None)
        # A start state with no successors and no report would be inert, but
        # a *start* state that only reports is covered by its remnant above.
    if period == 1:
        for state in automaton.start_states():
            if state.start is StartKind.ALL_INPUT:
                add(None, state)

    # ------------------------------------------------------------------
    # Transitions: (x, s) -> every state whose first half is in succ(s).
    # The flattened entry-point list of each second half is computed once
    # and shared by every pair state ending in it, instead of walking
    # successors() and probing entry_points per source edge.
    # ------------------------------------------------------------------
    succ_entries = {}  # source id s -> new ids entered from succ(s)
    for (first_id, second_id), new_src in new_ids.items():
        if second_id == _END:
            continue
        targets = succ_entries.get(second_id)
        if targets is None:
            targets = succ_entries[second_id] = [
                new_dst
                for follower in sorted(automaton.successors(second_id))
                for new_dst in entry_points.get(follower, ())
            ]
        for new_dst in targets:
            result.add_transition(new_src, new_dst)

    result.prune_unreachable()
    if minimized:
        minimize(result)
    return result.validate()


def stride(automaton, factor, minimized=True):
    """Stride by ``factor`` (a power of two) via repeated squaring.

    Only the *final* machine is minimized: intermediate squarings are
    pruned of unreachable states but skip minimization, since the final
    partition refinement subsumes any merging an intermediate pass would
    have done and the per-squaring passes dominated striding cost.
    """
    if factor < 1 or factor & (factor - 1):
        raise TransformError("stride factor must be a power of two, got %r" % factor)

    def build():
        current = automaton
        applied = 1
        while applied < factor:
            applied *= 2
            current = square(
                current, minimized=minimized and applied >= factor)
        if current is automaton:
            current = automaton.copy()
        current.name = automaton.name + (".x%d" % factor if factor > 1 else "")
        return current

    return memoize("stride", automaton, build,
                   factor=factor, minimized=minimized)


def verify_offset_invariant(automaton):
    """Check that label positions after each report offset are wildcards.

    Raises :class:`TransformError` on violation.  This invariant is what
    guarantees interior-offset reports never depend on future input.
    """
    for state in automaton:
        if not state.report:
            continue
        for offset in state.report_offsets:
            for position in range(offset + 1, state.arity):
                if not state.symbols[position].is_full():
                    raise TransformError(
                        "state %r reports at offset %d but position %d is "
                        "not a wildcard" % (state.id, offset, position)
                    )
    return True
