"""Vectorized temporal striding — paper Section 4, after Impala.

Striding squares an automaton: the result consumes two of the source's
symbol vectors per cycle.  Applied once to a nibble automaton it yields
8-bit-per-cycle processing; applied twice, 16-bit.

Construction (homogeneous NFAs).  For a source automaton with arity ``a``:

- **pair states** ``(q1, q2)`` for every edge ``q1 -> q2``: label is the
  concatenation of both labels; the pair carries only ``q2``'s report
  offsets (shifted by ``a``) — ``q1``'s reports are hoisted into remnants
  so they cannot be suppressed by a failing second half;
- **remnant states** ``(q1, END)`` for every reporting ``q1``: label is
  ``q1``'s label padded with ``a`` wildcards, carrying ``q1``'s offsets,
  with *no* successors.  They fire ``q1``'s report regardless of what the
  second half of the vector holds, exactly as the unstrided machine would;
- **phase states** ``(ANY, q_s)`` when the source allows ``ALL_INPUT``
  starts every cycle (``start_period == 1``): a pattern may then begin in
  the *second* half of a strided vector, so a wildcard-prefixed copy of
  each start state is added.  When ``start_period == 2`` (a nibble machine
  derived from bytes) starts only align with vector boundaries and no
  phase states are needed.

Transitions: ``(x, s) -> (f, y)`` exists iff ``f in succ(s)``.  Reports
keep their *sub-symbol* positions: a state reporting at offset ``o`` in
cycle ``t`` reports at stream position ``t * arity + o``, so positions are
invariant across striding.

The key structural invariant (checked by :func:`verify_offset_invariant`)
is that every label position strictly after a report offset is a full
wildcard — which is what makes interior-offset reports independent of
future input, preserving the unstrided semantics.
"""

from ..automata.automaton import Automaton
from ..automata.gcutil import gc_paused
from ..automata.indexed import IndexedAutomaton
from ..automata.ste import StartKind, ste_from_canonical
from ..automata.symbolset import SymbolSet
from ..errors import TransformError
from ..obs import OBS, ProgressReporter
from .cache import memoize

#: Sentinel ids for wildcard halves in generated state names.
_END = "$end"
_ANY = "$any"


def square(automaton, minimized=True, name=None):
    """Stride ``automaton`` by 2: the result consumes two vectors per cycle.

    Start-period handling: an even period ``P`` means starts align with
    every ``P``-th source cycle, which is offset 0 of every ``P/2``-th
    strided cycle — no phase states needed.  Period 1 allows mid-vector
    starts, handled by wildcard-prefixed phase states.
    """
    if automaton.start_period != 1 and automaton.start_period % 2 != 0:
        raise TransformError(
            "cannot square an automaton with odd start period %d"
            % automaton.start_period
        )
    def build():
        result = _square(automaton, minimized, name).validate()
        if minimized:
            # Cache-layer bookkeeping, deliberately outside the kernel:
            # mark the fresh build minimal so later minimize() calls on
            # the same machine (same fingerprint) short-circuit.
            from ..automata.ops import _record_minimal

            _record_minimal(result.fingerprint())
        return result

    return memoize("square", automaton, build,
                   minimized=minimized, name=name)


@gc_paused
def _square(automaton, minimized, name):
    """Indexed squaring kernel (see :func:`square_unindexed` for the
    construction walkthrough; this builds the same machine).

    The whole construction runs on dense integers.  Pair/remnant/phase
    states are rows in flat parallel arrays — ``(first, second)`` source
    index pairs, nothing else: no id strings, no dict keys, no
    :class:`Ste` objects.  Creation never needs a dedup map because each
    row key occurs exactly once (pairs come off unique edges, remnants
    and phase states once per source state), and a source state's rows
    are consecutive, so its legacy ``entry_points`` list is just a
    ``range``.  The transition fan-out list of each second half is
    *shared* (one list object per source state) rather than copied into
    per-row sets, pruning is a flat-flag BFS over those rows, and only
    the surviving states ever get an id string or an STE.  Behaviour
    signatures — needed only by minimization — are interned for
    survivors from the source halves' interned symbol tuples (equality
    of the ``(first-half, second-half)`` id pairs is exactly equality of
    the materialized ``Ste.behavior_key()``s, since the concatenation
    split point is fixed at ``arity``).

    Creation order, the ``succ_entries`` fan-out order, the reachability
    semantics, and the minimization algorithm all replay the legacy
    kernel exactly, so the output is bit-identical —
    ``tests/test_indexed.py`` pins ``dumps()`` equality.
    """
    period = automaton.start_period
    arity = automaton.arity
    full = SymbolSet.full(automaton.bits)
    wildcard_half = (full,) * arity
    result_name = name if name is not None else automaton.name + ".x2"
    result_period = max(1, period // 2)

    src = IndexedAutomaton.from_automaton(automaton, light=True)
    src_ids = src.ids
    src_stes = src.stes
    src_start_kind = src.start_kind
    src_is_start = src.is_start
    src_succ = src.succ
    n = src.n

    # ------------------------------------------------------------------
    # Creation: parallel (first, second) arrays, in legacy order —
    # pairs off each source state's raw successor order, then its
    # remnant, then (period 1 only) one phase state per ALL_INPUT start.
    # ------------------------------------------------------------------
    r_first = []   # source index of the first half, -1 for $any
    r_second = []  # source index of the second half, -1 for $end
    entry_points = {}  # first-half source index -> row range, in order
    report_flags = [ste.report for ste in src_stes]
    row = 0
    for i in range(n):
        base = row
        edges = src_succ[i]  # raw order, as captured by the index
        if edges:
            row += len(edges)
            r_second += edges
        if report_flags[i]:
            r_second.append(-1)
            row += 1
        if row > base:
            r_first += (i,) * (row - base)
            entry_points[i] = range(base, row)
        # A start state with no successors and no report would be inert, but
        # a *start* state that only reports is covered by its remnant above.
    if period == 1:
        for i in range(n):
            if src_start_kind[i] is StartKind.ALL_INPUT:
                r_first.append(-1)
                r_second.append(i)
                row += 1
    m = row

    # Coarse progress: m units for the transition fan-out, m for the
    # pruning+minimization fixpoint, m for materialization.  Near-free
    # when no collector is attached and REPRO_PROGRESS is unset.
    progress = ProgressReporter("transform", 3 * m, detail=result_name)

    # ------------------------------------------------------------------
    # Transitions: (x, s) -> every state whose first half is in succ(s).
    # The flattened entry-point list of each second half is built once
    # and the *same list object* is every such row's successor row
    # (fan-out order: successors sorted by their string ids, matching
    # the legacy kernel; row contents are duplicate-free by
    # construction, so set semantics are unaffected).  One dict maps
    # every distinct second half to its list, so assigning all m rows is
    # a single C-level ``map``.
    # ------------------------------------------------------------------
    EMPTY = ()
    succ_entries = {-1: EMPTY}
    get_entries = entry_points.get
    for second in set(r_second):
        if second >= 0:
            followers = src_succ[second]
            if len(followers) == 1:
                # Dominant case (pattern chains): one follower needs no
                # sort, and its range flattens in C.
                succ_entries[second] = list(
                    get_entries(followers[0], EMPTY))
            else:
                succ_entries[second] = [
                    t
                    for follower in sorted(followers,
                                           key=src_ids.__getitem__)
                    for t in get_entries(follower, EMPTY)
                ]
    succ_rows = list(map(succ_entries.__getitem__, r_second))
    progress.update(m // 2)

    # ------------------------------------------------------------------
    # Prune: forward reachability from start rows (phase states and rows
    # whose first half is a start state — the same start set the legacy
    # kernel's Automaton.prune_unreachable walks).
    # ------------------------------------------------------------------
    seen = bytearray(m)
    work = []
    push = work.append
    for r, f in enumerate(r_first):
        if f < 0 or src_is_start[f]:
            seen[r] = 1
            push(r)
    while work:
        for t in succ_rows[work.pop()]:
            if not seen[t]:
                seen[t] = 1
                push(t)
    alive_rows = [r for r in range(m) if seen[r]]
    progress.update(m)

    # Predecessor rows, survivors only (a survivor's successors are all
    # survivors, so dead rows never need unlinking).
    pred_rows = [EMPTY] * m
    for r in alive_rows:
        for t in succ_rows[r]:
            p = pred_rows[t]
            if p:
                p.append(r)
            else:
                pred_rows[t] = [r]

    # Second-half payload — (arity-shifted report offsets, code-if-report,
    # report flag) — computed once per distinct source state on demand and
    # shared between behaviour interning and boundary materialization.
    sec_info = [None] * n
    ALL_INPUT_KIND = StartKind.ALL_INPUT

    behavior = None
    is_start_rows = None
    if minimized:
        # Behaviour ids for survivors (minimization's screen signature).
        # Two pair states have equal materialized behavior_key()s exactly
        # when their first halves agree on (symbols, start) and their
        # second halves agree on (symbols, shifted offsets, code): the
        # concatenation split point is fixed at ``arity``, and a
        # non-reporting STE carries code None by invariant.  So each
        # half is interned once per *source state* (hashing its symbol
        # tuple once, lazily) and every row's key is a pure int pair —
        # probed without Python hash/eq callbacks.  A phase state shares
        # the first-half entry ``(wildcard, ALL_INPUT)`` with any real
        # first half it would legally merge with.  Remnants live in
        # their own ``(-1, id)`` range: their report offsets are below
        # ``arity`` and non-empty, which no pair or phase state matches.
        f_intern = {}
        s_intern = {}
        rem_intern = {}
        bfirst = [None] * n
        bsec = [None] * n
        bf_any = None
        behavior_intern = {}
        behavior = [None] * m
        is_start_rows = bytearray(m)
        for r in alive_rows:
            f = r_first[r]
            s = r_second[r]
            if s >= 0:
                bs = bsec[s]
                if bs is None:
                    ste = src_stes[s]
                    offs = ste.report_offsets
                    info = sec_info[s] = (
                        (tuple(arity + o for o in offs),
                         ste.report_code, True)
                        if offs else (EMPTY, None, False))
                    key = (ste.symbols, info[0], info[1])
                    bs = s_intern.get(key)
                    if bs is None:
                        bs = s_intern[key] = len(s_intern)
                    bsec[s] = bs
                if f >= 0:
                    bf = bfirst[f]
                    if bf is None:
                        key = (src_stes[f].symbols, src_start_kind[f])
                        bf = f_intern.get(key)
                        if bf is None:
                            bf = f_intern[key] = len(f_intern)
                        bfirst[f] = bf
                    started = src_is_start[f]
                else:
                    if bf_any is None:
                        key = (wildcard_half, ALL_INPUT_KIND)
                        bf_any = f_intern.get(key)
                        if bf_any is None:
                            bf_any = f_intern[key] = len(f_intern)
                    bf = bf_any
                    started = True
                bkey = (bf, bs)
            else:
                ste = src_stes[f]
                key = (ste.symbols, ste.start, ste.report_code,
                       ste.report_offsets)
                br = rem_intern.get(key)
                if br is None:
                    br = rem_intern[key] = len(rem_intern)
                bkey = (-1, br)
                started = src_is_start[f]
            bid = behavior_intern.get(bkey)
            if bid is None:
                bid = behavior_intern[bkey] = len(behavior_intern)
            behavior[r] = bid
            if started:
                is_start_rows[r] = 1

    res = IndexedAutomaton.from_parts(
        result_name, automaton.bits, 2 * arity, result_period,
        succ_rows, pred_rows, seen,
        behavior=behavior, is_start=is_start_rows)
    removed = res.minimize() if minimized else 0
    alive_final = alive_rows if not removed else res.alive_indices()
    progress.update(2 * m)

    # ------------------------------------------------------------------
    # Boundary materialization: id strings and STEs exist only for
    # surviving states.
    # ------------------------------------------------------------------
    rid = [None] * m
    for r in alive_final:
        f = r_first[r]
        s = r_second[r]
        rid[r] = "(%s|%s)" % (src_ids[f] if f >= 0 else _ANY,
                              src_ids[s] if s >= 0 else _END)
    rid_get = rid.__getitem__
    res_succ = res.succ
    res_pred = res.pred
    states = {}
    succ_d = {}
    pred_d = {}
    for r in alive_final:
        f = r_first[r]
        s = r_second[r]
        if s >= 0:
            info = sec_info[s]
            if info is None:
                ste = src_stes[s]
                offs = ste.report_offsets
                info = sec_info[s] = (
                    (tuple(arity + o for o in offs), ste.report_code, True)
                    if offs else (EMPTY, None, False))
            offsets, code, report = info
            if f >= 0:
                label = src_stes[f].symbols + src_stes[s].symbols
                start = src_start_kind[f]
            else:
                label = wildcard_half + src_stes[s].symbols
                start = ALL_INPUT_KIND
        else:
            ste = src_stes[f]
            label = ste.symbols + wildcard_half
            offsets = ste.report_offsets
            code = ste.report_code
            start = ste.start
            report = True
        state_id = rid[r]
        states[state_id] = ste_from_canonical(
            state_id, label, start, report, code, offsets)
        succ_d[state_id] = set(map(rid_get, res_succ[r]))
        pred_d[state_id] = set(map(rid_get, res_pred[r]))
    result = Automaton._from_graph(
        result_name, automaton.bits, 2 * arity, result_period,
        states, succ_d, pred_d)
    progress.finish()
    if OBS.active:
        OBS.instruments.transform_states.labels(op="square").set(len(result))
    # No validate() here: every invariant it checks holds by construction
    # (canonical STEs from validated sources, mirrored succ/pred rows,
    # freshly pruned reachability), and the production entry (``square``)
    # still validates each fresh build.  The differential suite pins the
    # kernel's output byte-identical to the oracle's.
    return result


@gc_paused
def square_unindexed(automaton, minimized=True, name=None):
    """The direct string-graph squaring kernel (differential oracle).

    Builds pair/remnant/phase states straight onto an
    :class:`Automaton` exactly as the pre-indexed implementation did;
    :func:`square` routes through the indexed kernel and
    ``tests/test_indexed.py`` pins the two bit-identical.  Unmemoized —
    callers wanting the cache go through :func:`square`.
    """
    from ..automata.ops import minimize_unindexed

    period = automaton.start_period
    arity = automaton.arity
    full = SymbolSet.full(automaton.bits)
    wildcard_half = (full,) * arity
    result = Automaton(
        name=name if name is not None else automaton.name + ".x2",
        bits=automaton.bits,
        arity=2 * arity,
        start_period=max(1, period // 2),
    )

    # ------------------------------------------------------------------
    # States.  Keyed by (first, second) where either may be a sentinel.
    # ------------------------------------------------------------------
    new_ids = {}
    entry_points = {}  # source id f -> list of new ids whose first half is f

    def add(first_state, second_state):
        """Create one strided state; returns its id."""
        first_id = first_state.id if first_state is not None else _ANY
        second_id = second_state.id if second_state is not None else _END
        key = (first_id, second_id)
        if key in new_ids:
            return new_ids[key]
        new_id = "(%s|%s)" % key

        if second_state is None:
            # Remnant: first half's reports, wildcard second half.
            label = first_state.symbols + wildcard_half
            offsets = first_state.report_offsets
            code = first_state.report_code
            start = first_state.start
        elif first_state is None:
            # Phase state: wildcard first half, real second half.
            label = wildcard_half + second_state.symbols
            offsets = tuple(arity + o for o in second_state.report_offsets)
            code = second_state.report_code
            start = StartKind.ALL_INPUT
        else:
            label = first_state.symbols + second_state.symbols
            offsets = tuple(arity + o for o in second_state.report_offsets)
            code = second_state.report_code
            start = first_state.start

        result.new_state(
            new_id,
            label,
            start=start,
            report=bool(offsets),
            report_code=code,
            report_offsets=offsets if offsets else None,
        )
        new_ids[key] = new_id
        if first_state is not None:
            entry_points.setdefault(first_state.id, []).append(new_id)
        return new_id

    for state in automaton:
        for successor_id in automaton.successors(state.id):
            add(state, automaton.state(successor_id))
        if state.report:
            add(state, None)
        # A start state with no successors and no report would be inert, but
        # a *start* state that only reports is covered by its remnant above.
    if period == 1:
        for state in automaton.start_states():
            if state.start is StartKind.ALL_INPUT:
                add(None, state)

    # ------------------------------------------------------------------
    # Transitions: (x, s) -> every state whose first half is in succ(s).
    # The flattened entry-point list of each second half is computed once
    # and shared by every pair state ending in it, instead of walking
    # successors() and probing entry_points per source edge.
    # ------------------------------------------------------------------
    succ_entries = {}  # source id s -> new ids entered from succ(s)
    for (first_id, second_id), new_src in new_ids.items():
        if second_id == _END:
            continue
        targets = succ_entries.get(second_id)
        if targets is None:
            targets = succ_entries[second_id] = [
                new_dst
                for follower in sorted(automaton.successors(second_id))
                for new_dst in entry_points.get(follower, ())
            ]
        for new_dst in targets:
            result.add_transition(new_src, new_dst)

    result.prune_unreachable()
    if minimized:
        minimize_unindexed(result)
    # Symmetric with the indexed kernel: neither validates, so timing one
    # against the other compares construction work only.
    return result


def stride(automaton, factor, minimized=True):
    """Stride by ``factor`` (a power of two) via repeated squaring.

    Only the *final* machine is minimized: intermediate squarings are
    pruned of unreachable states but skip minimization, since the final
    partition refinement subsumes any merging an intermediate pass would
    have done and the per-squaring passes dominated striding cost.
    """
    if factor < 1 or factor & (factor - 1):
        raise TransformError("stride factor must be a power of two, got %r" % factor)

    def build():
        current = automaton
        applied = 1
        while applied < factor:
            applied *= 2
            current = square(
                current, minimized=minimized and applied >= factor)
        if current is automaton:
            # Factor 1 is a rename-only pass: share the (immutable)
            # STEs instead of deep-copying the whole machine.
            current = automaton.shallow_clone()
        current.name = automaton.name + (".x%d" % factor if factor > 1 else "")
        return current

    return memoize("stride", automaton, build,
                   factor=factor, minimized=minimized)


def verify_offset_invariant(automaton):
    """Check that label positions after each report offset are wildcards.

    Raises :class:`TransformError` on violation.  This invariant is what
    guarantees interior-offset reports never depend on future input.
    """
    for state in automaton:
        if not state.report:
            continue
        for offset in state.report_offsets:
            for position in range(offset + 1, state.arity):
                if not state.symbols[position].is_full():
                    raise TransformError(
                        "state %r reports at offset %d but position %d is "
                        "not a wildcard" % (state.id, offset, position)
                    )
    return True
