"""Synthetic stand-ins for the ANMLZoo / Regex benchmark suites."""

from .base import WorkloadInstance, WorkloadRandom, build_input
from .mesh import build_hamming, build_levenshtein, hamming_automaton, levenshtein_automaton
from .registry import (
    BENCHMARK_NAMES,
    PAPER_TABLE1,
    PAPER_TABLE3_AVERAGES,
    PAPER_TABLE4,
    generate,
    generate_all,
)
from .snort_rules import compile_rules as compile_snort_rules
from .snort_rules import parse_rules as parse_snort_rules
from .synthetic import synthetic_workload
from .widgets import build_spm, chain_automaton, spm_automaton

__all__ = [
    "BENCHMARK_NAMES",
    "PAPER_TABLE1",
    "PAPER_TABLE3_AVERAGES",
    "PAPER_TABLE4",
    "WorkloadInstance",
    "WorkloadRandom",
    "build_hamming",
    "build_input",
    "build_levenshtein",
    "build_spm",
    "chain_automaton",
    "compile_snort_rules",
    "parse_snort_rules",
    "synthetic_workload",
    "generate",
    "generate_all",
    "hamming_automaton",
    "levenshtein_automaton",
    "spm_automaton",
]
