"""Workload-generation machinery.

We do not have ANMLZoo's ANML files or its 1MB input streams, so each
benchmark is *synthesized*: an automaton family with the paper's static
structure (state count, report-state fraction, symbol density flavour)
plus an input stream *planted* to reproduce the paper's dynamic reporting
statistics (Table 1: report-cycle % and reports per report cycle).

Key design decisions:

- **Cold rules** give the automaton its bulk.  They are drawn over a
  disjoint byte range from the input alphabet, so they never fire: like
  real rulesets (virus signatures, intrusion rules), the overwhelming
  majority of patterns stay idle.
- **Hot rules** have known witness strings.  The planner overwrites noise
  with witnesses at a Poisson rate chosen to hit the target report-cycle
  fraction; *burst groups* are sets of rules sharing one witness, so a
  single plant yields many same-cycle reports (SPM-style density).
- Everything is deterministic given ``(scale, seed)``.
"""

import math
import random

from ..automata.ops import union
from ..errors import WorkloadError
from ..regex.compiler import compile_pattern
from ..sim.stats import reporting_behavior

#: Bytes reserved for cold (never-matching) rules.
COLD_ALPHABET = bytes(range(0x80, 0xC0))
#: Default input alphabet for noise (printable ASCII subset).
NOISE_ALPHABET = b"abcdefghijklmnopqrstuvwxyz 0123456789"

#: Input bytes at scale 1.0 (the paper streams 1MB).
FULL_INPUT_BYTES = 1_000_000


class WorkloadInstance:
    """One generated benchmark: automaton + input + provenance."""

    def __init__(self, name, family, automaton, input_bytes, paper_row=None):
        self.name = name
        self.family = family
        self.automaton = automaton
        self.input_bytes = input_bytes
        #: The paper's Table 1 row for this benchmark (reference values).
        self.paper_row = paper_row or {}

    def measured_behavior(self):
        """Simulate and return the Table 1 row for this instance."""
        row = reporting_behavior(self.automaton, list(self.input_bytes))
        row["benchmark"] = self.name
        row["family"] = self.family
        row["input_bytes"] = len(self.input_bytes)
        return row

    def __repr__(self):
        return "WorkloadInstance(%s, states=%d, input=%dB)" % (
            self.name, len(self.automaton), len(self.input_bytes),
        )


class WorkloadRandom(random.Random):
    """Seeded RNG with the helpers the generators share."""

    def literal(self, length, alphabet):
        """Random literal string over ``alphabet``."""
        return bytes(self.choice(alphabet) for _ in range(length))

    def cold_literal(self, length):
        """Random literal guaranteed never to appear in the input."""
        return self.literal(length, COLD_ALPHABET)


def escape_literal(data):
    """Escape a byte string into regex-literal form (hex escapes)."""
    return "".join("\\x%02x" % byte for byte in data)


def poisson_positions(rng, input_length, count, witness_length):
    """``count`` approximately-uniform plant positions, non-overlapping.

    Positions are end-aligned slots; raises :class:`WorkloadError` when
    the requested density cannot fit.
    """
    if count == 0:
        return []
    slot = witness_length + 1
    available = input_length // slot
    if count > available:
        raise WorkloadError(
            "cannot plant %d witnesses of %dB in %dB of input"
            % (count, witness_length, input_length)
        )
    chosen = rng.sample(range(available), count)
    return sorted(index * slot for index in chosen)


def build_input(rng, input_length, plants, noise_alphabet=NOISE_ALPHABET,
                noise_weights=None):
    """Noise stream with witnesses planted at the given positions.

    ``plants`` is a list of ``(position, witness_bytes)``; later plants
    overwrite earlier ones on overlap (the measured statistics absorb
    collisions).
    """
    if noise_weights is None:
        buffer = bytearray(
            rng.choice(noise_alphabet) for _ in range(input_length)
        )
    else:
        buffer = bytearray(
            rng.choices(noise_alphabet, weights=noise_weights,
                        k=input_length)
        )
    for position, witness in plants:
        end = position + len(witness)
        if end > input_length:
            continue
        buffer[position:end] = witness
    return bytes(buffer)


def burst_group_patterns(witness, group_size, rng):
    """``group_size`` distinct patterns that all match ``witness``.

    Each pattern is the witness with one position widened into a
    two-character class, so one planted witness fires every pattern in
    the group on the same cycle.
    """
    if not witness:
        raise WorkloadError("burst witness must be non-empty")
    patterns = [escape_literal(witness)]
    seen = {patterns[0]}
    attempts = 0
    while len(patterns) < group_size:
        attempts += 1
        if attempts > group_size * 50:
            raise WorkloadError(
                "could not derive %d distinct burst patterns" % group_size
            )
        position = rng.randrange(len(witness))
        alternate = rng.choice(COLD_ALPHABET)
        body = (
            escape_literal(witness[:position])
            + "[%s\\x%02x]" % (escape_literal(witness[position:position + 1]),
                               alternate)
            + escape_literal(witness[position + 1:])
        )
        if body not in seen:
            seen.add(body)
            patterns.append(body)
    return patterns


def grow_cold_rules(rng, pattern_factory, state_budget, name):
    """Compile cold rules until ``state_budget`` states are reached.

    ``pattern_factory(rng)`` returns one regex string over the cold
    alphabet.  Returns a list of compiled automata.
    """
    rules = []
    total = 0
    guard = 0
    while total < state_budget:
        guard += 1
        if guard > state_budget * 4 + 1000:
            raise WorkloadError("cold-rule growth for %s did not converge" % name)
        pattern = pattern_factory(rng)
        rule = compile_pattern(
            pattern, name="%s_cold%d" % (name, len(rules)),
            report_code="%s/cold%d" % (name, len(rules)),
        )
        rules.append(rule)
        total += len(rule)
    return rules


def assemble(name, rules, bits=8):
    """Union rule automata into the final benchmark machine."""
    if not rules:
        raise WorkloadError("benchmark %s has no rules" % name)
    machine = union(rules, name=name, bits=bits)
    machine.validate()
    return machine


def scaled(value, scale, minimum=1):
    """Scale a paper-sized quantity, keeping at least ``minimum``."""
    return max(minimum, int(round(value * scale)))


def plant_schedule(rng, input_length, report_cycle_pct, witness, scale,
                   absolute_reports=None):
    """Plant positions hitting a target report-cycle percentage.

    For near-zero benchmarks pass ``absolute_reports`` (the paper's raw
    report count for 1MB); it is scaled down but kept >= 1.
    """
    if absolute_reports is not None:
        count = scaled(absolute_reports, scale)
    else:
        count = int(round(input_length * report_cycle_pct / 100.0))
    count = min(count, max(1, input_length // (len(witness) + 1)))
    positions = poisson_positions(rng, input_length, count, len(witness))
    return [(position, witness) for position in positions]


def infer_noise_budget(scale):
    """Input length in bytes for a given scale."""
    length = int(FULL_INPUT_BYTES * scale)
    if length < 64:
        raise WorkloadError("scale %r yields a degenerate input" % scale)
    return length


def pattern_depth_for(states_target, n_patterns):
    """Average pattern length needed for a state budget."""
    return max(2, int(math.ceil(states_target / max(1, n_patterns))))
