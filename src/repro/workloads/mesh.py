"""Mesh-family workloads: Hamming and Levenshtein distance automata.

ANMLZoo's "Mesh" benchmarks are hand-built approximate string-matching
automata.  We construct them directly (not via regex): a pattern of
length ``L`` at distance ``d`` unrolls into a mesh of (position, errors)
states.  Inputs are random, so — as the paper observes — only a handful
of strings land within the scoring metric and reports are rare.
"""

from ..automata.automaton import Automaton
from ..automata.ste import StartKind
from ..automata.symbolset import SymbolSet
from ..errors import WorkloadError
from .base import (
    WorkloadInstance,
    WorkloadRandom,
    build_input,
    infer_noise_budget,
    poisson_positions,
    scaled,
)

#: DNA-ish alphabet used by the approximate-matching benchmarks.
MESH_ALPHABET = b"ACGT"


def hamming_automaton(pattern, distance, name, report_code):
    """Hamming-distance mesh for one pattern.

    States ``M(i, e)`` / ``X(i, e)`` mean "consumed ``i+1`` characters
    with ``e`` mismatches, the last character matched / mismatched".
    """
    length = len(pattern)
    if length < 2:
        raise WorkloadError("mesh pattern must have length >= 2")
    if distance < 0 or distance >= length:
        raise WorkloadError("distance %d out of range" % distance)
    automaton = Automaton(name=name, bits=8)

    def add(kind, i, e):
        state_id = "%s%d_%d" % (kind, i, e)
        if state_id in automaton:
            return state_id
        char_set = SymbolSet.single(8, pattern[i])
        symbols = char_set if kind == "M" else ~char_set
        automaton.new_state(
            state_id,
            symbols,
            start=StartKind.START_OF_DATA if i == 0 else StartKind.NONE,
            report=i == length - 1,
            report_code=report_code if i == length - 1 else None,
        )
        return state_id

    # Breadth-first over reachable (kind, i, e) configurations.
    frontier = [("M", 0, 0)]
    if distance >= 1:
        frontier.append(("X", 0, 1))
    for kind, i, e in frontier:
        add(kind, i, e)
    seen = set(frontier)
    while frontier:
        kind, i, e = frontier.pop()
        if i + 1 >= length:
            continue
        source = "%s%d_%d" % (kind, i, e)
        successors = [("M", i + 1, e)]
        if e + 1 <= distance:
            successors.append(("X", i + 1, e + 1))
        for succ in successors:
            target = add(*succ)
            automaton.add_transition(source, target)
            if succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return automaton.validate()


def levenshtein_automaton(pattern, distance, name, report_code):
    """Levenshtein (edit-distance) mesh for one pattern.

    Homogeneous construction with three state kinds per (position,
    errors) configuration — match ``M``, substitution ``S``, insertion
    ``I`` — and deletions folded in as epsilon closure over
    configurations (a deletion advances the position and spends an error
    without consuming input).
    """
    length = len(pattern)
    if length < 2:
        raise WorkloadError("mesh pattern must have length >= 2")
    if distance < 0:
        raise WorkloadError("distance must be non-negative")
    automaton = Automaton(name=name, bits=8)

    def closure(position, errors):
        """Configurations reachable via deletions from (position, errors)."""
        configs = []
        k = 0
        while position + k <= length and errors + k <= distance:
            configs.append((position + k, errors + k))
            k += 1
        return configs

    def reports_from(position, errors):
        """True when (position, errors) can reach the end via deletions."""
        return (length - position) + errors <= distance

    def add(kind, i, e):
        """State for 'consumed a char of `kind` at position i, e errors'."""
        state_id = "%s%d_%d" % (kind, i, e)
        if state_id in automaton:
            return state_id
        if kind == "M":
            symbols, after = SymbolSet.single(8, pattern[i]), (i + 1, e)
        elif kind == "S":
            symbols, after = ~SymbolSet.single(8, pattern[i]), (i + 1, e)
        else:  # insertion: any character, position unchanged (i may == L)
            symbols, after = SymbolSet.full(8), (i, e)
        report = reports_from(*after)
        automaton.new_state(
            state_id,
            symbols,
            report=report,
            report_code=report_code if report else None,
        )
        return state_id

    def consume_targets(position, errors):
        """Homogeneous states reachable by consuming one character."""
        targets = []
        for p, e in closure(position, errors):
            if p < length:
                targets.append(("M", p, e))
                if e + 1 <= distance:
                    targets.append(("S", p, e + 1))
            if e + 1 <= distance:
                targets.append(("I", p, e + 1))
        return targets

    frontier = list(dict.fromkeys(consume_targets(0, 0)))
    for kind, i, e in frontier:
        state_id = add(kind, i, e)
        automaton.state(state_id).start = StartKind.START_OF_DATA
    seen = set(frontier)
    queue = list(frontier)
    while queue:
        kind, i, e = queue.pop()
        source = "%s%d_%d" % (kind, i, e)
        after = (i, e) if kind == "I" else (i + 1, e)
        for succ in consume_targets(*after):
            target = add(*succ)
            automaton.add_transition(source, target)
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return automaton.validate()


def _mesh_workload(name, builder, distance, paper_states, paper_reports,
                   scale, seed, paper_row):
    """Shared skeleton for the two mesh benchmarks."""
    rng = WorkloadRandom(seed)
    input_length = infer_noise_budget(scale)
    states_target = scaled(paper_states, scale, minimum=48)

    machines = []
    witnesses = []
    total = 0
    index = 0
    # Long patterns keep the report-state fraction low (reports only live
    # on the final mesh level), matching the paper's ~1.6-3.4%.
    while total < states_target:
        pattern = rng.literal(rng.randint(32, 48), MESH_ALPHABET)
        machine = builder(
            pattern, distance, "%s_%d" % (name, index), "%s/%d" % (name, index)
        )
        machines.append(machine)
        witnesses.append(pattern)
        total += len(machine)
        index += 1

    from .base import assemble
    automaton = assemble(name, machines)

    # Meshes are start-of-data anchored: a report needs a near-match at
    # the very beginning of the stream.  Plant one witness (possibly
    # mutated within the distance budget) at position zero.
    plant_count = scaled(paper_reports, scale)
    witness = bytearray(witnesses[0])
    for _ in range(min(distance, 1)):
        position = rng.randrange(len(witness))
        witness[position] = rng.choice(MESH_ALPHABET)
    plants = [(0, bytes(witness))] if plant_count else []
    data = build_input(
        rng, input_length, plants, noise_alphabet=MESH_ALPHABET
    )
    return WorkloadInstance(name, "Mesh", automaton, data, paper_row)


def build_hamming(scale=0.02, seed=0, paper_row=None):
    """ANMLZoo Hamming stand-in (paper: 11346 states, 2 reports)."""
    return _mesh_workload(
        "Hamming", hamming_automaton, 2, 11346, 2, scale, seed, paper_row
    )


def build_levenshtein(scale=0.02, seed=0, paper_row=None):
    """ANMLZoo Levenshtein stand-in (paper: 2784 states, 4 reports)."""
    return _mesh_workload(
        "Levenshtein", levenshtein_automaton, 1, 2784, 4, scale, seed, paper_row
    )
