"""Regex-family workloads (ANMLZoo + Becchi Regex suite stand-ins).

Each builder synthesizes a ruleset whose *static* shape follows Table 1
(state count, report-state fraction via rule length, symbol-density
flavour) and whose *dynamic* behaviour is reproduced by planting hot-rule
witnesses at the published rates.  Cold rules live on a disjoint byte
range and never fire — exactly the behaviour of real signature sets,
where almost all rules stay idle on benign traffic.
"""

from ..regex.compiler import compile_pattern
from .base import (
    WorkloadInstance,
    WorkloadRandom,
    assemble,
    build_input,
    burst_group_patterns,
    escape_literal,
    grow_cold_rules,
    infer_noise_budget,
    plant_schedule,
    poisson_positions,
    scaled,
)

# ----------------------------------------------------------------------
# Cold-rule pattern factories (all over the 0x80-0xBF cold range).
# ----------------------------------------------------------------------

def _cold_literal_factory(mean_length):
    """Plain literal signatures (ExactMatch / ClamAV flavour)."""
    def factory(rng):
        length = max(2, int(rng.gauss(mean_length, mean_length * 0.2)))
        return escape_literal(rng.cold_literal(length))
    return factory


def _cold_dotstar_factory(mean_length, dotstar_count):
    """``prefix .* infix .* suffix`` signatures (Dotstar flavour)."""
    def factory(rng):
        segments = dotstar_count + 1
        per = max(2, mean_length // segments)
        parts = [escape_literal(rng.cold_literal(per)) for _ in range(segments)]
        return ".*".join(parts)
    return factory


def _cold_ranges_factory(mean_length, range_density):
    """Literals with interspersed ranges (Ranges05 / Ranges1 flavour)."""
    def factory(rng):
        length = max(3, int(rng.gauss(mean_length, 2)))
        parts = []
        for _ in range(length):
            if rng.random() < range_density:
                low = rng.randint(0x80, 0xB0)
                high = rng.randint(low, min(0xBF, low + 12))
                parts.append("[\\x%02x-\\x%02x]" % (low, high))
            else:
                parts.append(escape_literal(rng.cold_literal(1)))
        return "".join(parts)
    return factory


def _cold_complex_factory(mean_length):
    """PowerEN-style rules: classes, bounded repeats, alternation."""
    def factory(rng):
        pieces = []
        budget = max(4, int(rng.gauss(mean_length, 3)))
        while budget > 0:
            roll = rng.random()
            if roll < 0.55:
                run = min(budget, rng.randint(1, 4))
                pieces.append(escape_literal(rng.cold_literal(run)))
                budget -= run
            elif roll < 0.75:
                low = rng.randint(0x80, 0xB0)
                high = min(0xBF, low + rng.randint(2, 10))
                reps = min(budget, rng.randint(1, 3))
                pieces.append("[\\x%02x-\\x%02x]{%d}" % (low, high, reps))
                budget -= reps
            elif roll < 0.9:
                a = escape_literal(rng.cold_literal(2))
                b = escape_literal(rng.cold_literal(2))
                pieces.append("(%s|%s)" % (a, b))
                budget -= 2
            else:
                pieces.append(escape_literal(rng.cold_literal(1)) + "+")
                budget -= 1
        return "".join(pieces)
    return factory


# ----------------------------------------------------------------------
# Generic single-witness benchmark skeleton.
# ----------------------------------------------------------------------

def _single_witness_workload(
    name, rng, scale, paper_states, report_cycle_pct, witness,
    cold_factory, paper_row, absolute_reports=None, family="Regex",
):
    input_length = infer_noise_budget(scale)
    states_target = scaled(paper_states, scale, minimum=40)
    hot = compile_pattern(
        escape_literal(witness), name="%s_hot" % name,
        report_code="%s/hot" % name,
    )
    cold = grow_cold_rules(
        rng, cold_factory, max(0, states_target - len(hot)), name
    )
    automaton = assemble(name, [hot] + cold)
    if report_cycle_pct > 0.0 or absolute_reports:
        plants = plant_schedule(
            rng, input_length, report_cycle_pct, witness, scale,
            absolute_reports=absolute_reports,
        )
    else:
        plants = []
    data = build_input(rng, input_length, plants)
    return WorkloadInstance(name, family, automaton, data, paper_row)


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------

def build_brill(scale=0.02, seed=0, paper_row=None):
    """Brill tagging rules: frequent reports in ~9-wide bursts."""
    rng = WorkloadRandom(seed)
    input_length = infer_noise_budget(scale)
    states_target = scaled(42_658, scale, minimum=200)

    # Short word-like witnesses: Brill reports on 11% of cycles, so the
    # planted triggers must pack densely into the stream.
    witness = b"jumped"
    group = burst_group_patterns(witness, 10, rng)
    hot_rules = [
        compile_pattern(body, name="brill_hot%d" % index,
                        report_code="Brill/h%d" % index)
        for index, body in enumerate(group)
    ]
    single_witness = b"tagged"
    hot_rules.append(compile_pattern(
        escape_literal(single_witness), name="brill_single",
        report_code="Brill/single",
    ))
    cold = grow_cold_rules(
        rng, _cold_literal_factory(22),
        max(0, states_target - sum(len(r) for r in hot_rules)), "brill",
    )
    automaton = assemble("Brill", hot_rules + cold)

    # 11.33% report cycles; 91% of them are 10-wide bursts.
    total_plants = int(round(input_length * 11.33 / 100.0))
    burst_plants = int(total_plants * 0.91)
    single_plants = max(1, total_plants - burst_plants)
    positions = poisson_positions(
        rng, input_length, burst_plants + single_plants, len(witness)
    )
    plants = [(p, witness) for p in positions[:burst_plants]]
    plants += [(p, single_witness) for p in positions[burst_plants:]]
    data = build_input(rng, input_length, plants)
    return WorkloadInstance("Brill", "Regex", automaton, data, paper_row)


def build_bro217(scale=0.02, seed=0, paper_row=None):
    """Bro IDS rules: sparse single reports at ~1.6% of cycles."""
    return _single_witness_workload(
        "Bro217", WorkloadRandom(seed), scale, 2312, 1.64,
        b"get /cgi-bin/phf?", _cold_literal_factory(11), paper_row,
    )


def _build_dotstar(name, paper_states, reports, seed, scale, paper_row,
                   dotstar_count):
    rng = WorkloadRandom(seed)
    return _single_witness_workload(
        name, rng, scale, paper_states, 0.0,
        b"evil payload marker", _cold_dotstar_factory(38, dotstar_count),
        paper_row, absolute_reports=reports,
    )


def build_dotstar03(scale=0.02, seed=0, paper_row=None):
    """Dotstar03: nearly silent (1 report over the whole stream)."""
    return _build_dotstar("Dotstar03", 12_144, 1, seed, scale, paper_row, 1)


def build_dotstar06(scale=0.02, seed=1, paper_row=None):
    """Dotstar06: nearly silent (2 reports)."""
    return _build_dotstar("Dotstar06", 12_640, 2, seed, scale, paper_row, 2)


def build_dotstar09(scale=0.02, seed=2, paper_row=None):
    """Dotstar09: nearly silent (2 reports)."""
    return _build_dotstar("Dotstar09", 12_431, 2, seed, scale, paper_row, 3)


def build_exactmatch(scale=0.02, seed=0, paper_row=None):
    """ExactMatch: literal signatures, 35 reports per MB."""
    return _single_witness_workload(
        "ExactMatch", WorkloadRandom(seed), scale, 12_439, 0.0,
        b"exact needle", _cold_literal_factory(40), paper_row,
        absolute_reports=35,
    )


def build_poweren(scale=0.02, seed=0, paper_row=None):
    """PowerEN: complex rules, 0.41% report cycles."""
    return _single_witness_workload(
        "PowerEN", WorkloadRandom(seed), scale, 40_513, 0.41,
        b"xml <event/>", _cold_complex_factory(11), paper_row,
    )


def build_protomata(scale=0.02, seed=0, paper_row=None):
    """Protomata: protein motifs, 10.08% report cycles, 1.21 reports each."""
    rng = WorkloadRandom(seed)
    input_length = infer_noise_budget(scale)
    states_target = scaled(42_009, scale, minimum=200)
    protein = b"ACDEFGHIKLMNPQRSTVWY"

    witness_single = rng.literal(6, protein)
    witness_pair = rng.literal(6, protein)
    pair_patterns = burst_group_patterns(witness_pair, 2, rng)
    hot_rules = [compile_pattern(
        escape_literal(witness_single), name="proto_hot",
        report_code="Protomata/h0",
    )]
    hot_rules += [
        compile_pattern(body, name="proto_pair%d" % index,
                        report_code="Protomata/p%d" % index)
        for index, body in enumerate(pair_patterns)
    ]
    # Protein motifs are symbol-dense: classes over many amino acids.
    def motif_factory(inner_rng):
        length = max(4, int(inner_rng.gauss(17, 3)))
        parts = []
        for _ in range(length):
            if inner_rng.random() < 0.5:
                width = inner_rng.randint(4, 14)
                members = {0x80 + inner_rng.randrange(0x20) for _ in range(width)}
                parts.append(
                    "[%s]" % "".join("\\x%02x" % m for m in sorted(members))
                )
            else:
                parts.append(escape_literal(inner_rng.cold_literal(1)))
        return "".join(parts)

    cold = grow_cold_rules(
        rng, motif_factory,
        max(0, states_target - sum(len(r) for r in hot_rules)), "protomata",
    )
    automaton = assemble("Protomata", hot_rules + cold)

    total_plants = int(round(input_length * 10.08 / 100.0))
    pair_plants = int(total_plants * 0.21)
    single_plants = max(1, total_plants - pair_plants)
    positions = poisson_positions(
        rng, input_length, pair_plants + single_plants, len(witness_single)
    )
    plants = [(p, witness_pair) for p in positions[:pair_plants]]
    plants += [(p, witness_single) for p in positions[pair_plants:]]
    data = build_input(rng, input_length, plants, noise_alphabet=protein)
    return WorkloadInstance("Protomata", "Regex", automaton, data, paper_row)


def build_ranges05(scale=0.02, seed=0, paper_row=None):
    """Ranges05 (range density 0.5): nearly silent (39 reports)."""
    return _single_witness_workload(
        "Ranges05", WorkloadRandom(seed), scale, 12_621, 0.0,
        b"range needle!", _cold_ranges_factory(40, 0.5), paper_row,
        absolute_reports=39,
    )


def build_ranges1(scale=0.02, seed=0, paper_row=None):
    """Ranges1 (every symbol a range): nearly silent (26 reports)."""
    return _single_witness_workload(
        "Ranges1", WorkloadRandom(seed), scale, 12_464, 0.0,
        b"range needle?", _cold_ranges_factory(40, 1.0), paper_row,
        absolute_reports=26,
    )


def build_snort(scale=0.02, seed=0, paper_row=None):
    """Snort: reports on ~95% of cycles, 1.72 reports per report cycle.

    Two always-hot rules dominate (single-symbol classes that match most
    traffic bytes), exactly the behaviour that makes Snort the worst case
    for AP-style reporting; thousands of cold signatures provide the
    static bulk.
    """
    rng = WorkloadRandom(seed)
    input_length = infer_noise_budget(scale)
    states_target = scaled(66_466, scale, minimum=260)

    hot_wide = compile_pattern("[a-z0-9]", name="snort_hot_wide",
                               report_code="Snort/wide")
    hot_narrow = compile_pattern("[a-z]", name="snort_hot_narrow",
                                 report_code="Snort/narrow")
    cold = grow_cold_rules(
        rng, _cold_literal_factory(14),
        max(0, states_target - 2), "snort",
    )
    automaton = assemble("Snort", [hot_wide, hot_narrow] + cold)

    # Noise: 94.89% of bytes are [a-z0-9] (uniform), the rest spaces.
    alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789 "
    weights = [0.9489 / 36.0] * 36 + [0.0511]
    data = build_input(
        rng, input_length, [], noise_alphabet=alphabet, noise_weights=weights
    )
    return WorkloadInstance("Snort", "Regex", automaton, data, paper_row)


def build_tcp(scale=0.02, seed=0, paper_row=None):
    """TCP stream rules: 9.84% report cycles, one report each."""
    return _single_witness_workload(
        "TCP", WorkloadRandom(seed), scale, 19_704, 9.84,
        b"syn ack", _cold_literal_factory(19), paper_row,
    )


def build_clamav(scale=0.02, seed=0, paper_row=None):
    """ClamAV virus signatures: long literals, zero reports on clean input."""
    return _single_witness_workload(
        "ClamAV", WorkloadRandom(seed), scale, 49_538, 0.0,
        b"never planted", _cold_literal_factory(95), paper_row,
        absolute_reports=0,
    )
