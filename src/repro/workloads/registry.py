"""Benchmark registry: all 19 workloads plus the paper's Table 1 values."""

from ..errors import WorkloadError
from . import mesh, regex_families, widgets

#: The paper's Table 1, verbatim.  Dynamic columns are for a 1MB stream.
PAPER_TABLE1 = {
    "Brill": {
        "family": "Regex", "states": 42658, "report_states": 1962,
        "report_state_pct": 4.6, "reports": 1092388, "report_cycles": 118814,
        "reports_per_cycle": 1.067, "reports_per_report_cycle": 9.19,
        "report_cycle_pct": 11.33,
    },
    "Bro217": {
        "family": "Regex", "states": 2312, "report_states": 187,
        "report_state_pct": 8.1, "reports": 17219, "report_cycles": 17210,
        "reports_per_cycle": 0.017, "reports_per_report_cycle": 1.00,
        "report_cycle_pct": 1.64,
    },
    "Dotstar03": {
        "family": "Regex", "states": 12144, "report_states": 300,
        "report_state_pct": 2.5, "reports": 1, "report_cycles": 1,
        "reports_per_cycle": 0.0, "reports_per_report_cycle": 1.00,
        "report_cycle_pct": 0.0,
    },
    "Dotstar06": {
        "family": "Regex", "states": 12640, "report_states": 300,
        "report_state_pct": 2.4, "reports": 2, "report_cycles": 2,
        "reports_per_cycle": 0.0, "reports_per_report_cycle": 1.00,
        "report_cycle_pct": 0.0,
    },
    "Dotstar09": {
        "family": "Regex", "states": 12431, "report_states": 300,
        "report_state_pct": 2.4, "reports": 2, "report_cycles": 2,
        "reports_per_cycle": 0.0, "reports_per_report_cycle": 1.00,
        "report_cycle_pct": 0.0,
    },
    "ExactMatch": {
        "family": "Regex", "states": 12439, "report_states": 297,
        "report_state_pct": 2.4, "reports": 35, "report_cycles": 35,
        "reports_per_cycle": 0.0, "reports_per_report_cycle": 1.00,
        "report_cycle_pct": 0.0,
    },
    "PowerEN": {
        "family": "Regex", "states": 40513, "report_states": 3456,
        "report_state_pct": 8.5, "reports": 4304, "report_cycles": 4303,
        "reports_per_cycle": 0.004, "reports_per_report_cycle": 1.00,
        "report_cycle_pct": 0.41,
    },
    "Protomata": {
        "family": "Regex", "states": 42009, "report_states": 2365,
        "report_state_pct": 5.6, "reports": 127413, "report_cycles": 105722,
        "reports_per_cycle": 0.124, "reports_per_report_cycle": 1.21,
        "report_cycle_pct": 10.08,
    },
    "Ranges05": {
        "family": "Regex", "states": 12621, "report_states": 299,
        "report_state_pct": 2.4, "reports": 39, "report_cycles": 38,
        "reports_per_cycle": 0.0, "reports_per_report_cycle": 1.03,
        "report_cycle_pct": 0.0,
    },
    "Ranges1": {
        "family": "Regex", "states": 12464, "report_states": 297,
        "report_state_pct": 2.4, "reports": 26, "report_cycles": 26,
        "reports_per_cycle": 0.0, "reports_per_report_cycle": 1.00,
        "report_cycle_pct": 0.0,
    },
    "Snort": {
        "family": "Regex", "states": 66466, "report_states": 4166,
        "report_state_pct": 6.3, "reports": 1710495, "report_cycles": 995011,
        "reports_per_cycle": 1.670, "reports_per_report_cycle": 1.72,
        "report_cycle_pct": 94.89,
    },
    "TCP": {
        "family": "Regex", "states": 19704, "report_states": 767,
        "report_state_pct": 3.9, "reports": 103415, "report_cycles": 103198,
        "reports_per_cycle": 0.101, "reports_per_report_cycle": 1.00,
        "report_cycle_pct": 9.84,
    },
    "ClamAV": {
        "family": "Regex", "states": 49538, "report_states": 515,
        "report_state_pct": 1.0, "reports": 0, "report_cycles": 0,
        "reports_per_cycle": 0.0, "reports_per_report_cycle": 0.0,
        "report_cycle_pct": 0.0,
    },
    "Hamming": {
        "family": "Mesh", "states": 11346, "report_states": 186,
        "report_state_pct": 1.6, "reports": 2, "report_cycles": 2,
        "reports_per_cycle": 0.0, "reports_per_report_cycle": 1.00,
        "report_cycle_pct": 0.0,
    },
    "Levenshtein": {
        "family": "Mesh", "states": 2784, "report_states": 96,
        "report_state_pct": 3.4, "reports": 4, "report_cycles": 4,
        "reports_per_cycle": 0.0, "reports_per_report_cycle": 1.00,
        "report_cycle_pct": 0.0,
    },
    "Fermi": {
        "family": "Widget", "states": 40783, "report_states": 2399,
        "report_state_pct": 5.9, "reports": 96127, "report_cycles": 13444,
        "reports_per_cycle": 0.094, "reports_per_report_cycle": 7.15,
        "report_cycle_pct": 1.28,
    },
    "RandomForest": {
        "family": "Widget", "states": 33220, "report_states": 1661,
        "report_state_pct": 5.0, "reports": 21310, "report_cycles": 3322,
        "reports_per_cycle": 0.021, "reports_per_report_cycle": 6.41,
        "report_cycle_pct": 0.32,
    },
    "SPM": {
        "family": "Widget", "states": 100500, "report_states": 5025,
        "report_state_pct": 5.0, "reports": 47304453, "report_cycles": 33933,
        "reports_per_cycle": 46.19, "reports_per_report_cycle": 1394.0,
        "report_cycle_pct": 3.24,
    },
    "EntityResolution": {
        "family": "Widget", "states": 95136, "report_states": 1000,
        "report_state_pct": 1.1, "reports": 37628, "report_cycles": 28612,
        "reports_per_cycle": 0.037, "reports_per_report_cycle": 1.32,
        "report_cycle_pct": 2.73,
    },
}

#: Paper Table 4 reference values (reporting overheads, 4-nibble rate).
PAPER_TABLE4 = {
    "Brill": {"sunder_flushes": 666, "sunder": 1.04, "sunder_fifo": 1.0,
              "ap": 7.07, "ap_rad": 2.95},
    "Bro217": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
               "ap": 1.6, "ap_rad": 1.3},
    "Dotstar03": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
                  "ap": 1.0, "ap_rad": 1.0},
    "Dotstar06": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
                  "ap": 1.0, "ap_rad": 1.0},
    "Dotstar09": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
                  "ap": 1.0, "ap_rad": 1.0},
    "ExactMatch": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
                   "ap": 1.0, "ap_rad": 1.0},
    "PowerEN": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
                "ap": 1.1, "ap_rad": 1.05},
    "Protomata": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
                  "ap": 5.8, "ap_rad": 2.32},
    "Ranges05": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
                 "ap": 1.0, "ap_rad": 1.0},
    "Ranges1": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
                "ap": 1.0, "ap_rad": 1.0},
    "Snort": {"sunder_flushes": 1, "sunder": 1.01, "sunder_fifo": 1.0,
              "ap": 46.0, "ap_rad": 9.0},
    "TCP": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
            "ap": 3.8, "ap_rad": 2.5},
    "ClamAV": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
               "ap": 1.0, "ap_rad": 1.0},
    "Hamming": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
                "ap": 1.0, "ap_rad": 1.0},
    "Levenshtein": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
                    "ap": 1.0, "ap_rad": 1.0},
    "Fermi": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
              "ap": 2.3, "ap_rad": 1.5},
    "RandomForest": {"sunder_flushes": 0, "sunder": 1.0, "sunder_fifo": 1.0,
                     "ap": 1.6, "ap_rad": 1.3},
    "SPM": {"sunder_flushes": 9212, "sunder": 1.06, "sunder_fifo": 1.03,
            "ap": 9.7, "ap_rad": 9.7},
    "EntityResolution": {"sunder_flushes": 0, "sunder": 1.0,
                         "sunder_fifo": 1.0, "ap": 2.25, "ap_rad": 1.8},
}

#: Paper Table 3 reference (state-ratio averages per processing rate).
PAPER_TABLE3_AVERAGES = {
    "state_ratio": {1: 3.1, 2: 1.0, 4: 1.2},
    "transition_ratio": {1: 4.5, 2: 1.0, 4: 1.8},
}

_BUILDERS = {
    "Brill": regex_families.build_brill,
    "Bro217": regex_families.build_bro217,
    "Dotstar03": regex_families.build_dotstar03,
    "Dotstar06": regex_families.build_dotstar06,
    "Dotstar09": regex_families.build_dotstar09,
    "ExactMatch": regex_families.build_exactmatch,
    "PowerEN": regex_families.build_poweren,
    "Protomata": regex_families.build_protomata,
    "Ranges05": regex_families.build_ranges05,
    "Ranges1": regex_families.build_ranges1,
    "Snort": regex_families.build_snort,
    "TCP": regex_families.build_tcp,
    "ClamAV": regex_families.build_clamav,
    "Hamming": mesh.build_hamming,
    "Levenshtein": mesh.build_levenshtein,
    "Fermi": widgets.build_fermi,
    "RandomForest": widgets.build_randomforest,
    "SPM": widgets.build_spm,
    "EntityResolution": widgets.build_entityresolution,
}

#: Benchmark names in the paper's Table 1 order.
BENCHMARK_NAMES = tuple(PAPER_TABLE1)

#: Generator code-version salt mixed into workload-instance fingerprints.
#: Bump whenever any builder's output for a fixed ``(name, scale, seed)``
#: can change, so artifact stores never serve instances from older code.
GENERATOR_VERSION = "2026.08-wl-1"


def instance_fingerprint(name, scale, seed):
    """Content fingerprint of ``generate(name, scale, seed)``'s output.

    Generation is deterministic, so the parameters plus the
    :data:`GENERATOR_VERSION` salt fully identify the instance — the
    stage-graph runtime uses this as the ``generate`` stage's artifact
    key material without building anything.
    """
    if name not in _BUILDERS:
        raise WorkloadError(
            "unknown benchmark %r (choose from %s)"
            % (name, ", ".join(BENCHMARK_NAMES))
        )
    return "%s:%s:scale=%r:seed=%r" % (GENERATOR_VERSION, name, scale, seed)


def generate(name, scale=0.02, seed=0):
    """Build one benchmark instance by name."""
    if name not in _BUILDERS:
        raise WorkloadError(
            "unknown benchmark %r (choose from %s)"
            % (name, ", ".join(BENCHMARK_NAMES))
        )
    return _BUILDERS[name](scale=scale, seed=seed,
                           paper_row=PAPER_TABLE1[name])


def generate_all(scale=0.02, seed=0, names=None):
    """Build every benchmark (or the named subset), in Table 1 order."""
    chosen = names if names is not None else BENCHMARK_NAMES
    return [generate(name, scale=scale, seed=seed) for name in chosen]
