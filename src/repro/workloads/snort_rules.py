"""Minimal Snort-rule front end.

Real intrusion rulesets arrive as Snort rules, not raw regexes.  This
parser handles the payload-matching subset that maps onto automata —
``content`` (with ``nocase``) and ``pcre`` options — and compiles a rule
file into one homogeneous NFA whose report codes are the rules' ``sid``s.

Supported grammar (one rule per line)::

    alert tcp any any -> any any (msg:"..."; content:"GET /admin"; \
        content:"|0d 0a|"; nocase; pcre:"/foo[0-9]+/i"; sid:1001;)

Unsupported options (flow, depth/offset, byte_test, ...) are ignored with
a warning list — matching fidelity is payload-content only, which is what
the pattern-matching accelerator sees.
"""

import re as _re

from ..automata.ops import union
from ..errors import WorkloadError
from ..regex.compiler import compile_pattern
from .base import escape_literal

_OPTION_RE = _re.compile(r'(\w+)\s*(?::\s*("(?:[^"\\]|\\.)*"|[^;]*))?;')
_HEX_BLOCK_RE = _re.compile(r"\|([0-9a-fA-F\s]+)\|")


def _decode_content(text):
    """Decode a Snort content string: quoted, with |hex| blocks."""
    if not (text.startswith('"') and text.endswith('"')):
        raise WorkloadError("content must be quoted: %r" % text)
    body = text[1:-1]
    out = bytearray()
    index = 0
    while index < len(body):
        char = body[index]
        if char == "|":
            match = _HEX_BLOCK_RE.match(body, index)
            if not match:
                raise WorkloadError("unterminated hex block in %r" % text)
            for token in match.group(1).split():
                out.append(int(token, 16))
            index = match.end()
        elif char == "\\" and index + 1 < len(body):
            out.append(ord(body[index + 1]))
            index += 2
        else:
            out.append(ord(char))
            index += 1
    if not out:
        raise WorkloadError("empty content in %r" % text)
    return bytes(out)


class SnortRule:
    """One parsed rule: its payload predicates and metadata."""

    def __init__(self, sid, msg, contents, pcres, ignored_options):
        self.sid = sid
        self.msg = msg
        self.contents = contents      # list of (bytes, nocase)
        self.pcres = pcres            # list of (pattern, ignore_case)
        self.ignored_options = ignored_options

    def to_automaton(self):
        """Compile to an automaton reporting the rule's sid.

        Multiple ``content``s become an ordered ``.*``-joined sequence
        (Snort semantics: each content found after the previous one);
        ``pcre``s append the same way.
        """
        parts = []
        for data, nocase in self.contents:
            literal = escape_literal(data)
            parts.append(("(?:%s)" % literal, nocase))
        for pattern, ignore_case in self.pcres:
            parts.append(("(?:%s)" % pattern, ignore_case))
        if not parts:
            raise WorkloadError("rule sid:%s has no payload predicates"
                                % self.sid)
        ignore_case = any(flag for _, flag in parts)
        joined = ".*".join(body for body, _ in parts)
        return compile_pattern(
            joined, name="sid%s" % self.sid, report_code=self.sid,
            ignore_case=ignore_case,
        )


def parse_rule(line):
    """Parse one rule line into a :class:`SnortRule`."""
    line = line.strip()
    open_paren = line.find("(")
    if not line.lower().startswith(("alert", "log", "pass", "drop",
                                    "reject")) or open_paren < 0 \
            or not line.endswith(")"):
        raise WorkloadError("not a Snort rule: %r" % line[:60])
    body = line[open_paren + 1:-1]

    sid = None
    msg = None
    contents = []
    pcres = []
    ignored = []
    pending_nocase_target = None
    for match in _OPTION_RE.finditer(body):
        keyword = match.group(1).lower()
        value = (match.group(2) or "").strip()
        if keyword == "sid":
            sid = int(value)
        elif keyword == "msg":
            msg = value.strip('"')
        elif keyword == "content":
            contents.append([_decode_content(value), False])
            pending_nocase_target = contents
        elif keyword == "pcre":
            pattern = value.strip('"')
            if not pattern.startswith("/"):
                raise WorkloadError("pcre must be /.../: %r" % value)
            closing = pattern.rfind("/")
            flags = pattern[closing + 1:]
            pcres.append([pattern[1:closing], "i" in flags])
            pending_nocase_target = None
        elif keyword == "nocase":
            if pending_nocase_target is None or not pending_nocase_target:
                raise WorkloadError("nocase without a preceding content")
            pending_nocase_target[-1][1] = True
        else:
            ignored.append(keyword)
    if sid is None:
        raise WorkloadError("rule has no sid: %r" % line[:60])
    return SnortRule(
        sid, msg,
        [tuple(entry) for entry in contents],
        [tuple(entry) for entry in pcres],
        ignored,
    )


def parse_rules(text):
    """Parse a rule file (skipping blanks and ``#`` comments)."""
    rules = []
    for line_number, line in enumerate(text.splitlines(), 1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        try:
            rules.append(parse_rule(stripped))
        except WorkloadError as error:
            raise WorkloadError("line %d: %s" % (line_number, error)) from error
    if not rules:
        raise WorkloadError("no rules found")
    return rules


def compile_rules(text, name="snort"):
    """Compile a rule file into one automaton (report codes = sids)."""
    rules = parse_rules(text)
    return union([rule.to_automaton() for rule in rules], name=name)
